//! The LinuxFP platform: the same kernel as the Linux baseline with the
//! controller attached — standard configuration, transparent fast paths.

use crate::platform::{Platform, PlatformTraits, Scheduling};
use crate::scenario::Scenario;
use linuxfp_core::controller::{Controller, ControllerConfig};
use linuxfp_ebpf::hook::HookPoint;
use linuxfp_netstack::device::IfIndex;
use linuxfp_netstack::stack::{BatchOutcome, Kernel, RxOutcome};
use linuxfp_packet::Batch;
use linuxfp_telemetry::Registry;

/// Linux accelerated by LinuxFP-synthesized fast paths.
#[derive(Debug)]
pub struct LinuxFpPlatform {
    kernel: Kernel,
    controller: Controller,
    upstream: IfIndex,
    hook: HookPoint,
}

impl LinuxFpPlatform {
    /// Configures a fresh kernel for the scenario (standard APIs only)
    /// and attaches the controller on the XDP hook.
    pub fn new(scenario: Scenario) -> Self {
        LinuxFpPlatform::with_hook(scenario, HookPoint::Xdp)
    }

    /// Like [`LinuxFpPlatform::new`] but attaching to a specific hook
    /// (TC is what the paper uses for the Kubernetes scenario and
    /// Table VII's comparison).
    pub fn with_hook(scenario: Scenario, hook: HookPoint) -> Self {
        LinuxFpPlatform::build(scenario, hook, None)
    }

    /// Like [`LinuxFpPlatform::with_hook`] but with observability on: the
    /// registry is wired into the kernel slow path (packet/drop counters),
    /// the dispatchers (fast-path hit/fallback and VM counters) and the
    /// controller (reconcile latency, verifier tallies).
    pub fn with_telemetry(scenario: Scenario, hook: HookPoint, registry: Registry) -> Self {
        LinuxFpPlatform::build(scenario, hook, Some(registry))
    }

    fn build(scenario: Scenario, hook: HookPoint, telemetry: Option<Registry>) -> Self {
        let mut kernel = Kernel::new(100); // same seed as the baseline
        let (upstream, _) = scenario.configure_kernel(&mut kernel);
        if let Some(registry) = &telemetry {
            kernel.set_telemetry(registry.clone());
        }
        let cfg = ControllerConfig {
            hook,
            telemetry,
            ..ControllerConfig::default()
        };
        let (controller, report) =
            Controller::attach(&mut kernel, cfg).expect("initial deployment succeeds");
        assert!(report.changed, "scenario must produce a fast path");
        LinuxFpPlatform {
            kernel,
            controller,
            upstream,
            hook,
        }
    }

    /// The upstream device's MAC.
    pub fn dut_mac(&self) -> linuxfp_packet::MacAddr {
        self.kernel.device(self.upstream).expect("configured").mac
    }

    /// The controller (e.g. to inspect the graph or installed programs).
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Polls the controller (after reconfiguring the kernel in tests).
    pub fn poll_controller(&mut self) -> Option<linuxfp_core::ReactionReport> {
        self.controller
            .poll(&mut self.kernel)
            .expect("redeploy succeeds")
    }

    /// Access to the underlying kernel.
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }
}

impl Platform for LinuxFpPlatform {
    fn traits(&self) -> PlatformTraits {
        PlatformTraits {
            name: "LinuxFP",
            kernel_resident: true,
            standard_linux_api: true,
            transparent_acceleration: true,
            dedicated_cores: false,
            scheduling: Scheduling::XdpResident,
        }
    }

    fn process_batch(&mut self, batch: &mut Batch) -> BatchOutcome {
        self.kernel.inject_batch(self.upstream, batch)
    }

    fn process(&mut self, frame: Vec<u8>) -> RxOutcome {
        self.kernel.receive(self.upstream, frame)
    }
}

/// A LinuxFP variant whose hook point is reported in the name — used by
/// the XDP-vs-TC comparison (paper Table VII).
impl LinuxFpPlatform {
    /// Descriptive name including the hook.
    pub fn hook_name(&self) -> &'static str {
        match self.hook {
            HookPoint::Xdp => "LinuxFP (XDP)",
            HookPoint::Tc => "LinuxFP (TC)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linux::LinuxPlatform;
    use crate::scenario::SINK_MAC;
    use linuxfp_packet::{EthernetFrame, Ipv4Header};

    #[test]
    fn forwards_identically_to_linux_but_faster() {
        let s = Scenario::router();
        let mut linux = LinuxPlatform::new(s);
        let mut lfp = LinuxFpPlatform::new(s);
        assert_eq!(linux.dut_mac(), lfp.dut_mac(), "same seed, same MACs");
        let mac = lfp.dut_mac();

        let out_l = linux.process(s.frame(mac, 7, 60));
        let out_f = lfp.process(s.frame(mac, 7, 60));
        // Identical output packet...
        assert_eq!(out_l.transmissions(), out_f.transmissions());
        let eth = EthernetFrame::parse(out_f.transmissions()[0].1).unwrap();
        assert_eq!(eth.dst, SINK_MAC);
        let ip = Ipv4Header::parse(&out_f.transmissions()[0].1[14..]).unwrap();
        assert_eq!(ip.ttl, 63);
        assert!(ip.verify_checksum(&out_f.transmissions()[0].1[14..]));
        // ...at lower cost (no sk_buff on the fast path).
        assert_eq!(out_f.cost.stage_count("skb_alloc"), 0);
        assert!(out_f.cost.total_ns() < out_l.cost.total_ns());
    }

    #[test]
    fn speedup_matches_the_paper_band() {
        // Paper: LinuxFP is 77% faster than Linux for forwarding.
        let s = Scenario::router();
        let mut linux = LinuxPlatform::new(s);
        let mut lfp = LinuxFpPlatform::new(s);
        let ml = linux.dut_mac();
        let mf = lfp.dut_mac();
        let tl = linux.service_time_ns(&mut |i, buf| s.fill_frame(ml, i, 60, buf));
        let tf = lfp.service_time_ns(&mut |i, buf| s.fill_frame(mf, i, 60, buf));
        let speedup = tl / tf;
        assert!(
            (1.55..2.0).contains(&speedup),
            "speedup {speedup:.2} outside the ~1.77 band (linux {tl:.0}ns, linuxfp {tf:.0}ns)"
        );
    }

    #[test]
    fn tc_hook_is_slower_than_xdp_but_still_works() {
        let s = Scenario::router();
        let mut xdp = LinuxFpPlatform::with_hook(s, HookPoint::Xdp);
        let mut tc = LinuxFpPlatform::with_hook(s, HookPoint::Tc);
        assert_eq!(xdp.hook_name(), "LinuxFP (XDP)");
        assert_eq!(tc.hook_name(), "LinuxFP (TC)");
        let mx = xdp.dut_mac();
        let mt = tc.dut_mac();
        let tx = xdp.service_time_ns(&mut |i, buf| s.fill_frame(mx, i, 60, buf));
        let tt = tc.service_time_ns(&mut |i, buf| s.fill_frame(mt, i, 60, buf));
        // Paper Table VII: XDP ≈ 2x TC for forwarding.
        let ratio = tt / tx;
        assert!((1.7..2.4).contains(&ratio), "TC/XDP ratio {ratio:.2}");
    }

    #[test]
    fn gateway_blocked_traffic_dropped_on_fast_path() {
        let s = Scenario::gateway();
        let mut p = LinuxFpPlatform::new(s);
        let frame = linuxfp_packet::builder::udp_packet(
            crate::scenario::SOURCE_MAC,
            p.dut_mac(),
            std::net::Ipv4Addr::new(10, 0, 1, 100),
            s.blocked_dst(7),
            1,
            2,
            b"",
        );
        let out = p.process(frame);
        assert!(out.transmissions().is_empty());
        assert_eq!(out.drops(), vec!["xdp drop"]);
        assert_eq!(out.cost.stage_count("skb_alloc"), 0);
    }

    #[test]
    fn reconfiguration_is_transparent() {
        // Start as a plain router; add iptables rules at runtime; the
        // controller swaps in a filter-enabled fast path.
        let s = Scenario::router();
        let mut p = LinuxFpPlatform::new(s);
        let mac = p.dut_mac();
        assert!(p.poll_controller().is_none());
        p.kernel_mut().iptables_append(
            linuxfp_netstack::netfilter::ChainHook::Forward,
            linuxfp_netstack::netfilter::IptRule::drop_dst(Scenario::blacklist_prefix(0)),
        );
        let report = p.poll_controller().expect("netfilter event");
        assert!(report.changed);
        assert_eq!(report.fpm_count, 4, "router+filter on both interfaces");
        // Blocked traffic now drops on the fast path.
        let blocked = linuxfp_packet::builder::udp_packet(
            crate::scenario::SOURCE_MAC,
            mac,
            std::net::Ipv4Addr::new(10, 0, 1, 100),
            Scenario::blacklist_prefix(0).nth_host(1),
            1,
            2,
            b"",
        );
        let out = p.process(blocked);
        assert_eq!(out.drops(), vec!["xdp drop"]);
    }

    #[test]
    fn nat_gateway_translates_identically_but_faster() {
        let s = Scenario::nat_gateway();
        let mut linux = LinuxPlatform::new(s);
        let mut lfp = LinuxFpPlatform::new(s);
        let mac = lfp.dut_mac();
        // Same mixed client sequence: masquerade allocations and
        // established-flow rewrites stay byte-identical across paths.
        for i in 0..9u64 {
            let client = 2 + (i % 3) as u8;
            let out_l = linux.process(s.client_frame(mac, client, i % 2, 60));
            let out_f = lfp.process(s.client_frame(mac, client, i % 2, 60));
            assert_eq!(out_l.transmissions(), out_f.transmissions(), "frame {i}");
        }
        // An established flow translates entirely on the fast path — by
        // now it repeats a recorded flow, so the microflow verdict cache
        // serves it without even the bpf_nat_lookup.
        let out = lfp.process(s.client_frame(mac, 2, 0, 60));
        assert_eq!(out.cost.stage_count("skb_alloc"), 0, "must stay fast");
        assert_eq!(out.cost.stage_count("flowcache_hit"), 1, "cached repeat");
        assert_eq!(out.cost.stage_count("nat_lookup"), 0, "no helper on hit");
    }

    #[test]
    fn api_gateway_l7_verdicts_identical_but_faster() {
        use linuxfp_telemetry::trace::{PuntReason, TraceEvent};

        let s = Scenario::api_gateway();
        let registry = Registry::new();
        let mut linux = LinuxPlatform::new(s);
        let mut lfp = LinuxFpPlatform::with_telemetry(s, HookPoint::Xdp, registry.clone());
        let mac = lfp.dut_mac();
        let ring = lfp.kernel_mut().enable_flight_recorder(4096, 1);

        // A mixed request stream: allowed GETs, denied /blocked/ GETs,
        // binary garbage (fast path must punt, slow path forwards),
        // bare ACKs, and follow-up segments on decided connections.
        let mut frames: Vec<Vec<u8>> = Vec::new();
        for i in 0..24u64 {
            frames.push(match i % 6 {
                0 | 1 => s.http_frame(mac, i, &Scenario::http_request(i)),
                2 => s.http_frame(mac, i, &s.blocked_http_request(i)),
                3 => s.http_frame(mac, i, &[0x16, 0x03, 0x01, 0x00, 0x2a]),
                4 => s.http_frame(mac, i, b""),
                // Same flow as the i%6==2 deny two frames earlier: the
                // pinned verdict must drop this innocuous payload too.
                _ => s.http_frame(mac, i - 3, &Scenario::http_request(i)),
            });
        }
        let injected = frames.len() as u64;
        let mut denies = 0;
        for (i, frame) in frames.into_iter().enumerate() {
            let out_l = linux.process(frame.clone());
            let out_f = lfp.process(frame);
            assert_eq!(
                out_l.transmissions(),
                out_f.transmissions(),
                "frame {i} diverged"
            );
            if out_f.transmissions().is_empty() {
                assert!(out_l.transmissions().is_empty());
                denies += 1;
            }
        }
        // i%6∈{2,5} are denied (pinned verdict covers the follow-up).
        assert_eq!(denies, 8, "deny verdicts");

        // Conservation: every injected frame either hit a fast path or
        // fell back — none vanished.
        let hits = registry.counter_total("linuxfp_fp_hits_total");
        let fallbacks = registry.counter_total("linuxfp_slowpath_fallbacks_total");
        assert_eq!(
            hits + fallbacks,
            injected,
            "hits {hits} + falls {fallbacks}"
        );
        assert!(hits > 0, "l7 fast path never hit");

        // Unparseable payloads punt with the dedicated reason — and were
        // still forwarded byte-identically above.
        let l7_punts: usize = ring
            .recent()
            .iter()
            .flat_map(|span| span.events.iter())
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::Punt {
                        reason: PuntReason::L7Unparseable
                    }
                )
            })
            .count();
        assert!(l7_punts > 0, "no L7Unparseable punts recorded");
    }

    #[test]
    fn traits_table() {
        let p = LinuxFpPlatform::new(Scenario::router());
        let t = p.traits();
        assert!(t.kernel_resident && t.standard_linux_api && t.transparent_acceleration);
        assert!(!t.dedicated_cores);
        assert_eq!(t.scheduling, Scheduling::XdpResident);
    }
}
