//! A Polycube-style baseline: kernel-resident eBPF network functions
//! with a **custom control plane** and **tail-call module chaining**.
//!
//! Two deliberate architectural contrasts with LinuxFP (both called out
//! by the paper):
//!
//! 1. **State lives in eBPF maps** populated through Polycube's own API
//!    (`polycubectl`-style methods here) rather than read from kernel
//!    tables — fast, but invisible to iproute2/netlink consumers and not
//!    configurable with standard tools.
//! 2. **Modules are separate programs chained with tail calls** (each one
//!    re-deriving its packet pointers), whereas LinuxFP fuses modules by
//!    inlining — the difference measured in paper Fig. 10 and reflected
//!    in the ~19 % throughput gap of footnote 2.
//!
//! For filtering, Polycube uses an efficient multi-dimensional
//! classification algorithm rather than a linear scan; we model it as a
//! tuple-space search — one hash-map probe per distinct prefix length —
//! which is flat in the number of rules (paper Fig. 8's Polycube curve).

use crate::platform::{Platform, PlatformTraits, Scheduling};
use crate::scenario::{Scenario, NEXT_HOP, SINK_MAC};
use linuxfp_core::fpm::{emit_exits, emit_guard, emit_prologue, emit_ttl_decrement, ETH_P_IPV4_LE};
use linuxfp_ebpf::asm::Asm;
use linuxfp_ebpf::hook::{attach, HookPoint};
use linuxfp_ebpf::insn::{Action, AluOp, HelperId, JmpCond, MemSize};
use linuxfp_ebpf::maps::{MapId, MapStore};
use linuxfp_ebpf::program::{LoadedProgram, Program};
use linuxfp_netstack::device::IfIndex;
use linuxfp_netstack::stack::{BatchOutcome, Kernel, RxOutcome};
use linuxfp_packet::ipv4::Prefix;
use linuxfp_packet::Batch;
use linuxfp_packet::MacAddr;
use std::collections::BTreeSet;

const ROUTER_SLOT: u32 = 0;

/// The Polycube-style platform.
#[derive(Debug)]
pub struct PolycubePlatform {
    kernel: Kernel,
    maps: MapStore,
    upstream: IfIndex,
    prog_array: MapId,
    lpm_routes: MapId,
    nexthops: MapId,
    port_config: MapId,
    filter_levels: BTreeSet<u8>,
    filter_maps: Vec<(u8, MapId)>,
    next_nexthop: u32,
}

impl PolycubePlatform {
    /// Builds the platform for a scenario: devices come from the kernel,
    /// but *all* forwarding/filtering state is configured through the
    /// custom control-plane methods below.
    pub fn new(scenario: Scenario) -> Self {
        let mut kernel = Kernel::new(100);
        // Only link-level setup touches the kernel; no routes, no
        // iptables — Polycube would not see them anyway.
        let upstream = kernel.add_physical("ens1f0").expect("fresh kernel");
        let downstream = kernel.add_physical("ens1f1").expect("fresh kernel");
        kernel.ip_link_set_up(upstream).expect("device exists");
        kernel.ip_link_set_up(downstream).expect("device exists");

        let maps = MapStore::new();
        let prog_array = maps.create_prog_array(2);
        let lpm_routes = maps.create_lpm();
        let nexthops = maps.create_array(16, 16);
        // Per-cube port/context map: every Polycube module resolves its
        // port configuration and per-cube metadata on entry (the
        // framework's generic plumbing — part of the "implementation
        // differences" behind paper footnote 2).
        let port_config = maps.create_array(8, 8);

        let mut platform = PolycubePlatform {
            kernel,
            maps,
            upstream,
            prog_array,
            lpm_routes,
            nexthops,
            port_config,
            filter_levels: BTreeSet::new(),
            filter_maps: Vec::new(),
            next_nexthop: 0,
        };

        // Configure through the custom API, equivalently to the Linux
        // scenario configuration.
        let downstream_mac = platform.kernel.device(downstream).expect("exists").mac;
        let nh = platform.pcn_nexthop_add(downstream, SINK_MAC, downstream_mac);
        for i in 0..scenario.prefixes {
            platform.pcn_route_add(Scenario::route_prefix(i), nh);
        }
        // The connected subnets as well, so reply-direction traffic works.
        platform.pcn_route_add(Prefix::new(NEXT_HOP, 24), nh);
        for i in 0..scenario.filter_rules {
            platform.pcn_filter_add(Scenario::blacklist_prefix(i));
        }
        platform.regenerate();
        platform
    }

    /// The DUT MAC workload frames must target. Polycube forwards
    /// anything arriving on the port, but the shared workload generator
    /// addresses the DUT like a router.
    pub fn dut_mac(&self) -> MacAddr {
        self.kernel.device(self.upstream).expect("exists").mac
    }

    /// `polycubectl router nexthop add ...` — registers a next hop and
    /// returns its index.
    pub fn pcn_nexthop_add(&mut self, egress: IfIndex, dst_mac: MacAddr, src_mac: MacAddr) -> u32 {
        let idx = self.next_nexthop;
        self.next_nexthop += 1;
        let mut value = [0u8; 16];
        value[0..4].copy_from_slice(&egress.as_u32().to_le_bytes());
        value[4..10].copy_from_slice(&dst_mac.octets());
        value[10..16].copy_from_slice(&src_mac.octets());
        self.maps
            .update(self.nexthops, &idx.to_le_bytes(), &value)
            .expect("nexthop map");
        idx
    }

    /// `polycubectl router route add ...` — inserts into the LPM map.
    pub fn pcn_route_add(&mut self, prefix: Prefix, nexthop: u32) {
        let mut key = vec![prefix.len()];
        key.extend_from_slice(&prefix.network().octets());
        self.maps
            .update(self.lpm_routes, &key, &nexthop.to_le_bytes())
            .expect("route map");
    }

    /// `pcn-iptables -A FORWARD -d <prefix> -j DROP` — adds a classifier
    /// entry; a new prefix length triggers data-path regeneration (as
    /// Polycube recompiles its pipeline on structural changes).
    pub fn pcn_filter_add(&mut self, prefix: Prefix) {
        if self.filter_levels.insert(prefix.len()) {
            let map = self.maps.create_hash(4096);
            self.filter_maps.push((prefix.len(), map));
            self.filter_maps
                .sort_by_key(|(len, _)| std::cmp::Reverse(*len));
        }
        let map = self
            .filter_maps
            .iter()
            .find(|(l, _)| *l == prefix.len())
            .expect("level just ensured")
            .1;
        self.maps
            .update(map, &prefix.network().octets(), &[1])
            .expect("filter map");
    }

    /// (Re)builds and attaches the tail-call-chained data path.
    pub fn regenerate(&mut self) {
        let router = LoadedProgram::load(self.router_program()).expect("router verifies");
        self.maps
            .prog_array_set(self.prog_array, ROUTER_SLOT as usize, Some(router))
            .expect("slot 0");
        let entry = LoadedProgram::load(self.entry_program()).expect("entry verifies");
        // (Re)attach the entry program on the upstream port.
        self.kernel.detach_xdp(self.upstream);
        attach(
            &mut self.kernel,
            self.upstream,
            HookPoint::Xdp,
            entry,
            self.maps.clone(),
        )
        .expect("attach");
    }

    /// Emits the per-module framework plumbing: resolve this cube's port
    /// configuration from its context map (every Polycube module does
    /// this on entry).
    fn emit_cube_context(&self, a: &mut Asm) {
        a.mov_reg(3, 10);
        a.alu_imm(AluOp::Add, 3, -48);
        a.store_imm(MemSize::W, 3, 0, 0); // port 0's slot
        a.mov_imm(1, i64::from(self.port_config.0));
        a.mov_reg(2, 3);
        a.mov_imm(3, 4);
        a.mov_reg(4, 10);
        a.alu_imm(AluOp::Add, 4, -56);
        a.mov_imm(5, 8);
        a.call(HelperId::MapLookup);
    }

    /// The entry module: parse/validate, classify (tuple-space search),
    /// tail-call the router module.
    fn entry_program(&self) -> Program {
        let mut a = Asm::new();
        emit_prologue(&mut a);
        self.emit_cube_context(&mut a);
        emit_guard(&mut a, 34);
        a.load(MemSize::H, 2, 6, 12);
        a.jmp_imm(JmpCond::Ne, 2, ETH_P_IPV4_LE, "pass");
        a.load(MemSize::B, 2, 6, 14);
        a.jmp_imm(JmpCond::Ne, 2, 0x45, "pass");
        a.load(MemSize::H, 2, 6, 20);
        a.alu_imm(AluOp::And, 2, 0xFFBF);
        a.jmp_imm(JmpCond::Ne, 2, 0, "pass");
        a.load(MemSize::B, 2, 6, 22);
        a.jmp_imm(JmpCond::Lt, 2, 2, "pass");

        // Tuple-space classifier: one hash probe per distinct prefix
        // length, flat in rule count.
        for (len, map) in &self.filter_maps {
            // Mask the (big-endian) destination bytes; AND is bytewise,
            // so a little-endian immediate of the byte-mask works.
            let mask_be = if *len == 0 {
                0u32
            } else {
                u32::MAX << (32 - len)
            };
            let mask_le = u32::from_le_bytes(mask_be.to_be_bytes());
            a.load(MemSize::W, 2, 6, 30);
            a.alu_imm(AluOp::And, 2, i64::from(mask_le));
            a.mov_reg(3, 10);
            a.alu_imm(AluOp::Add, 3, -8);
            a.store(MemSize::W, 3, 0, 2);
            a.mov_imm(1, i64::from(map.0));
            a.mov_reg(2, 3);
            a.mov_imm(3, 4);
            a.mov_reg(4, 10);
            a.alu_imm(AluOp::Add, 4, -16);
            a.mov_imm(5, 1);
            a.call(HelperId::MapLookup);
            a.jmp_imm(JmpCond::Eq, 0, 0, "drop"); // present in set = DROP
        }

        a.mov_imm(0, Action::Pass.code() as i64);
        a.tail_call(self.prog_array.0, ROUTER_SLOT);
        a.exit(); // router module missing: pass to the kernel
        emit_exits(&mut a);
        Program::new("pcn_entry", a.finish().expect("labels resolve"))
    }

    /// The router module: LPM route map + nexthop map + rewrite +
    /// redirect. Re-derives its packet pointers, as every tail-called
    /// program must.
    fn router_program(&self) -> Program {
        let mut a = Asm::new();
        emit_prologue(&mut a);
        self.emit_cube_context(&mut a);
        emit_guard(&mut a, 34);
        // Route lookup: key = dst bytes.
        a.load(MemSize::W, 2, 6, 30);
        a.mov_reg(3, 10);
        a.alu_imm(AluOp::Add, 3, -8);
        a.store(MemSize::W, 3, 0, 2);
        a.mov_imm(1, i64::from(self.lpm_routes.0));
        a.mov_reg(2, 3);
        a.mov_imm(3, 4);
        a.mov_reg(4, 10);
        a.alu_imm(AluOp::Add, 4, -16);
        a.mov_imm(5, 4);
        a.call(HelperId::MapLookup);
        a.jmp_imm(JmpCond::Ne, 0, 0, "pass"); // no route: kernel decides
                                              // Nexthop lookup: key = the index we just fetched.
        a.mov_imm(1, i64::from(self.nexthops.0));
        a.mov_reg(2, 10);
        a.alu_imm(AluOp::Add, 2, -16);
        a.mov_imm(3, 4);
        a.mov_reg(4, 10);
        a.alu_imm(AluOp::Add, 4, -40);
        a.mov_imm(5, 16);
        a.call(HelperId::MapLookup);
        a.jmp_imm(JmpCond::Ne, 0, 0, "pass");
        // Rewrite MACs from the nexthop entry.
        a.mov_reg(3, 10);
        a.alu_imm(AluOp::Add, 3, -40);
        a.load(MemSize::W, 2, 3, 4);
        a.store(MemSize::W, 6, 0, 2);
        a.load(MemSize::H, 2, 3, 8);
        a.store(MemSize::H, 6, 4, 2);
        a.load(MemSize::W, 2, 3, 10);
        a.store(MemSize::W, 6, 6, 2);
        a.load(MemSize::H, 2, 3, 14);
        a.store(MemSize::H, 6, 10, 2);
        emit_ttl_decrement(&mut a);
        a.mov_reg(3, 10);
        a.alu_imm(AluOp::Add, 3, -40);
        a.load(MemSize::W, 1, 3, 0);
        a.mov_imm(2, 0);
        a.call(HelperId::Redirect);
        a.exit();
        emit_exits(&mut a);
        Program::new("pcn_router", a.finish().expect("labels resolve"))
    }
}

impl Platform for PolycubePlatform {
    fn traits(&self) -> PlatformTraits {
        PlatformTraits {
            name: "Polycube",
            kernel_resident: true,
            standard_linux_api: false, // custom control plane
            transparent_acceleration: false,
            dedicated_cores: false,
            scheduling: Scheduling::XdpResident,
        }
    }

    fn process_batch(&mut self, batch: &mut Batch) -> BatchOutcome {
        self.kernel.inject_batch(self.upstream, batch)
    }

    fn process(&mut self, frame: Vec<u8>) -> RxOutcome {
        self.kernel.receive(self.upstream, frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linux::LinuxPlatform;
    use crate::linuxfp::LinuxFpPlatform;
    use linuxfp_packet::{EthernetFrame, Ipv4Header};
    use std::net::Ipv4Addr;

    #[test]
    fn polycube_forwards_like_linux() {
        let s = Scenario::router();
        let mut pcn = PolycubePlatform::new(s);
        let mut linux = LinuxPlatform::new(s);
        assert_eq!(pcn.dut_mac(), linux.dut_mac());
        let mac = pcn.dut_mac();
        let out_p = pcn.process(s.frame(mac, 5, 60));
        let out_l = linux.process(s.frame(mac, 5, 60));
        assert_eq!(out_p.transmissions(), out_l.transmissions());
        let eth = EthernetFrame::parse(out_p.transmissions()[0].1).unwrap();
        assert_eq!(eth.dst, SINK_MAC);
        let ip = Ipv4Header::parse(&out_p.transmissions()[0].1[14..]).unwrap();
        assert_eq!(ip.ttl, 63);
        assert!(ip.verify_checksum(&out_p.transmissions()[0].1[14..]));
        // Two tail-called modules -> one tail call per packet.
        assert_eq!(out_p.cost.stage_count("tail_call"), 1);
        // route + nexthop + two per-cube context lookups.
        assert_eq!(out_p.cost.stage_count("map_lookup"), 4);
    }

    #[test]
    fn linuxfp_beats_polycube_but_modestly() {
        // Paper footnote 2: LinuxFP sees ~19% higher throughput than
        // Polycube, attributed to tail calls + custom state.
        let s = Scenario::router();
        let mut pcn = PolycubePlatform::new(s);
        let mut lfp = LinuxFpPlatform::new(s);
        let mp = pcn.dut_mac();
        let mf = lfp.dut_mac();
        let tp = pcn.service_time_ns(&mut |i, buf| s.fill_frame(mp, i, 60, buf));
        let tf = lfp.service_time_ns(&mut |i, buf| s.fill_frame(mf, i, 60, buf));
        let ratio = tp / tf;
        assert!(
            (1.02..1.45).contains(&ratio),
            "Polycube/LinuxFP service ratio {ratio:.2} (pcn {tp:.0}ns lfp {tf:.0}ns)"
        );
    }

    #[test]
    fn classifier_drops_blacklisted_and_stays_flat() {
        let s10 = Scenario {
            filter_rules: 10,
            ..Scenario::router()
        };
        let s1000 = Scenario {
            filter_rules: 1000,
            ..Scenario::router()
        };
        let mut small = PolycubePlatform::new(s10);
        let mut large = PolycubePlatform::new(s1000);
        // Blocked traffic drops in the classifier.
        let mac = small.dut_mac();
        let blocked = linuxfp_packet::builder::udp_packet(
            crate::scenario::SOURCE_MAC,
            mac,
            Ipv4Addr::new(10, 0, 1, 100),
            s10.blocked_dst(3),
            1,
            2,
            b"",
        );
        let out = small.process(blocked);
        assert_eq!(out.drops(), vec!["xdp drop"]);
        // Cost is ~flat from 10 to 1000 rules (hash classifier).
        let ms = small.dut_mac();
        let ml = large.dut_mac();
        let t_small = small.service_time_ns(&mut |i, buf| s10.fill_frame(ms, i, 60, buf));
        let t_large = large.service_time_ns(&mut |i, buf| s1000.fill_frame(ml, i, 60, buf));
        assert!(
            (t_large - t_small).abs() < 60.0,
            "classifier should be flat: {t_small:.0} vs {t_large:.0}"
        );
    }

    #[test]
    fn custom_control_plane_is_not_netlink_visible() {
        // The kernel's own tables know nothing about Polycube's routes —
        // the transparency cost the paper highlights (Table II).
        let s = Scenario::router();
        let pcn = PolycubePlatform::new(s);
        assert!(pcn.kernel.dump_routes().is_empty());
        assert!(!pcn.traits().standard_linux_api);
    }
}
