//! The common interface over packet-processing platforms.
//!
//! The paper's evaluation compares four systems configured equivalently:
//! Linux (the baseline), LinuxFP, Polycube v0.9.0 (kernel-resident eBPF
//! with a custom control plane), and VPP 23.10 (user-space kernel bypass
//! with vector processing). [`Platform`] is the measurement surface the
//! workload generators drive; [`PlatformTraits`] captures the qualitative
//! comparison of paper Table II.
//!
//! The interface is **batch-first**: the primitive is
//! [`Platform::process_batch`], which consumes a burst of pooled buffers
//! and returns per-frame outcomes plus the per-burst fixed cost. The
//! single-frame [`Platform::process`] is a convenience wrapper (a batch
//! of one, fixed cost folded in), so a burst of one always costs exactly
//! what one-at-a-time processing costs — amortization is visible only
//! when batches are real.

use linuxfp_netstack::stack::{BatchOutcome, RxOutcome};
use linuxfp_packet::{Batch, BufferPool};

/// How a platform's packet processing is scheduled — determines the
/// latency jitter class in the netperf-style experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduling {
    /// Interrupt-driven full kernel stack (NAPI softirq): largest
    /// scheduling jitter under load.
    InterruptFullStack,
    /// Interrupt-driven but handled at the driver/XDP layer: small
    /// jitter.
    XdpResident,
    /// Dedicated busy-polling cores (DPDK): minimal jitter, but the
    /// configured cores are 100% consumed regardless of load.
    BusyPoll,
}

/// Qualitative platform properties (paper Table II).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlatformTraits {
    /// Platform name.
    pub name: &'static str,
    /// Whether the data plane runs inside the kernel.
    pub kernel_resident: bool,
    /// Whether standard Linux tooling (iproute2, brctl, iptables,
    /// netlink consumers like FRR and Kubernetes CNIs) configures it.
    pub standard_linux_api: bool,
    /// Whether acceleration applies without modifying applications or
    /// management software.
    pub transparent_acceleration: bool,
    /// Whether cores must be dedicated to packet processing.
    pub dedicated_cores: bool,
    /// How processing is scheduled (latency class).
    pub scheduling: Scheduling,
}

/// Frames per injected burst during warm-up and measurement.
const WARMUP: u64 = 32;
const MEASURE: u64 = 128;

/// A packet-processing system under test.
pub trait Platform {
    /// The platform's qualitative properties.
    fn traits(&self) -> PlatformTraits;

    /// Processes a burst of frames arriving on the upstream port,
    /// draining `batch`. Frames are processed in order with unchanged
    /// per-packet semantics; per-burst fixed work is amortized into
    /// [`BatchOutcome::batch_cost`]. Ports are scenario-defined: port 0
    /// is the traffic source side, port 1 the sink side.
    fn process_batch(&mut self, batch: &mut Batch) -> BatchOutcome;

    /// Processes one frame: a batch of one, with the burst-fixed cost
    /// folded into the frame's own tracker, so totals match historical
    /// single-packet processing exactly.
    fn process(&mut self, frame: Vec<u8>) -> RxOutcome {
        let mut batch = Batch::with_capacity(1);
        batch.push(frame);
        let mut out = self.process_batch(&mut batch);
        let mut rx = out.outcomes.pop().unwrap_or_default();
        rx.cost.merge(&out.batch_cost);
        rx
    }

    /// Measures the steady-state per-packet service time (ns) for a
    /// representative workload by averaging several runs after a warm-up
    /// (mirrors the paper's 10-second Pktgen warm-up). `fill` writes
    /// frame `i` into a recycled pooled buffer — the workload generator
    /// performs no per-packet allocation in steady state.
    fn service_time_ns(&mut self, fill: &mut dyn FnMut(u64, &mut Vec<u8>)) -> f64 {
        self.service_time_ns_batched(fill, 1)
    }

    /// Like [`Platform::service_time_ns`] but injecting bursts of
    /// `batch_size` frames — the knob the batch-size sweep turns.
    fn service_time_ns_batched(
        &mut self,
        fill: &mut dyn FnMut(u64, &mut Vec<u8>),
        batch_size: usize,
    ) -> f64 {
        let batch_size = batch_size.max(1) as u64;
        let pool = BufferPool::new();
        let mut batch = Batch::with_capacity(batch_size as usize);
        let mut i = 0u64;
        let mut fill_burst =
            |batch: &mut Batch, n: u64, fill: &mut dyn FnMut(u64, &mut Vec<u8>)| {
                for _ in 0..n {
                    let mut buf = pool.acquire();
                    fill(i, &mut buf);
                    batch.push(buf);
                    i += 1;
                }
            };
        let warm_batches = WARMUP.div_ceil(batch_size);
        for _ in 0..warm_batches {
            fill_burst(&mut batch, batch_size, fill);
            let _ = self.process_batch(&mut batch);
        }
        let mut measured = 0u64;
        let mut total = 0.0;
        while measured < MEASURE {
            let n = batch_size.min(MEASURE - measured);
            fill_burst(&mut batch, n, fill);
            total += self.process_batch(&mut batch).total_ns();
            measured += n;
        }
        total / MEASURE as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f64);
    impl Platform for Fixed {
        fn traits(&self) -> PlatformTraits {
            PlatformTraits {
                name: "fixed",
                kernel_resident: true,
                standard_linux_api: true,
                transparent_acceleration: true,
                dedicated_cores: false,
                scheduling: Scheduling::XdpResident,
            }
        }
        fn process_batch(&mut self, batch: &mut Batch) -> BatchOutcome {
            let mut out = BatchOutcome {
                batch_size: batch.len(),
                ..BatchOutcome::default()
            };
            for _ in batch.drain() {
                let mut rx = RxOutcome::default();
                rx.cost.charge_untracked(self.0);
                out.outcomes.push(rx);
            }
            out
        }
    }

    #[test]
    fn service_time_averages_process_costs() {
        let mut p = Fixed(750.0);
        let t = p.service_time_ns(&mut |_, buf| buf.resize(64, 0));
        assert!((t - 750.0).abs() < 1e-9);
        assert_eq!(p.traits().name, "fixed");
    }

    #[test]
    fn batched_measurement_matches_for_flat_costs() {
        // A platform with no per-burst fixed cost measures identically
        // at every batch size.
        let mut p = Fixed(500.0);
        for bs in [1usize, 8, 32, 64] {
            let t = p.service_time_ns_batched(&mut |_, buf| buf.resize(64, 0), bs);
            assert!((t - 500.0).abs() < 1e-9, "batch {bs}: {t}");
        }
    }

    #[test]
    fn single_frame_process_wrapper_folds_batch_cost() {
        let mut p = Fixed(123.0);
        let out = p.process(vec![0u8; 60]);
        assert!((out.cost.total_ns() - 123.0).abs() < 1e-9);
    }
}
