//! The common interface over packet-processing platforms.
//!
//! The paper's evaluation compares four systems configured equivalently:
//! Linux (the baseline), LinuxFP, Polycube v0.9.0 (kernel-resident eBPF
//! with a custom control plane), and VPP 23.10 (user-space kernel bypass
//! with vector processing). [`Platform`] is the measurement surface the
//! workload generators drive; [`PlatformTraits`] captures the qualitative
//! comparison of paper Table II.

use linuxfp_netstack::stack::RxOutcome;

/// How a platform's packet processing is scheduled — determines the
/// latency jitter class in the netperf-style experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduling {
    /// Interrupt-driven full kernel stack (NAPI softirq): largest
    /// scheduling jitter under load.
    InterruptFullStack,
    /// Interrupt-driven but handled at the driver/XDP layer: small
    /// jitter.
    XdpResident,
    /// Dedicated busy-polling cores (DPDK): minimal jitter, but the
    /// configured cores are 100% consumed regardless of load.
    BusyPoll,
}

/// Qualitative platform properties (paper Table II).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlatformTraits {
    /// Platform name.
    pub name: &'static str,
    /// Whether the data plane runs inside the kernel.
    pub kernel_resident: bool,
    /// Whether standard Linux tooling (iproute2, brctl, iptables,
    /// netlink consumers like FRR and Kubernetes CNIs) configures it.
    pub standard_linux_api: bool,
    /// Whether acceleration applies without modifying applications or
    /// management software.
    pub transparent_acceleration: bool,
    /// Whether cores must be dedicated to packet processing.
    pub dedicated_cores: bool,
    /// How processing is scheduled (latency class).
    pub scheduling: Scheduling,
}

/// A packet-processing system under test.
pub trait Platform {
    /// The platform's qualitative properties.
    fn traits(&self) -> PlatformTraits;

    /// Processes one frame arriving on the upstream port; effects and
    /// charged costs are returned. Ports are scenario-defined: port 0 is
    /// the traffic source side, port 1 the sink side.
    fn process(&mut self, frame: Vec<u8>) -> RxOutcome;

    /// Measures the steady-state per-packet service time (ns) for a
    /// representative workload frame by averaging several runs after a
    /// warm-up (mirrors the paper's 10-second Pktgen warm-up).
    fn service_time_ns(&mut self, make_frame: &mut dyn FnMut(u64) -> Vec<u8>) -> f64 {
        const WARMUP: u64 = 32;
        const MEASURE: u64 = 128;
        for i in 0..WARMUP {
            let _ = self.process(make_frame(i));
        }
        let mut total = 0.0;
        for i in 0..MEASURE {
            let out = self.process(make_frame(WARMUP + i));
            total += out.cost.total_ns();
        }
        total / MEASURE as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f64);
    impl Platform for Fixed {
        fn traits(&self) -> PlatformTraits {
            PlatformTraits {
                name: "fixed",
                kernel_resident: true,
                standard_linux_api: true,
                transparent_acceleration: true,
                dedicated_cores: false,
                scheduling: Scheduling::XdpResident,
            }
        }
        fn process(&mut self, _frame: Vec<u8>) -> RxOutcome {
            let mut out = RxOutcome::default();
            out.cost.charge_untracked(self.0);
            out
        }
    }

    #[test]
    fn service_time_averages_process_costs() {
        let mut p = Fixed(750.0);
        let t = p.service_time_ns(&mut |_| vec![0u8; 64]);
        assert!((t - 750.0).abs() < 1e-9);
        assert_eq!(p.traits().name, "fixed");
    }
}
