//! Connection tracking: 5-tuple flow table with states and timeouts.
//!
//! In the LinuxFP split, conntrack *lookup* is fast-path work while entry
//! *creation* and lifecycle management stay in the slow path (paper
//! Table I, Netfilter and ipvs rows). The ipvs-style load-balancer
//! extension (paper §VIII future work) relies on this table for flow
//! affinity.

use linuxfp_packet::ipv4::IpProto;
use linuxfp_sim::Nanos;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A normalized flow key: the 5-tuple with the lower endpoint first so
/// both directions of a connection map to the same entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    a_addr: Ipv4Addr,
    a_port: u16,
    b_addr: Ipv4Addr,
    b_port: u16,
    proto: u8,
}

impl FlowKey {
    /// Builds a normalized key from one direction of a flow.
    pub fn new(src: Ipv4Addr, sport: u16, dst: Ipv4Addr, dport: u16, proto: IpProto) -> Self {
        if (src, sport) <= (dst, dport) {
            FlowKey {
                a_addr: src,
                a_port: sport,
                b_addr: dst,
                b_port: dport,
                proto: proto.to_u8(),
            }
        } else {
            FlowKey {
                a_addr: dst,
                a_port: dport,
                b_addr: src,
                b_port: sport,
                proto: proto.to_u8(),
            }
        }
    }
}

/// Tracking state of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtState {
    /// First packet seen, no reply yet.
    New,
    /// Traffic seen in both directions.
    Established,
}

/// One tracked connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtEntry {
    /// Current state.
    pub state: CtState,
    /// Originating source address (direction that created the entry).
    pub orig_src: Ipv4Addr,
    /// Last packet time, used for expiry.
    pub last_seen: Nanos,
    /// Optional NAT / load-balancer selected backend (ipvs extension).
    pub backend: Option<(Ipv4Addr, u16)>,
}

/// The connection tracking table.
///
/// # Example
///
/// ```
/// use linuxfp_netstack::conntrack::{Conntrack, CtState, FlowKey};
/// use linuxfp_packet::ipv4::IpProto;
/// use linuxfp_sim::Nanos;
/// use std::net::Ipv4Addr;
///
/// let mut ct = Conntrack::new();
/// let a = Ipv4Addr::new(10, 0, 0, 1);
/// let b = Ipv4Addr::new(10, 0, 0, 2);
/// // First packet creates a NEW entry (slow-path work).
/// let st = ct.track(a, 1000, b, 80, IpProto::Tcp, Nanos::ZERO);
/// assert_eq!(st, CtState::New);
/// // The reply direction establishes it.
/// let st = ct.track(b, 80, a, 1000, IpProto::Tcp, Nanos::from_millis(1));
/// assert_eq!(st, CtState::Established);
/// assert_eq!(ct.lookup(&FlowKey::new(a, 1000, b, 80, IpProto::Tcp), Nanos::from_millis(2)).unwrap().state, CtState::Established);
/// ```
#[derive(Debug, Clone)]
pub struct Conntrack {
    entries: HashMap<FlowKey, CtEntry>,
    /// Idle timeout for `New` entries.
    pub new_timeout: Nanos,
    /// Idle timeout for `Established` entries.
    pub established_timeout: Nanos,
}

impl Conntrack {
    /// Creates an empty table with Linux-like timeouts (60 s NEW,
    /// 432000 s established is unrealistic to simulate; we use 600 s).
    pub fn new() -> Self {
        Conntrack {
            entries: HashMap::new(),
            new_timeout: Nanos::from_secs(60),
            established_timeout: Nanos::from_secs(600),
        }
    }

    /// Processes one packet: creates the entry on first sight, upgrades to
    /// `Established` when the reply direction is seen. Returns the state
    /// *after* processing.
    pub fn track(
        &mut self,
        src: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        proto: IpProto,
        now: Nanos,
    ) -> CtState {
        let key = FlowKey::new(src, sport, dst, dport, proto);
        match self.entries.get_mut(&key) {
            Some(entry)
                if !Self::expired(entry, self.new_timeout, self.established_timeout, now) =>
            {
                entry.last_seen = now;
                if entry.state == CtState::New && entry.orig_src != src {
                    entry.state = CtState::Established;
                }
                entry.state
            }
            _ => {
                self.entries.insert(
                    key,
                    CtEntry {
                        state: CtState::New,
                        orig_src: src,
                        last_seen: now,
                        backend: None,
                    },
                );
                CtState::New
            }
        }
    }

    fn expired(entry: &CtEntry, new_to: Nanos, est_to: Nanos, now: Nanos) -> bool {
        let timeout = match entry.state {
            CtState::New => new_to,
            CtState::Established => est_to,
        };
        now.saturating_sub(entry.last_seen) > timeout
    }

    /// Looks up an entry without refreshing it; expired entries read as
    /// absent (lazy expiry).
    pub fn lookup(&mut self, key: &FlowKey, now: Nanos) -> Option<CtEntry> {
        let entry = self.entries.get(key)?;
        if Self::expired(entry, self.new_timeout, self.established_timeout, now) {
            self.entries.remove(key);
            return None;
        }
        Some(*entry)
    }

    /// Associates a load-balancer backend with a flow (ipvs extension).
    pub fn set_backend(&mut self, key: &FlowKey, backend: (Ipv4Addr, u16)) -> bool {
        match self.entries.get_mut(key) {
            Some(e) => {
                e.backend = Some(backend);
                true
            }
            None => false,
        }
    }

    /// Removes expired entries eagerly; returns how many were collected.
    pub fn gc(&mut self, now: Nanos) -> usize {
        let (new_to, est_to) = (self.new_timeout, self.established_timeout);
        let before = self.entries.len();
        self.entries
            .retain(|_, e| !Self::expired(e, new_to, est_to, now));
        before - self.entries.len()
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for Conntrack {
    fn default() -> Self {
        Conntrack::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ips() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
    }

    #[test]
    fn key_is_direction_agnostic() {
        let (a, b) = ips();
        assert_eq!(
            FlowKey::new(a, 1000, b, 80, IpProto::Tcp),
            FlowKey::new(b, 80, a, 1000, IpProto::Tcp)
        );
        assert_ne!(
            FlowKey::new(a, 1000, b, 80, IpProto::Tcp),
            FlowKey::new(a, 1000, b, 80, IpProto::Udp)
        );
    }

    #[test]
    fn same_direction_stays_new() {
        let (a, b) = ips();
        let mut ct = Conntrack::new();
        assert_eq!(
            ct.track(a, 1, b, 2, IpProto::Udp, Nanos::ZERO),
            CtState::New
        );
        assert_eq!(
            ct.track(a, 1, b, 2, IpProto::Udp, Nanos::from_secs(1)),
            CtState::New
        );
        assert_eq!(ct.len(), 1);
    }

    #[test]
    fn new_entry_expires() {
        let (a, b) = ips();
        let mut ct = Conntrack::new();
        ct.track(a, 1, b, 2, IpProto::Udp, Nanos::ZERO);
        let key = FlowKey::new(a, 1, b, 2, IpProto::Udp);
        assert!(ct.lookup(&key, Nanos::from_secs(30)).is_some());
        assert!(ct.lookup(&key, Nanos::from_secs(61)).is_none());
        assert!(ct.is_empty());
    }

    #[test]
    fn established_outlives_new_timeout() {
        let (a, b) = ips();
        let mut ct = Conntrack::new();
        ct.track(a, 1, b, 2, IpProto::Tcp, Nanos::ZERO);
        ct.track(b, 2, a, 1, IpProto::Tcp, Nanos::from_secs(1));
        let key = FlowKey::new(a, 1, b, 2, IpProto::Tcp);
        assert_eq!(
            ct.lookup(&key, Nanos::from_secs(100)).unwrap().state,
            CtState::Established
        );
        assert!(ct.lookup(&key, Nanos::from_secs(1 + 601)).is_none());
    }

    #[test]
    fn expired_entry_recreated_as_new() {
        let (a, b) = ips();
        let mut ct = Conntrack::new();
        ct.track(a, 1, b, 2, IpProto::Tcp, Nanos::ZERO);
        ct.track(b, 2, a, 1, IpProto::Tcp, Nanos::from_secs(1)); // established
                                                                 // Way past expiry, the same tuple is NEW again.
        let st = ct.track(a, 1, b, 2, IpProto::Tcp, Nanos::from_secs(5000));
        assert_eq!(st, CtState::New);
    }

    #[test]
    fn backend_affinity() {
        let (a, b) = ips();
        let mut ct = Conntrack::new();
        let key = FlowKey::new(a, 1, b, 80, IpProto::Tcp);
        assert!(!ct.set_backend(&key, (b, 8080)));
        ct.track(a, 1, b, 80, IpProto::Tcp, Nanos::ZERO);
        assert!(ct.set_backend(&key, (b, 8080)));
        assert_eq!(
            ct.lookup(&key, Nanos::from_secs(1)).unwrap().backend,
            Some((b, 8080))
        );
    }

    #[test]
    fn gc_collects() {
        let (a, b) = ips();
        let mut ct = Conntrack::new();
        ct.track(a, 1, b, 2, IpProto::Udp, Nanos::ZERO);
        ct.track(a, 3, b, 4, IpProto::Udp, Nanos::from_secs(50));
        assert_eq!(ct.gc(Nanos::from_secs(70)), 1);
        assert_eq!(ct.len(), 1);
    }
}
