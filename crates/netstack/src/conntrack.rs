//! Connection tracking: 5-tuple flow table with states and timeouts.
//!
//! In the LinuxFP split, conntrack *lookup* is fast-path work while entry
//! *creation* and lifecycle management stay in the slow path (paper
//! Table I, Netfilter and ipvs rows). The ipvs-style load-balancer
//! extension (paper §VIII future work) relies on this table for flow
//! affinity.

use linuxfp_packet::ipv4::IpProto;
use linuxfp_sim::Nanos;
use linuxfp_telemetry::Counter;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A normalized flow key: the 5-tuple with the lower endpoint first so
/// both directions of a connection map to the same entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    a_addr: Ipv4Addr,
    a_port: u16,
    b_addr: Ipv4Addr,
    b_port: u16,
    proto: u8,
}

impl FlowKey {
    /// Builds a normalized key from one direction of a flow.
    pub fn new(src: Ipv4Addr, sport: u16, dst: Ipv4Addr, dport: u16, proto: IpProto) -> Self {
        if (src, sport) <= (dst, dport) {
            FlowKey {
                a_addr: src,
                a_port: sport,
                b_addr: dst,
                b_port: dport,
                proto: proto.to_u8(),
            }
        } else {
            FlowKey {
                a_addr: dst,
                a_port: dport,
                b_addr: src,
                b_port: sport,
                proto: proto.to_u8(),
            }
        }
    }
}

/// A *directional* 5-tuple used by the NAT machinery. Unlike
/// [`FlowKey`] it is not normalized: DNAT/SNAT translations are
/// direction-specific, so the original and reply directions get their
/// own entries in the NAT binding table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NatTuple {
    /// Source address.
    pub src: Ipv4Addr,
    /// Source port (0 for port-less protocols).
    pub sport: u16,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Destination port.
    pub dport: u16,
    /// IP protocol number.
    pub proto: u8,
}

impl NatTuple {
    /// Builds a tuple from one packet direction.
    pub fn new(src: Ipv4Addr, sport: u16, dst: Ipv4Addr, dport: u16, proto: u8) -> Self {
        NatTuple {
            src,
            sport,
            dst,
            dport,
            proto,
        }
    }

    /// The same flow seen from the other direction.
    pub fn reversed(&self) -> NatTuple {
        NatTuple {
            src: self.dst,
            sport: self.dport,
            dst: self.src,
            dport: self.sport,
            proto: self.proto,
        }
    }
}

/// One direction of an installed NAT binding.
#[derive(Debug, Clone, Copy)]
struct NatBinding {
    /// The fully translated tuple for packets matching the entry key.
    xlat: NatTuple,
    /// Whether this entry translates the reply direction.
    reply: bool,
    /// A masquerade port owned by this entry, returned to the allocator
    /// when the binding dies (only set on the original direction).
    owns_port: Option<u16>,
    last_seen: Nanos,
}

/// What a NAT binding lookup tells the translator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NatRewrite {
    /// The tuple the packet must be rewritten to.
    pub xlat: NatTuple,
    /// Whether this is the reply direction being un-translated.
    pub reply: bool,
}

/// Tracking state of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtState {
    /// First packet seen, no reply yet.
    New,
    /// Traffic seen in both directions.
    Established,
}

/// One tracked connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtEntry {
    /// Current state.
    pub state: CtState,
    /// Originating source address (direction that created the entry).
    pub orig_src: Ipv4Addr,
    /// Last packet time, used for expiry.
    pub last_seen: Nanos,
    /// Optional NAT / load-balancer selected backend (ipvs extension).
    pub backend: Option<(Ipv4Addr, u16)>,
}

/// The connection tracking table.
///
/// # Example
///
/// ```
/// use linuxfp_netstack::conntrack::{Conntrack, CtState, FlowKey};
/// use linuxfp_packet::ipv4::IpProto;
/// use linuxfp_sim::Nanos;
/// use std::net::Ipv4Addr;
///
/// let mut ct = Conntrack::new();
/// let a = Ipv4Addr::new(10, 0, 0, 1);
/// let b = Ipv4Addr::new(10, 0, 0, 2);
/// // First packet creates a NEW entry (slow-path work).
/// let st = ct.track(a, 1000, b, 80, IpProto::Tcp, Nanos::ZERO);
/// assert_eq!(st, CtState::New);
/// // The reply direction establishes it.
/// let st = ct.track(b, 80, a, 1000, IpProto::Tcp, Nanos::from_millis(1));
/// assert_eq!(st, CtState::Established);
/// assert_eq!(ct.lookup(&FlowKey::new(a, 1000, b, 80, IpProto::Tcp), Nanos::from_millis(2)).unwrap().state, CtState::Established);
/// ```
#[derive(Debug, Clone)]
pub struct Conntrack {
    entries: HashMap<FlowKey, CtEntry>,
    /// Per-direction NAT bindings (iptables `nat` table state).
    nat: HashMap<NatTuple, NatBinding>,
    /// Masquerade ports freed by lazy expiry, drained by the owner of
    /// the port allocator.
    freed_nat_ports: Vec<u16>,
    /// Idle timeout for `New` entries.
    pub new_timeout: Nanos,
    /// Idle timeout for `Established` entries.
    pub established_timeout: Nanos,
    /// Flow-table capacity (`net.netfilter.nf_conntrack_max`): inserting
    /// past this evicts the oldest entry instead of growing unboundedly.
    pub max_entries: usize,
    /// NAT binding-table capacity in *directional* entries (a binding
    /// pair occupies two). Installing past this evicts the
    /// least-recently-seen pair instead of growing unboundedly, exactly
    /// like the flow map above.
    pub max_nat_entries: usize,
    evictions: u64,
    nat_evictions: u64,
    eviction_counter: Option<Counter>,
    nat_eviction_counter: Option<Counter>,
    /// ipvs backends unpinned by flow eviction, drained by the owner of
    /// the ipvs subsystem so `Backend::active` can be decremented.
    freed_backends: Vec<(Ipv4Addr, u16)>,
    /// Monotonic generation, bumped on every change a fast-path helper
    /// could observe: entry/binding removal (eviction, lazy expiry, GC),
    /// backend pinning, and NAT binding installs. Plain entry creation
    /// and `last_seen` refreshes do not bump it — `bpf_ct_lookup` and
    /// `bpf_nat_lookup` return identical results either way. Consumed by
    /// the microflow verdict cache's coherence check.
    generation: u64,
}

impl Conntrack {
    /// Creates an empty table with Linux-like timeouts (60 s NEW,
    /// 432000 s established is unrealistic to simulate; we use 600 s)
    /// and a 65536-entry capacity.
    pub fn new() -> Self {
        Conntrack {
            entries: HashMap::new(),
            nat: HashMap::new(),
            freed_nat_ports: Vec::new(),
            new_timeout: Nanos::from_secs(60),
            established_timeout: Nanos::from_secs(600),
            max_entries: 65536,
            max_nat_entries: 65536,
            evictions: 0,
            nat_evictions: 0,
            eviction_counter: None,
            nat_eviction_counter: None,
            freed_backends: Vec::new(),
            generation: 0,
        }
    }

    /// The coherence generation (see the field docs).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Counts capacity evictions into `counter` as well as the local
    /// [`Conntrack::evictions`] tally.
    pub fn set_eviction_counter(&mut self, counter: Counter) {
        self.eviction_counter = Some(counter);
    }

    /// Counts NAT-binding capacity evictions into `counter` as well as
    /// the local [`Conntrack::nat_evictions`] tally.
    pub fn set_nat_eviction_counter(&mut self, counter: Counter) {
        self.nat_eviction_counter = Some(counter);
    }

    /// Entries evicted because the table was at [`Conntrack::max_entries`].
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Binding pairs evicted because the NAT table was at
    /// [`Conntrack::max_nat_entries`].
    pub fn nat_evictions(&self) -> u64 {
        self.nat_evictions
    }

    /// Processes one packet: creates the entry on first sight, upgrades to
    /// `Established` when the reply direction is seen. Returns the state
    /// *after* processing.
    pub fn track(
        &mut self,
        src: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        proto: IpProto,
        now: Nanos,
    ) -> CtState {
        let key = FlowKey::new(src, sport, dst, dport, proto);
        match self.entries.get_mut(&key) {
            Some(entry)
                if !Self::expired(entry, self.new_timeout, self.established_timeout, now) =>
            {
                entry.last_seen = now;
                if entry.state == CtState::New && entry.orig_src != src {
                    entry.state = CtState::Established;
                }
                entry.state
            }
            _ => {
                if !self.entries.contains_key(&key) && self.entries.len() >= self.max_entries {
                    self.evict_oldest();
                }
                self.entries.insert(
                    key,
                    CtEntry {
                        state: CtState::New,
                        orig_src: src,
                        last_seen: now,
                        backend: None,
                    },
                );
                CtState::New
            }
        }
    }

    /// Removes the least-recently-seen entry (deterministic tie-break on
    /// the key) to make room at capacity. The flow's companion state goes
    /// with it: paired NAT bindings are evicted (returning any owned
    /// masquerade port to the freed list) and a pinned ipvs backend is
    /// parked for the scheduler to unpin — a forgotten flow must not keep
    /// a port or a connection slot bound forever.
    fn evict_oldest(&mut self) {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(k, e)| (e.last_seen, k.a_addr, k.a_port, k.b_addr, k.b_port, k.proto))
            .map(|(k, _)| *k);
        if let Some(k) = victim {
            self.generation = self.generation.wrapping_add(1);
            let entry = self.entries.remove(&k).expect("victim present");
            for tuple in [
                NatTuple::new(k.a_addr, k.a_port, k.b_addr, k.b_port, k.proto),
                NatTuple::new(k.b_addr, k.b_port, k.a_addr, k.a_port, k.proto),
            ] {
                self.nat_remove_pair(&tuple);
            }
            if let Some(backend) = entry.backend {
                self.freed_backends.push(backend);
            }
            self.evictions += 1;
            if let Some(c) = &self.eviction_counter {
                c.inc();
            }
        }
    }

    fn expired(entry: &CtEntry, new_to: Nanos, est_to: Nanos, now: Nanos) -> bool {
        let timeout = match entry.state {
            CtState::New => new_to,
            CtState::Established => est_to,
        };
        now.saturating_sub(entry.last_seen) > timeout
    }

    /// Looks up an entry without refreshing it; expired entries read as
    /// absent (lazy expiry).
    pub fn lookup(&mut self, key: &FlowKey, now: Nanos) -> Option<CtEntry> {
        let entry = self.entries.get(key)?;
        if Self::expired(entry, self.new_timeout, self.established_timeout, now) {
            self.entries.remove(key);
            self.generation = self.generation.wrapping_add(1);
            return None;
        }
        Some(*entry)
    }

    /// Associates a load-balancer backend with a flow (ipvs extension).
    pub fn set_backend(&mut self, key: &FlowKey, backend: (Ipv4Addr, u16)) -> bool {
        match self.entries.get_mut(key) {
            Some(e) => {
                e.backend = Some(backend);
                self.generation = self.generation.wrapping_add(1);
                true
            }
            None => false,
        }
    }

    /// Removes expired entries eagerly; returns how many were collected.
    pub fn gc(&mut self, now: Nanos) -> usize {
        let (new_to, est_to) = (self.new_timeout, self.established_timeout);
        let before = self.entries.len();
        self.entries
            .retain(|_, e| !Self::expired(e, new_to, est_to, now));
        let removed = before - self.entries.len();
        if removed > 0 {
            self.generation = self.generation.wrapping_add(1);
        }
        removed
    }

    // ------------------------------------------------------------------
    // NAT bindings (iptables `nat` table state)
    // ------------------------------------------------------------------

    /// Installs a NAT binding: packets matching `orig` are rewritten to
    /// `xlat`, and reply packets (matching the reverse of `xlat`) are
    /// rewritten back to the reverse of `orig`. `owns_port` records a
    /// masquerade port to return to the allocator when the binding dies.
    ///
    /// The binding table is capped at [`Conntrack::max_nat_entries`]
    /// directional entries: installing past capacity evicts the
    /// least-recently-seen pair first (its owned port lands in the
    /// freed-port list), mirroring the flow map's `evict_oldest`.
    pub fn nat_install(
        &mut self,
        orig: NatTuple,
        xlat: NatTuple,
        owns_port: Option<u16>,
        now: Nanos,
    ) {
        let reply_key = xlat.reversed();
        let mut new_keys = 0;
        if !self.nat.contains_key(&orig) {
            new_keys += 1;
        }
        if !self.nat.contains_key(&reply_key) {
            new_keys += 1;
        }
        while new_keys > 0 && self.nat.len() + new_keys > self.max_nat_entries {
            if !self.nat_evict_oldest_pair() {
                break;
            }
        }
        self.generation = self.generation.wrapping_add(1);
        self.nat.insert(
            orig,
            NatBinding {
                xlat,
                reply: false,
                owns_port,
                last_seen: now,
            },
        );
        self.nat.insert(
            xlat.reversed(),
            NatBinding {
                xlat: orig.reversed(),
                reply: true,
                owns_port: None,
                last_seen: now,
            },
        );
    }

    /// Evicts the least-recently-seen NAT binding pair (deterministic
    /// tie-break on the key) to make room at capacity. Returns `false`
    /// when the table is empty.
    fn nat_evict_oldest_pair(&mut self) -> bool {
        let victim = self
            .nat
            .iter()
            .min_by_key(|(k, e)| (e.last_seen, k.src, k.sport, k.dst, k.dport, k.proto))
            .map(|(k, _)| *k);
        let Some(key) = victim else {
            return false;
        };
        self.nat_remove_pair(&key);
        self.nat_evictions += 1;
        if let Some(c) = &self.nat_eviction_counter {
            c.inc();
        }
        true
    }

    /// Removes a directional NAT entry and its partner (the other
    /// direction of the same binding), parking any owned masquerade port
    /// in the freed-port list. Returns whether `key` was present.
    fn nat_remove_pair(&mut self, key: &NatTuple) -> bool {
        let Some(dead) = self.nat.remove(key) else {
            return false;
        };
        self.generation = self.generation.wrapping_add(1);
        if let Some(p) = dead.owns_port {
            self.freed_nat_ports.push(p);
        }
        if let Some(partner) = self.nat.remove(&dead.xlat.reversed()) {
            if let Some(p) = partner.owns_port {
                self.freed_nat_ports.push(p);
            }
        }
        true
    }

    /// Looks up the NAT binding for a packet tuple, refreshing both
    /// directions on a hit. Expired bindings read as absent (lazy
    /// expiry, like [`Conntrack::lookup`]); any masquerade port they
    /// owned is parked in the freed-port list.
    pub fn nat_lookup(&mut self, tuple: &NatTuple, now: Nanos) -> Option<NatRewrite> {
        let entry = self.nat.get(tuple)?;
        // Partner key: for the original direction the partner is the
        // reply entry keyed by the reversed translated tuple; for the
        // reply direction it is the original entry — in both cases
        // `xlat.reversed()`.
        let partner = entry.xlat.reversed();
        if now.saturating_sub(entry.last_seen) > self.established_timeout {
            self.generation = self.generation.wrapping_add(1);
            for key in [*tuple, partner] {
                if let Some(dead) = self.nat.remove(&key) {
                    if let Some(p) = dead.owns_port {
                        self.freed_nat_ports.push(p);
                    }
                }
            }
            return None;
        }
        let rewrite = NatRewrite {
            xlat: entry.xlat,
            reply: entry.reply,
        };
        self.nat.get_mut(tuple).expect("present").last_seen = now;
        if let Some(p) = self.nat.get_mut(&partner) {
            p.last_seen = now;
        }
        Some(rewrite)
    }

    /// Eagerly removes expired NAT bindings; returns how many directional
    /// entries were collected.
    pub fn nat_gc(&mut self, now: Nanos) -> usize {
        let timeout = self.established_timeout;
        let before = self.nat.len();
        let freed = &mut self.freed_nat_ports;
        self.nat.retain(|_, e| {
            let dead = now.saturating_sub(e.last_seen) > timeout;
            if dead {
                if let Some(p) = e.owns_port {
                    freed.push(p);
                }
            }
            !dead
        });
        let removed = before - self.nat.len();
        if removed > 0 {
            self.generation = self.generation.wrapping_add(1);
        }
        removed
    }

    /// Drains masquerade ports freed by expired bindings so the port
    /// allocator can reuse them.
    pub fn take_freed_nat_ports(&mut self) -> Vec<u16> {
        std::mem::take(&mut self.freed_nat_ports)
    }

    /// Drains ipvs backends unpinned by flow eviction so the scheduler
    /// can decrement their live-connection counts.
    pub fn take_freed_backends(&mut self) -> Vec<(Ipv4Addr, u16)> {
        std::mem::take(&mut self.freed_backends)
    }

    /// Number of directional NAT binding entries.
    pub fn nat_len(&self) -> usize {
        self.nat.len()
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for Conntrack {
    fn default() -> Self {
        Conntrack::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ips() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
    }

    #[test]
    fn key_is_direction_agnostic() {
        let (a, b) = ips();
        assert_eq!(
            FlowKey::new(a, 1000, b, 80, IpProto::Tcp),
            FlowKey::new(b, 80, a, 1000, IpProto::Tcp)
        );
        assert_ne!(
            FlowKey::new(a, 1000, b, 80, IpProto::Tcp),
            FlowKey::new(a, 1000, b, 80, IpProto::Udp)
        );
    }

    #[test]
    fn same_direction_stays_new() {
        let (a, b) = ips();
        let mut ct = Conntrack::new();
        assert_eq!(
            ct.track(a, 1, b, 2, IpProto::Udp, Nanos::ZERO),
            CtState::New
        );
        assert_eq!(
            ct.track(a, 1, b, 2, IpProto::Udp, Nanos::from_secs(1)),
            CtState::New
        );
        assert_eq!(ct.len(), 1);
    }

    #[test]
    fn new_entry_expires() {
        let (a, b) = ips();
        let mut ct = Conntrack::new();
        ct.track(a, 1, b, 2, IpProto::Udp, Nanos::ZERO);
        let key = FlowKey::new(a, 1, b, 2, IpProto::Udp);
        assert!(ct.lookup(&key, Nanos::from_secs(30)).is_some());
        assert!(ct.lookup(&key, Nanos::from_secs(61)).is_none());
        assert!(ct.is_empty());
    }

    #[test]
    fn established_outlives_new_timeout() {
        let (a, b) = ips();
        let mut ct = Conntrack::new();
        ct.track(a, 1, b, 2, IpProto::Tcp, Nanos::ZERO);
        ct.track(b, 2, a, 1, IpProto::Tcp, Nanos::from_secs(1));
        let key = FlowKey::new(a, 1, b, 2, IpProto::Tcp);
        assert_eq!(
            ct.lookup(&key, Nanos::from_secs(100)).unwrap().state,
            CtState::Established
        );
        assert!(ct.lookup(&key, Nanos::from_secs(1 + 601)).is_none());
    }

    #[test]
    fn expired_entry_recreated_as_new() {
        let (a, b) = ips();
        let mut ct = Conntrack::new();
        ct.track(a, 1, b, 2, IpProto::Tcp, Nanos::ZERO);
        ct.track(b, 2, a, 1, IpProto::Tcp, Nanos::from_secs(1)); // established
                                                                 // Way past expiry, the same tuple is NEW again.
        let st = ct.track(a, 1, b, 2, IpProto::Tcp, Nanos::from_secs(5000));
        assert_eq!(st, CtState::New);
    }

    #[test]
    fn backend_affinity() {
        let (a, b) = ips();
        let mut ct = Conntrack::new();
        let key = FlowKey::new(a, 1, b, 80, IpProto::Tcp);
        assert!(!ct.set_backend(&key, (b, 8080)));
        ct.track(a, 1, b, 80, IpProto::Tcp, Nanos::ZERO);
        assert!(ct.set_backend(&key, (b, 8080)));
        assert_eq!(
            ct.lookup(&key, Nanos::from_secs(1)).unwrap().backend,
            Some((b, 8080))
        );
    }

    #[test]
    fn gc_collects() {
        let (a, b) = ips();
        let mut ct = Conntrack::new();
        ct.track(a, 1, b, 2, IpProto::Udp, Nanos::ZERO);
        ct.track(a, 3, b, 4, IpProto::Udp, Nanos::from_secs(50));
        assert_eq!(ct.gc(Nanos::from_secs(70)), 1);
        assert_eq!(ct.len(), 1);
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let (a, b) = ips();
        let mut ct = Conntrack::new();
        ct.max_entries = 3;
        for sport in 0..3u16 {
            ct.track(
                a,
                sport,
                b,
                80,
                IpProto::Udp,
                Nanos::from_millis(u64::from(sport)),
            );
        }
        assert_eq!(ct.len(), 3);
        assert_eq!(ct.evictions(), 0);
        // A fourth flow evicts the oldest (sport 0), not the table.
        ct.track(a, 99, b, 80, IpProto::Udp, Nanos::from_millis(10));
        assert_eq!(ct.len(), 3);
        assert_eq!(ct.evictions(), 1);
        assert!(ct
            .lookup(
                &FlowKey::new(a, 0, b, 80, IpProto::Udp),
                Nanos::from_millis(10)
            )
            .is_none());
        assert!(ct
            .lookup(
                &FlowKey::new(a, 1, b, 80, IpProto::Udp),
                Nanos::from_millis(10)
            )
            .is_some());
        // Refreshing an existing flow at capacity does not evict.
        ct.track(a, 1, b, 80, IpProto::Udp, Nanos::from_millis(11));
        assert_eq!(ct.evictions(), 1);
    }

    fn tuple(sport: u16) -> NatTuple {
        NatTuple::new(
            Ipv4Addr::new(192, 168, 1, 10),
            sport,
            Ipv4Addr::new(8, 8, 8, 8),
            53,
            17,
        )
    }

    #[test]
    fn nat_binding_translates_both_directions() {
        let mut ct = Conntrack::new();
        let orig = tuple(40000);
        let xlat = NatTuple::new(
            Ipv4Addr::new(198, 51, 100, 1),
            32768,
            Ipv4Addr::new(8, 8, 8, 8),
            53,
            17,
        );
        ct.nat_install(orig, xlat, Some(32768), Nanos::ZERO);
        assert_eq!(ct.nat_len(), 2);
        let fwd = ct.nat_lookup(&orig, Nanos::from_secs(1)).unwrap();
        assert_eq!(fwd.xlat, xlat);
        assert!(!fwd.reply);
        let rev = ct
            .nat_lookup(&xlat.reversed(), Nanos::from_secs(1))
            .unwrap();
        assert_eq!(rev.xlat, orig.reversed());
        assert!(rev.reply);
        assert!(ct.nat_lookup(&tuple(41000), Nanos::from_secs(1)).is_none());
    }

    #[test]
    fn nat_binding_expires_and_frees_port() {
        let mut ct = Conntrack::new();
        let orig = tuple(40000);
        let xlat = NatTuple::new(
            Ipv4Addr::new(198, 51, 100, 1),
            32768,
            Ipv4Addr::new(8, 8, 8, 8),
            53,
            17,
        );
        ct.nat_install(orig, xlat, Some(32768), Nanos::ZERO);
        // Refreshes keep both directions alive.
        ct.nat_lookup(&orig, Nanos::from_secs(500)).unwrap();
        assert!(ct
            .nat_lookup(&xlat.reversed(), Nanos::from_secs(900))
            .is_some());
        // Way past the timeout, the pair lazily dies and the port frees.
        assert!(ct.nat_lookup(&orig, Nanos::from_secs(9000)).is_none());
        assert_eq!(ct.nat_len(), 0);
        assert_eq!(ct.take_freed_nat_ports(), vec![32768]);
        assert!(ct.take_freed_nat_ports().is_empty());
    }

    #[test]
    fn nat_install_respects_capacity_cap() {
        // Pre-fix, the NAT map grew without bound: installing a third
        // pair with max_nat_entries = 4 left six directional entries.
        let mut ct = Conntrack::new();
        ct.max_nat_entries = 4;
        let gw = Ipv4Addr::new(198, 51, 100, 1);
        for (i, sport) in [40000u16, 40001, 40002].iter().enumerate() {
            ct.nat_install(
                tuple(*sport),
                NatTuple::new(gw, 32768 + i as u16, tuple(*sport).dst, 53, 17),
                Some(32768 + i as u16),
                Nanos::from_secs(i as u64),
            );
        }
        assert_eq!(ct.nat_len(), 4, "cap must hold");
        assert_eq!(ct.nat_evictions(), 1);
        // The oldest pair (sport 40000, installed at t=0) was evicted and
        // its masquerade port returned; the newer two still translate.
        assert_eq!(ct.take_freed_nat_ports(), vec![32768]);
        assert!(ct.nat_lookup(&tuple(40000), Nanos::from_secs(3)).is_none());
        assert!(ct.nat_lookup(&tuple(40001), Nanos::from_secs(3)).is_some());
        assert!(ct.nat_lookup(&tuple(40002), Nanos::from_secs(3)).is_some());
    }

    #[test]
    fn nat_reinstall_at_capacity_does_not_evict() {
        let mut ct = Conntrack::new();
        ct.max_nat_entries = 2;
        let gw = Ipv4Addr::new(198, 51, 100, 1);
        let xlat = NatTuple::new(gw, 32768, tuple(40000).dst, 53, 17);
        ct.nat_install(tuple(40000), xlat, Some(32768), Nanos::ZERO);
        // Re-installing the same pair overwrites in place.
        ct.nat_install(tuple(40000), xlat, Some(32768), Nanos::from_secs(1));
        assert_eq!(ct.nat_len(), 2);
        assert_eq!(ct.nat_evictions(), 0);
        assert!(ct.take_freed_nat_ports().is_empty());
    }

    #[test]
    fn flow_eviction_takes_companion_nat_bindings() {
        // Pre-fix, evicting a flow at capacity left its NAT pair (and the
        // masquerade port it owned) alive forever.
        let (a, b) = ips();
        let mut ct = Conntrack::new();
        ct.max_entries = 1;
        let gw = Ipv4Addr::new(198, 51, 100, 1);
        // Flow a:1000 -> b:53 is tracked and masqueraded as gw:32768.
        ct.track(a, 1000, b, 53, IpProto::Udp, Nanos::ZERO);
        let orig = NatTuple::new(a, 1000, b, 53, 17);
        let xlat = NatTuple::new(gw, 32768, b, 53, 17);
        ct.nat_install(orig, xlat, Some(32768), Nanos::ZERO);
        assert_eq!((ct.len(), ct.nat_len()), (1, 2));
        // A second flow evicts the first (capacity 1)...
        ct.track(a, 2000, b, 53, IpProto::Udp, Nanos::from_secs(1));
        assert_eq!(ct.evictions(), 1);
        // ...and the companion NAT pair dies with it, freeing the port.
        assert_eq!(ct.nat_len(), 0, "companion NAT bindings must be evicted");
        assert_eq!(ct.take_freed_nat_ports(), vec![32768]);
        assert!(ct.nat_lookup(&orig, Nanos::from_secs(1)).is_none());
        assert!(ct
            .nat_lookup(&xlat.reversed(), Nanos::from_secs(1))
            .is_none());
    }

    #[test]
    fn flow_eviction_unpins_ipvs_backend() {
        let (a, b) = ips();
        let mut ct = Conntrack::new();
        ct.max_entries = 1;
        ct.track(a, 1000, b, 53, IpProto::Udp, Nanos::ZERO);
        let key = FlowKey::new(a, 1000, b, 53, IpProto::Udp);
        assert!(ct.set_backend(&key, (Ipv4Addr::new(10, 0, 2, 10), 5300)));
        ct.track(a, 2000, b, 53, IpProto::Udp, Nanos::from_secs(1));
        assert_eq!(
            ct.take_freed_backends(),
            vec![(Ipv4Addr::new(10, 0, 2, 10), 5300)]
        );
        assert!(ct.take_freed_backends().is_empty());
    }

    #[test]
    fn nat_gc_collects_pairs() {
        let mut ct = Conntrack::new();
        ct.nat_install(
            tuple(1),
            NatTuple::new(Ipv4Addr::new(198, 51, 100, 1), 32768, tuple(1).dst, 53, 17),
            Some(32768),
            Nanos::ZERO,
        );
        ct.nat_install(
            tuple(2),
            NatTuple::new(Ipv4Addr::new(198, 51, 100, 1), 32769, tuple(2).dst, 53, 17),
            Some(32769),
            Nanos::from_secs(500),
        );
        assert_eq!(ct.nat_gc(Nanos::from_secs(700)), 2);
        assert_eq!(ct.nat_len(), 2);
        assert_eq!(ct.take_freed_nat_ports(), vec![32768]);
    }
}
