//! The iptables `nat` table: PREROUTING DNAT and POSTROUTING
//! SNAT/MASQUERADE, with a deterministic port allocator.
//!
//! Like real netfilter NAT, rules are only consulted for the *first*
//! packet of a flow; the resulting binding is pinned in
//! [`Conntrack`] per direction so later packets (on either path) and
//! replies are translated by table lookup alone. That lookup is exactly
//! what the `bpf_nat_lookup` helper exposes to synthesized fast paths —
//! rule evaluation, port allocation and binding installation stay
//! slow-path work, mirroring the paper's split for conntrack and ipvs.
//!
//! NAT applies to TCP and UDP only; other protocols pass untranslated.

use crate::conntrack::{Conntrack, NatTuple};
use crate::device::IfIndex;
use linuxfp_packet::ipv4::{IpProto, Prefix};
use linuxfp_sim::Nanos;
use linuxfp_telemetry::trace::{TraceCtx, TraceEvent};
use linuxfp_telemetry::Counter;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// The two built-in chains of the `nat` table this model supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NatChain {
    /// Destination NAT, applied before routing.
    Prerouting,
    /// Source NAT / masquerade, applied after routing.
    Postrouting,
}

/// What a matching NAT rule does to the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NatTarget {
    /// `-j DNAT --to-destination <to>[:<to_port>]`.
    Dnat {
        /// New destination address.
        to: Ipv4Addr,
        /// New destination port (keep the original when `None`).
        to_port: Option<u16>,
    },
    /// `-j SNAT --to-source <to>` (source port kept).
    Snat {
        /// New source address.
        to: Ipv4Addr,
    },
    /// `-j MASQUERADE`: source becomes the egress interface address and
    /// the source port is drawn from the allocator.
    Masquerade,
}

/// One rule in the `nat` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NatRule {
    /// Match on source prefix (`-s`).
    pub src: Option<Prefix>,
    /// Match on destination prefix (`-d`).
    pub dst: Option<Prefix>,
    /// Match on protocol (`-p`).
    pub proto: Option<IpProto>,
    /// Match on destination port (`--dport`).
    pub dport: Option<u16>,
    /// Match on ingress interface (`-i`, PREROUTING only).
    pub in_if: Option<IfIndex>,
    /// Match on egress interface (`-o`, POSTROUTING only).
    pub out_if: Option<IfIndex>,
    /// The translation to apply.
    pub target: NatTarget,
}

impl NatRule {
    /// A rule with no matches (applies to everything) and the given
    /// target; callers narrow it with struct update syntax.
    pub fn any(target: NatTarget) -> Self {
        NatRule {
            src: None,
            dst: None,
            proto: None,
            dport: None,
            in_if: None,
            out_if: None,
            target,
        }
    }

    /// Whether the rule matches a packet tuple and its interfaces.
    /// Interface matches are skipped when the packet side is `None`
    /// (used by the helper's conservative pre-check).
    fn matches(&self, t: &NatTuple, in_if: Option<IfIndex>, out_if: Option<IfIndex>) -> bool {
        self.src.is_none_or(|p| p.contains(t.src))
            && self.dst.is_none_or(|p| p.contains(t.dst))
            && self.proto.is_none_or(|p| p.to_u8() == t.proto)
            && self.dport.is_none_or(|d| d == t.dport)
            && match (self.in_if, in_if) {
                (Some(want), Some(have)) => want == have,
                _ => true,
            }
            && match (self.out_if, out_if) {
                (Some(want), Some(have)) => want == have,
                _ => true,
            }
    }
}

/// Translation context carried from PREROUTING to POSTROUTING for one
/// packet.
#[derive(Debug, Clone, Copy)]
pub struct NatCtx {
    /// The tuple as the packet arrived.
    pub orig: NatTuple,
    /// The (possibly still partial) translated tuple.
    pub xlat: NatTuple,
    /// Whether an existing binding's reply direction matched.
    pub reply: bool,
    /// Whether this is a first packet (rules consulted, binding not yet
    /// installed).
    pub fresh: bool,
}

/// POSTROUTING's verdict on the packet source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostOutcome {
    /// Leave the source alone.
    None,
    /// Rewrite the source to this address and port.
    Snat {
        /// New source address.
        src: Ipv4Addr,
        /// New source port.
        sport: u16,
    },
    /// A masquerade rule matched but the port range is exhausted: the
    /// packet must be dropped (Linux drops too).
    ExhaustedDrop,
}

/// What `bpf_nat_lookup` reports to a fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NatLookupOutcome {
    /// A binding exists: rewrite the packet to this tuple.
    Hit(NatTuple),
    /// No binding yet, but a rule could claim this flow: the slow path
    /// must see the packet so it can evaluate rules and bind.
    Miss,
    /// NAT provably does not apply to this flow; the fast path may keep
    /// going without translation.
    NoNat,
}

/// The `nat` table: rule chains, the port allocator, and generation
/// counter for controller introspection.
#[derive(Debug, Clone, Default)]
pub struct Nat {
    prerouting: Vec<NatRule>,
    postrouting: Vec<NatRule>,
    /// Masquerade source-port range, inclusive (Linux default
    /// `net.ipv4.ip_local_port_range`-ish). Kept private so an inverted
    /// range can never be configured: use [`Nat::set_port_range`].
    port_range: (u16, u16),
    cursor: u16,
    ports_in_use: BTreeSet<u16>,
    /// Monotonic generation, bumped on configuration changes (consumed
    /// by the LinuxFP controller like the netfilter generation).
    pub generation: u64,
    translations: Option<Counter>,
    reply_hits: Option<Counter>,
    port_exhaustion: Option<Counter>,
}

impl Nat {
    /// Appends a flight-recorder event for one NAT hook traversal.
    /// `ns` must already have been charged to the packet's cost
    /// tracker — this only records the attribution, never the cost.
    pub fn trace_hook(trace: &mut TraceCtx, op: &'static str, rewritten: bool, ns: f64) {
        trace.event(|| TraceEvent::Nat { op, rewritten, ns });
    }

    /// Creates an empty table with the default masquerade port range.
    pub fn new() -> Self {
        Nat {
            port_range: (32768, 61000),
            cursor: 32768,
            ..Nat::default()
        }
    }

    /// Counts forward-direction translations into `counter`.
    pub fn set_translation_counter(&mut self, counter: Counter) {
        self.translations = Some(counter);
    }

    /// Counts reply-direction un-translations into `counter`.
    pub fn set_reply_counter(&mut self, counter: Counter) {
        self.reply_hits = Some(counter);
    }

    /// Counts masquerade port-exhaustion drops into `counter`.
    pub fn set_exhaustion_counter(&mut self, counter: Counter) {
        self.port_exhaustion = Some(counter);
    }

    /// Records a forward-direction translation performed outside rule
    /// evaluation (the fast-path helper counts through the same
    /// counters as the slow path).
    pub fn note_translation(&self) {
        if let Some(c) = &self.translations {
            c.inc();
        }
    }

    /// Records a reply-direction un-translation performed outside rule
    /// evaluation.
    pub fn note_reply_hit(&self) {
        if let Some(c) = &self.reply_hits {
            c.inc();
        }
    }

    /// Appends a rule (`iptables -t nat -A <CHAIN> ...`). Returns
    /// `false` without changes when the target is illegal for the chain
    /// (DNAT only in PREROUTING, SNAT/MASQUERADE only in POSTROUTING).
    pub fn append(&mut self, chain: NatChain, rule: NatRule) -> bool {
        let legal = matches!(
            (chain, rule.target),
            (NatChain::Prerouting, NatTarget::Dnat { .. })
                | (
                    NatChain::Postrouting,
                    NatTarget::Snat { .. } | NatTarget::Masquerade
                )
        );
        if !legal {
            return false;
        }
        match chain {
            NatChain::Prerouting => self.prerouting.push(rule),
            NatChain::Postrouting => self.postrouting.push(rule),
        }
        self.generation += 1;
        true
    }

    /// Flushes both chains (`iptables -t nat -F`). Existing bindings in
    /// conntrack keep translating their flows, as in Linux.
    pub fn flush(&mut self) {
        if !self.prerouting.is_empty() || !self.postrouting.is_empty() {
            self.prerouting.clear();
            self.postrouting.clear();
            self.generation += 1;
        }
    }

    /// Total configured rules across both chains.
    pub fn total_rules(&self) -> usize {
        self.prerouting.len() + self.postrouting.len()
    }

    /// Configured DNAT (PREROUTING) rules.
    pub fn dnat_rules(&self) -> usize {
        self.prerouting.len()
    }

    /// Configured SNAT/MASQUERADE (POSTROUTING) rules.
    pub fn snat_rules(&self) -> usize {
        self.postrouting.len()
    }

    /// The configured masquerade source-port range, inclusive.
    pub fn port_range(&self) -> (u16, u16) {
        self.port_range
    }

    /// Configures the masquerade source-port range (inclusive) like
    /// `net.ipv4.ip_local_port_range`. An inverted range (`hi < lo`) is
    /// rejected without changes, so the allocator's span arithmetic can
    /// never underflow. The cursor is clamped into the new range.
    pub fn set_port_range(&mut self, lo: u16, hi: u16) -> bool {
        if hi < lo {
            return false;
        }
        self.port_range = (lo, hi);
        self.cursor = self.cursor.clamp(lo, hi);
        true
    }

    /// Allocates a masquerade source port: a deterministic cursor scan
    /// over the range, skipping ports in use. `None` when every port in
    /// the range is taken (exhaustion).
    ///
    /// Total: an inverted range (impossible via [`Nat::set_port_range`],
    /// but conceivable through struct surgery or a future deserializer)
    /// reads as exhausted instead of underflowing the span.
    pub fn alloc_port(&mut self) -> Option<u16> {
        let (lo, hi) = self.port_range;
        if hi < lo {
            return None;
        }
        let span = u32::from(hi - lo) + 1;
        let mut candidate = self.cursor.clamp(lo, hi);
        for _ in 0..span {
            let this = candidate;
            candidate = if this == hi { lo } else { this + 1 };
            if self.ports_in_use.insert(this) {
                self.cursor = candidate;
                return Some(this);
            }
        }
        None
    }

    /// Returns a port to the allocator.
    pub fn release_port(&mut self, port: u16) {
        self.ports_in_use.remove(&port);
    }

    /// Ports currently held by live masquerade bindings.
    pub fn ports_in_use(&self) -> usize {
        self.ports_in_use.len()
    }

    /// Whether a flow with this tuple could be claimed by any configured
    /// rule, ignoring interface matches (the helper's conservative
    /// pre-check: interfaces aren't known until routing).
    pub fn could_translate(&self, tuple: &NatTuple) -> bool {
        self.prerouting
            .iter()
            .chain(&self.postrouting)
            .any(|r| r.matches(tuple, None, None))
    }

    /// PREROUTING for one packet: an existing binding wins; otherwise
    /// the first matching DNAT rule starts a fresh translation. Returns
    /// `None` when NAT leaves this packet alone (so far — POSTROUTING
    /// may still claim it).
    ///
    /// The caller applies the *destination* part of `NatCtx::xlat` to
    /// the packet; the source part is applied at POSTROUTING.
    pub fn prerouting(
        &mut self,
        conntrack: &mut Conntrack,
        tuple: NatTuple,
        in_if: IfIndex,
        now: Nanos,
    ) -> Option<NatCtx> {
        if !matches!(tuple.proto, 6 | 17) {
            return None;
        }
        if let Some(hit) = conntrack.nat_lookup(&tuple, now) {
            if hit.reply {
                self.note_reply_hit();
            } else {
                self.note_translation();
            }
            return Some(NatCtx {
                orig: tuple,
                xlat: hit.xlat,
                reply: hit.reply,
                fresh: false,
            });
        }
        let rule = self
            .prerouting
            .iter()
            .find(|r| r.matches(&tuple, Some(in_if), None))?;
        let NatTarget::Dnat { to, to_port } = rule.target else {
            unreachable!("append() admits only DNAT into PREROUTING");
        };
        let mut xlat = tuple;
        xlat.dst = to;
        xlat.dport = to_port.unwrap_or(tuple.dport);
        Some(NatCtx {
            orig: tuple,
            xlat,
            reply: false,
            fresh: true,
        })
    }

    /// POSTROUTING for one packet about to leave through `out_if`:
    /// completes fresh translations (SNAT/MASQUERADE rule evaluation,
    /// port allocation, binding installation) and applies the source
    /// part of established bindings. `cur` is the packet tuple *after*
    /// any PREROUTING rewrite; `egress_ip` is the primary address of the
    /// egress interface (masquerade source).
    pub fn postrouting(
        &mut self,
        conntrack: &mut Conntrack,
        ctx: Option<NatCtx>,
        cur: NatTuple,
        out_if: IfIndex,
        egress_ip: Option<Ipv4Addr>,
        now: Nanos,
    ) -> PostOutcome {
        if !matches!(cur.proto, 6 | 17) {
            return PostOutcome::None;
        }
        match ctx {
            // Established binding: apply its recorded source part.
            Some(c) if !c.fresh => {
                if c.xlat.src == cur.src && c.xlat.sport == cur.sport {
                    PostOutcome::None
                } else {
                    PostOutcome::Snat {
                        src: c.xlat.src,
                        sport: c.xlat.sport,
                    }
                }
            }
            // First packet: evaluate the POSTROUTING chain and bind.
            ctx => {
                // PREROUTING looked up the *arrival* tuple, but the
                // destination may have been rewritten between the chains
                // (ipvs schedules after PREROUTING). An established
                // binding is then keyed on `cur` and only discoverable
                // here — honor it instead of allocating a second port
                // for the same connection.
                if ctx.is_none() {
                    if let Some(hit) = conntrack.nat_lookup(&cur, now) {
                        if hit.reply {
                            self.note_reply_hit();
                        } else {
                            self.note_translation();
                        }
                        return if hit.xlat.src == cur.src && hit.xlat.sport == cur.sport {
                            PostOutcome::None
                        } else {
                            PostOutcome::Snat {
                                src: hit.xlat.src,
                                sport: hit.xlat.sport,
                            }
                        };
                    }
                }
                let orig = ctx.map_or(cur, |c| c.orig);
                let mut xlat = cur;
                let mut owns_port = None;
                match self
                    .postrouting
                    .iter()
                    .find(|r| r.matches(&cur, None, Some(out_if)))
                    .map(|r| r.target)
                {
                    Some(NatTarget::Snat { to }) => {
                        xlat.src = to;
                    }
                    Some(NatTarget::Masquerade) => {
                        let Some(src) = egress_ip else {
                            return PostOutcome::None;
                        };
                        let Some(port) = self.alloc_port() else {
                            if let Some(c) = &self.port_exhaustion {
                                c.inc();
                            }
                            return PostOutcome::ExhaustedDrop;
                        };
                        xlat.src = src;
                        xlat.sport = port;
                        owns_port = Some(port);
                    }
                    Some(NatTarget::Dnat { .. }) | None => {}
                }
                if xlat == orig {
                    // Fully identity: nothing to bind or rewrite.
                    return PostOutcome::None;
                }
                conntrack.nat_install(orig, xlat, owns_port, now);
                self.note_translation();
                if xlat.src == cur.src && xlat.sport == cur.sport {
                    PostOutcome::None
                } else {
                    PostOutcome::Snat {
                        src: xlat.src,
                        sport: xlat.sport,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gw_public() -> Ipv4Addr {
        Ipv4Addr::new(198, 51, 100, 1)
    }

    fn client_tuple(sport: u16) -> NatTuple {
        NatTuple::new(
            Ipv4Addr::new(192, 168, 1, 10),
            sport,
            Ipv4Addr::new(203, 0, 113, 9),
            53,
            17,
        )
    }

    fn masq_table() -> Nat {
        let mut nat = Nat::new();
        assert!(nat.append(
            NatChain::Postrouting,
            NatRule {
                src: Some("192.168.1.0/24".parse().unwrap()),
                ..NatRule::any(NatTarget::Masquerade)
            }
        ));
        nat
    }

    #[test]
    fn chain_target_legality_enforced() {
        let mut nat = Nat::new();
        let g0 = nat.generation;
        assert!(!nat.append(NatChain::Prerouting, NatRule::any(NatTarget::Masquerade)));
        assert!(!nat.append(
            NatChain::Postrouting,
            NatRule::any(NatTarget::Dnat {
                to: gw_public(),
                to_port: None
            })
        ));
        assert_eq!(nat.generation, g0);
        assert!(nat.append(
            NatChain::Prerouting,
            NatRule::any(NatTarget::Dnat {
                to: gw_public(),
                to_port: Some(8080)
            })
        ));
        assert!(nat.generation > g0);
        assert_eq!((nat.dnat_rules(), nat.snat_rules()), (1, 0));
    }

    #[test]
    fn masquerade_binds_and_untranslates_reply() {
        let mut nat = masq_table();
        let mut ct = Conntrack::new();
        let t = client_tuple(40000);
        // First packet: PREROUTING leaves it alone...
        assert!(nat
            .prerouting(&mut ct, t, IfIndex(1), Nanos::ZERO)
            .is_none());
        // ...POSTROUTING masquerades and binds.
        let out = nat.postrouting(&mut ct, None, t, IfIndex(2), Some(gw_public()), Nanos::ZERO);
        let PostOutcome::Snat { src, sport } = out else {
            panic!("expected SNAT, got {out:?}");
        };
        assert_eq!(src, gw_public());
        assert_eq!(sport, 32768);
        assert_eq!(ct.nat_len(), 2);
        // The reply is un-translated at PREROUTING via the binding.
        let reply = NatTuple::new(t.dst, t.dport, gw_public(), sport, 17);
        let ctx = nat
            .prerouting(&mut ct, reply, IfIndex(2), Nanos::from_secs(1))
            .unwrap();
        assert!(ctx.reply && !ctx.fresh);
        assert_eq!((ctx.xlat.dst, ctx.xlat.dport), (t.src, t.sport));
        // Its POSTROUTING pass leaves the source (the outside server) alone.
        assert_eq!(
            nat.postrouting(
                &mut ct,
                Some(ctx),
                ctx.xlat,
                IfIndex(1),
                Some(gw_public()),
                Nanos::from_secs(1)
            ),
            PostOutcome::None
        );
        // Later forward packets reuse the binding, not the allocator.
        let ctx = nat
            .prerouting(&mut ct, t, IfIndex(1), Nanos::from_secs(2))
            .unwrap();
        assert!(!ctx.fresh);
        assert_eq!(
            nat.postrouting(
                &mut ct,
                Some(ctx),
                t,
                IfIndex(2),
                Some(gw_public()),
                Nanos::from_secs(2)
            ),
            PostOutcome::Snat {
                src: gw_public(),
                sport: 32768
            }
        );
        assert_eq!(nat.ports_in_use(), 1);
    }

    #[test]
    fn dnat_rewrites_and_reply_restores() {
        let mut nat = Nat::new();
        let server = Ipv4Addr::new(10, 0, 2, 20);
        assert!(nat.append(
            NatChain::Prerouting,
            NatRule {
                dst: Some(Prefix::new(gw_public(), 32)),
                dport: Some(80),
                ..NatRule::any(NatTarget::Dnat {
                    to: server,
                    to_port: Some(8080)
                })
            }
        ));
        let mut ct = Conntrack::new();
        let t = NatTuple::new(Ipv4Addr::new(203, 0, 113, 9), 5555, gw_public(), 80, 6);
        let ctx = nat.prerouting(&mut ct, t, IfIndex(1), Nanos::ZERO).unwrap();
        assert!(ctx.fresh);
        assert_eq!((ctx.xlat.dst, ctx.xlat.dport), (server, 8080));
        // POSTROUTING installs the binding even though the source is kept.
        assert_eq!(
            nat.postrouting(&mut ct, Some(ctx), ctx.xlat, IfIndex(2), None, Nanos::ZERO),
            PostOutcome::None
        );
        assert_eq!(ct.nat_len(), 2);
        // Server's reply is source-rewritten back to the public address.
        let reply = NatTuple::new(server, 8080, t.src, t.sport, 6);
        let rctx = nat
            .prerouting(&mut ct, reply, IfIndex(2), Nanos::from_secs(1))
            .unwrap();
        assert!(rctx.reply);
        assert_eq!(
            nat.postrouting(
                &mut ct,
                Some(rctx),
                reply,
                IfIndex(1),
                None,
                Nanos::from_secs(1)
            ),
            PostOutcome::Snat {
                src: gw_public(),
                sport: 80
            }
        );
    }

    #[test]
    fn port_range_validation_rejects_inverted_ranges() {
        let mut nat = Nat::new();
        assert!(!nat.set_port_range(61000, 32768));
        assert_eq!(nat.port_range(), (32768, 61000), "rejected without changes");
        assert!(nat.set_port_range(100, 102));
        assert_eq!(nat.port_range(), (100, 102));
        assert_eq!(nat.cursor, 102, "cursor clamped into the new range");
        // Single-port ranges are legal.
        assert!(nat.set_port_range(7, 7));
        assert_eq!(nat.alloc_port(), Some(7));
    }

    #[test]
    fn alloc_port_is_total_on_inverted_range() {
        // Pre-fix, `hi - lo` underflowed here and panicked in debug
        // builds. Struct surgery bypasses set_port_range on purpose.
        let mut nat = Nat::new();
        nat.port_range = (102, 100);
        assert_eq!(nat.alloc_port(), None);
        assert_eq!(nat.ports_in_use(), 0);
    }

    #[test]
    fn port_allocator_is_deterministic_and_exhausts() {
        let mut nat = Nat::new();
        assert!(nat.set_port_range(100, 102));
        nat.cursor = 100;
        assert_eq!(nat.alloc_port(), Some(100));
        assert_eq!(nat.alloc_port(), Some(101));
        assert_eq!(nat.alloc_port(), Some(102));
        assert_eq!(nat.alloc_port(), None);
        nat.release_port(101);
        // The cursor wraps and finds the freed port.
        assert_eq!(nat.alloc_port(), Some(101));
        assert_eq!(nat.alloc_port(), None);
    }

    #[test]
    fn exhaustion_drops_fresh_masquerade_flows() {
        let mut nat = masq_table();
        assert!(nat.set_port_range(100, 100));
        nat.cursor = 100;
        let mut ct = Conntrack::new();
        let first = nat.postrouting(
            &mut ct,
            None,
            client_tuple(1),
            IfIndex(2),
            Some(gw_public()),
            Nanos::ZERO,
        );
        assert!(matches!(first, PostOutcome::Snat { sport: 100, .. }));
        let second = nat.postrouting(
            &mut ct,
            None,
            client_tuple(2),
            IfIndex(2),
            Some(gw_public()),
            Nanos::ZERO,
        );
        assert_eq!(second, PostOutcome::ExhaustedDrop);
        // The established flow still works.
        assert!(nat
            .prerouting(&mut ct, client_tuple(1), IfIndex(1), Nanos::ZERO)
            .is_some());
    }

    #[test]
    fn non_tcp_udp_is_never_translated() {
        let mut nat = masq_table();
        let mut ct = Conntrack::new();
        let mut icmp = client_tuple(0);
        icmp.proto = 1;
        assert!(nat
            .prerouting(&mut ct, icmp, IfIndex(1), Nanos::ZERO)
            .is_none());
        assert_eq!(
            nat.postrouting(
                &mut ct,
                None,
                icmp,
                IfIndex(2),
                Some(gw_public()),
                Nanos::ZERO
            ),
            PostOutcome::None
        );
        assert_eq!(ct.nat_len(), 0);
    }

    #[test]
    fn postrouting_honors_binding_keyed_on_rewritten_tuple() {
        // When something between the chains rewrites the destination
        // (ipvs backend scheduling), PREROUTING sees the arrival tuple
        // and misses, so `ctx` is `None` — but the established binding
        // is keyed on the rewritten tuple. POSTROUTING must reuse it,
        // not allocate a second port for the same connection.
        let mut nat = masq_table();
        let mut ct = Conntrack::new();
        let now = Nanos::from_secs(1);
        // `cur` is the tuple after the ipvs-style rewrite.
        let cur = client_tuple(40000);
        let first = nat.postrouting(&mut ct, None, cur, IfIndex(2), Some(gw_public()), now);
        let PostOutcome::Snat { src, sport } = first else {
            panic!("first packet masquerades: {first:?}");
        };
        assert_eq!(ct.nat_len(), 2);
        assert_eq!(nat.ports_in_use(), 1);
        // The next packet of the connection again reaches POSTROUTING
        // with no PREROUTING context. Same translation, no new port.
        let second = nat.postrouting(&mut ct, None, cur, IfIndex(2), Some(gw_public()), now);
        assert_eq!(
            second,
            PostOutcome::Snat { src, sport },
            "established connection must keep its translation"
        );
        assert_eq!(nat.ports_in_use(), 1, "no second allocation");
        assert_eq!(ct.nat_len(), 2, "no duplicate binding");
    }

    #[test]
    fn could_translate_ignores_interfaces() {
        let mut nat = Nat::new();
        assert!(nat.append(
            NatChain::Postrouting,
            NatRule {
                src: Some("192.168.1.0/24".parse().unwrap()),
                out_if: Some(IfIndex(7)),
                ..NatRule::any(NatTarget::Masquerade)
            }
        ));
        assert!(nat.could_translate(&client_tuple(1)));
        let mut outside = client_tuple(1);
        outside.src = Ipv4Addr::new(10, 9, 9, 9);
        assert!(!nat.could_translate(&outside));
        nat.flush();
        assert_eq!(nat.total_rules(), 0);
        assert!(!nat.could_translate(&client_tuple(1)));
    }
}
