//! Linux-style software bridge: FDB with learning and aging, STP port
//! states, VLAN filtering, and flooding.
//!
//! The LinuxFP split (paper Table I) gives the fast path parsing, FDB
//! lookup and forwarding, while the slow path keeps FDB management
//! (learning and aging), miss handling (flooding), and STP protocol
//! processing. Both paths operate on this one [`Bridge`] structure: the
//! fast path reads it via the paper's new `bpf_fdb_lookup` helper.

use crate::device::IfIndex;
use linuxfp_packet::MacAddr;
use linuxfp_sim::Nanos;
use linuxfp_telemetry::trace::DropReason;
use linuxfp_telemetry::Counter;
use std::collections::{BTreeMap, HashMap};

/// STP port states (802.1D). Only `Forwarding` ports forward data frames;
/// `Learning` ports learn addresses but do not forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StpState {
    /// Port administratively or STP disabled for data traffic.
    Blocking,
    /// Transitional: processing BPDUs, not learning or forwarding.
    Listening,
    /// Learning MAC addresses, not yet forwarding.
    Learning,
    /// Fully active.
    Forwarding,
}

/// Per-port bridge configuration and state.
#[derive(Debug, Clone)]
pub struct BridgePort {
    /// The member interface.
    pub ifindex: IfIndex,
    /// STP state (always `Forwarding` when STP is disabled).
    pub stp_state: StpState,
    /// Port VLAN id for untagged ingress traffic.
    pub pvid: u16,
    /// VLANs this port is a member of (tagged or untagged).
    pub vlans: Vec<u16>,
    /// STP port path cost (used in root-port election).
    pub path_cost: u32,
}

impl BridgePort {
    fn new(ifindex: IfIndex) -> Self {
        BridgePort {
            ifindex,
            stp_state: StpState::Forwarding,
            pvid: 1,
            vlans: vec![1],
            path_cost: 100,
        }
    }

    /// Whether the port participates in `vlan`.
    pub fn member_of(&self, vlan: u16) -> bool {
        self.vlans.contains(&vlan)
    }
}

/// One learned or static FDB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdbEntry {
    /// Egress port for the address.
    pub port: IfIndex,
    /// Last time the address was seen (refreshed on traffic).
    pub updated: Nanos,
    /// Static entries never age out.
    pub is_static: bool,
}

/// Outcome of a bridge forwarding decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BridgeDecision {
    /// Forward out exactly one port (FDB hit).
    Forward(IfIndex),
    /// Flood to these ports (FDB miss, broadcast, or multicast).
    Flood(Vec<IfIndex>),
    /// Frame is addressed to the bridge itself; send up the IP stack.
    Local,
    /// Drop (ingress port not forwarding, VLAN violation, ...).
    Drop(DropReason),
}

/// A software bridge instance.
///
/// # Example
///
/// ```
/// use linuxfp_netstack::bridge::{Bridge, BridgeDecision};
/// use linuxfp_netstack::device::IfIndex;
/// use linuxfp_packet::MacAddr;
/// use linuxfp_sim::Nanos;
///
/// let mut br = Bridge::new(IfIndex(10), MacAddr::from_index(10));
/// br.add_port(IfIndex(1));
/// br.add_port(IfIndex(2));
/// let src = MacAddr::from_index(100);
/// // Unknown destination floods; the source is learned.
/// let d = br.decide(IfIndex(1), src, MacAddr::from_index(200), None, Nanos::ZERO);
/// assert_eq!(d, BridgeDecision::Flood(vec![IfIndex(2)]));
/// // Traffic back toward the learned source is unicast-forwarded.
/// let d = br.decide(IfIndex(2), MacAddr::from_index(200), src, None, Nanos::ZERO);
/// assert_eq!(d, BridgeDecision::Forward(IfIndex(1)));
/// ```
#[derive(Debug, Clone)]
pub struct Bridge {
    /// The bridge master device index.
    pub ifindex: IfIndex,
    /// MAC of the bridge itself (frames to it go up the stack).
    pub mac: MacAddr,
    /// Whether the spanning tree protocol is enabled.
    pub stp_enabled: bool,
    /// Whether VLAN filtering is enabled.
    pub vlan_filtering: bool,
    /// FDB aging time (Linux default 300 s).
    pub ageing_time: Nanos,
    ports: BTreeMap<IfIndex, BridgePort>,
    fdb: HashMap<(MacAddr, u16), FdbEntry>,
    decisions: Option<Counter>,
    generation: u64,
}

impl Bridge {
    /// Creates a bridge with no ports, STP and VLAN filtering disabled.
    pub fn new(ifindex: IfIndex, mac: MacAddr) -> Self {
        Bridge {
            ifindex,
            mac,
            stp_enabled: false,
            vlan_filtering: false,
            ageing_time: Nanos::from_secs(300),
            ports: BTreeMap::new(),
            fdb: HashMap::new(),
            decisions: None,
            generation: 0,
        }
    }

    /// Monotonic generation, bumped on every forwarding-relevant change
    /// (FDB entry add/move/expiry, port membership or state changes).
    /// Pure timestamp refreshes of an existing entry do *not* bump it —
    /// they change no forwarding decision. Consumed by the microflow
    /// verdict cache's coherence check.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Forces a generation bump. Used by callers that hand out mutable
    /// access to the bridge (e.g. `Kernel::bridge_mut`) and must
    /// conservatively assume a forwarding-relevant change follows.
    pub fn touch_generation(&mut self) {
        self.generation = self.generation.wrapping_add(1);
    }

    /// Counts every forwarding decision this bridge makes into `counter`.
    pub fn set_decision_counter(&mut self, counter: Counter) {
        self.decisions = Some(counter);
    }

    /// Adds a member port (idempotent).
    pub fn add_port(&mut self, ifindex: IfIndex) {
        self.generation = self.generation.wrapping_add(1);
        self.ports
            .entry(ifindex)
            .or_insert_with(|| BridgePort::new(ifindex));
    }

    /// Removes a member port and its learned addresses.
    pub fn remove_port(&mut self, ifindex: IfIndex) -> bool {
        let existed = self.ports.remove(&ifindex).is_some();
        if existed {
            self.generation = self.generation.wrapping_add(1);
            self.fdb.retain(|_, e| e.port != ifindex);
        }
        existed
    }

    /// The member ports in index order.
    pub fn ports(&self) -> impl Iterator<Item = &BridgePort> + '_ {
        self.ports.values()
    }

    /// Mutable access to one port's configuration. Conservatively counts
    /// as a forwarding-relevant change (callers use this to flip STP
    /// state or VLAN membership), so the generation is bumped.
    pub fn port_mut(&mut self, ifindex: IfIndex) -> Option<&mut BridgePort> {
        self.generation = self.generation.wrapping_add(1);
        self.ports.get_mut(&ifindex)
    }

    /// One port's configuration.
    pub fn port(&self, ifindex: IfIndex) -> Option<&BridgePort> {
        self.ports.get(&ifindex)
    }

    /// Number of member ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// The effective VLAN for a frame entering `port` with optional tag.
    /// Returns `None` when VLAN filtering rejects the frame.
    pub fn ingress_vlan(&self, port: &BridgePort, tag: Option<u16>) -> Option<u16> {
        if !self.vlan_filtering {
            return Some(0); // VLAN-unaware: single flat domain.
        }
        match tag {
            Some(vid) => port.member_of(vid).then_some(vid),
            None => Some(port.pvid),
        }
    }

    /// Looks up the FDB honoring aging; used by the slow path and exposed
    /// to the fast path as `bpf_fdb_lookup`. A hit whose egress port is
    /// not in `Forwarding` state returns `None` (the caller drops).
    pub fn fdb_lookup(&mut self, mac: MacAddr, vlan: u16, now: Nanos) -> Option<IfIndex> {
        let entry = self.fdb.get(&(mac, vlan))?;
        if !entry.is_static && now.saturating_sub(entry.updated) > self.ageing_time {
            self.fdb.remove(&(mac, vlan));
            self.generation = self.generation.wrapping_add(1);
            return None;
        }
        let port = self.ports.get(&entry.port)?;
        (port.stp_state == StpState::Forwarding).then_some(entry.port)
    }

    /// Learns (or refreshes) the source address of a frame — slow-path
    /// FDB management.
    pub fn fdb_learn(&mut self, mac: MacAddr, vlan: u16, port: IfIndex, now: Nanos) {
        if mac.is_multicast() {
            return;
        }
        // A brand-new address or a station move changes forwarding
        // decisions (generation bump); refreshing the timestamp of an
        // entry already on this port does not.
        if self.fdb.get(&(mac, vlan)).map(|e| e.port) != Some(port) {
            self.generation = self.generation.wrapping_add(1);
        }
        self.fdb.insert(
            (mac, vlan),
            FdbEntry {
                port,
                updated: now,
                is_static: false,
            },
        );
    }

    /// Installs a static FDB entry (`bridge fdb add ... static`).
    pub fn fdb_add_static(&mut self, mac: MacAddr, vlan: u16, port: IfIndex) {
        self.generation = self.generation.wrapping_add(1);
        self.fdb.insert(
            (mac, vlan),
            FdbEntry {
                port,
                updated: Nanos::ZERO,
                is_static: true,
            },
        );
    }

    /// Current FDB size (including possibly-expired entries not yet
    /// lazily collected).
    pub fn fdb_len(&self) -> usize {
        self.fdb.len()
    }

    /// Removes aged-out dynamic entries eagerly (the periodic GC work the
    /// slow path performs).
    pub fn fdb_gc(&mut self, now: Nanos) -> usize {
        let ageing = self.ageing_time;
        let before = self.fdb.len();
        self.fdb
            .retain(|_, e| e.is_static || now.saturating_sub(e.updated) <= ageing);
        let removed = before - self.fdb.len();
        if removed > 0 {
            self.generation = self.generation.wrapping_add(1);
        }
        removed
    }

    /// Full forwarding decision for a frame entering the bridge on
    /// `ingress`: VLAN admission, source learning, destination lookup,
    /// flood on miss. This is the *slow-path* decision procedure; the
    /// synthesized fast path performs only the lookup/forward part and
    /// punts everything else here.
    pub fn decide(
        &mut self,
        ingress: IfIndex,
        src: MacAddr,
        dst: MacAddr,
        vlan_tag: Option<u16>,
        now: Nanos,
    ) -> BridgeDecision {
        if let Some(c) = &self.decisions {
            c.inc();
        }
        let Some(port) = self.ports.get(&ingress) else {
            return BridgeDecision::Drop(DropReason::NotABridgePort);
        };
        if matches!(port.stp_state, StpState::Blocking | StpState::Listening) {
            return BridgeDecision::Drop(DropReason::IngressPortBlocked);
        }
        let learning_only = port.stp_state == StpState::Learning;
        let Some(vlan) = self.ingress_vlan(port, vlan_tag) else {
            return BridgeDecision::Drop(DropReason::VlanFiltered);
        };
        self.fdb_learn(src, vlan, ingress, now);
        if learning_only {
            return BridgeDecision::Drop(DropReason::IngressPortLearningOnly);
        }
        if dst == self.mac {
            return BridgeDecision::Local;
        }
        if dst.is_multicast() {
            return BridgeDecision::Flood(self.flood_ports(ingress, vlan));
        }
        match self.fdb_lookup(dst, vlan, now) {
            Some(port) if port == ingress => BridgeDecision::Drop(DropReason::Hairpin),
            Some(port) => BridgeDecision::Forward(port),
            None => BridgeDecision::Flood(self.flood_ports(ingress, vlan)),
        }
    }

    /// The ports a flood from `ingress` in `vlan` egresses on.
    pub fn flood_ports(&self, ingress: IfIndex, vlan: u16) -> Vec<IfIndex> {
        self.ports
            .values()
            .filter(|p| {
                p.ifindex != ingress
                    && p.stp_state == StpState::Forwarding
                    && (!self.vlan_filtering || p.member_of(vlan))
            })
            .map(|p| p.ifindex)
            .collect()
    }

    /// FDB snapshot for dumps.
    pub fn fdb_entries(&self) -> Vec<(MacAddr, u16, FdbEntry)> {
        self.fdb.iter().map(|((m, v), e)| (*m, *v, *e)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bridge() -> Bridge {
        let mut br = Bridge::new(IfIndex(10), MacAddr::from_index(10));
        br.add_port(IfIndex(1));
        br.add_port(IfIndex(2));
        br.add_port(IfIndex(3));
        br
    }

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_index(i)
    }

    #[test]
    fn learn_then_unicast_forward() {
        let mut br = bridge();
        // A talks: flood (B unknown), learn A on port 1.
        let d = br.decide(IfIndex(1), mac(100), mac(200), None, Nanos::ZERO);
        assert_eq!(d, BridgeDecision::Flood(vec![IfIndex(2), IfIndex(3)]));
        // B answers from port 2: unicast back to port 1.
        let d = br.decide(IfIndex(2), mac(200), mac(100), None, Nanos::ZERO);
        assert_eq!(d, BridgeDecision::Forward(IfIndex(1)));
        // Now A->B is also unicast.
        let d = br.decide(IfIndex(1), mac(100), mac(200), None, Nanos::ZERO);
        assert_eq!(d, BridgeDecision::Forward(IfIndex(2)));
    }

    #[test]
    fn broadcast_floods() {
        let mut br = bridge();
        let d = br.decide(IfIndex(2), mac(200), MacAddr::BROADCAST, None, Nanos::ZERO);
        assert_eq!(d, BridgeDecision::Flood(vec![IfIndex(1), IfIndex(3)]));
    }

    #[test]
    fn frame_to_bridge_mac_goes_local() {
        let mut br = bridge();
        let d = br.decide(IfIndex(1), mac(100), mac(10), None, Nanos::ZERO);
        assert_eq!(d, BridgeDecision::Local);
    }

    #[test]
    fn hairpin_dropped() {
        let mut br = bridge();
        br.fdb_learn(mac(200), 0, IfIndex(1), Nanos::ZERO);
        let d = br.decide(IfIndex(1), mac(100), mac(200), None, Nanos::ZERO);
        assert_eq!(d, BridgeDecision::Drop(DropReason::Hairpin));
    }

    #[test]
    fn fdb_ages_out() {
        let mut br = bridge();
        br.fdb_learn(mac(200), 0, IfIndex(2), Nanos::ZERO);
        assert_eq!(
            br.fdb_lookup(mac(200), 0, Nanos::from_secs(10)),
            Some(IfIndex(2))
        );
        // Past the 300 s ageing time the entry is gone -> flood again.
        assert_eq!(br.fdb_lookup(mac(200), 0, Nanos::from_secs(301)), None);
        let d = br.decide(IfIndex(1), mac(100), mac(200), None, Nanos::from_secs(302));
        assert!(matches!(d, BridgeDecision::Flood(_)));
    }

    #[test]
    fn static_entries_never_age() {
        let mut br = bridge();
        br.fdb_add_static(mac(200), 0, IfIndex(2));
        assert_eq!(
            br.fdb_lookup(mac(200), 0, Nanos::from_secs(10_000)),
            Some(IfIndex(2))
        );
        assert_eq!(br.fdb_gc(Nanos::from_secs(10_000)), 0);
    }

    #[test]
    fn gc_collects_expired() {
        let mut br = bridge();
        br.fdb_learn(mac(1), 0, IfIndex(1), Nanos::ZERO);
        br.fdb_learn(mac(2), 0, IfIndex(2), Nanos::from_secs(200));
        assert_eq!(br.fdb_gc(Nanos::from_secs(301)), 1);
        assert_eq!(br.fdb_len(), 1);
    }

    #[test]
    fn stp_blocking_port_drops() {
        let mut br = bridge();
        br.port_mut(IfIndex(1)).unwrap().stp_state = StpState::Blocking;
        let d = br.decide(IfIndex(1), mac(100), mac(200), None, Nanos::ZERO);
        assert!(matches!(d, BridgeDecision::Drop(_)));
        // Blocked ports are excluded from floods too.
        let floods = br.flood_ports(IfIndex(2), 0);
        assert_eq!(floods, vec![IfIndex(3)]);
    }

    #[test]
    fn stp_learning_port_learns_but_does_not_forward() {
        let mut br = bridge();
        br.port_mut(IfIndex(1)).unwrap().stp_state = StpState::Learning;
        let d = br.decide(IfIndex(1), mac(100), mac(200), None, Nanos::ZERO);
        assert!(matches!(d, BridgeDecision::Drop(_)));
        // ...but the address was learned.
        assert!(br.fdb.contains_key(&(mac(100), 0)));
    }

    #[test]
    fn forwarding_to_non_forwarding_port_fails_lookup() {
        let mut br = bridge();
        br.fdb_learn(mac(200), 0, IfIndex(2), Nanos::ZERO);
        br.port_mut(IfIndex(2)).unwrap().stp_state = StpState::Blocking;
        assert_eq!(br.fdb_lookup(mac(200), 0, Nanos::ZERO), None);
    }

    #[test]
    fn vlan_filtering_separates_domains() {
        let mut br = bridge();
        br.vlan_filtering = true;
        br.port_mut(IfIndex(1)).unwrap().vlans = vec![10];
        br.port_mut(IfIndex(1)).unwrap().pvid = 10;
        br.port_mut(IfIndex(2)).unwrap().vlans = vec![10, 20];
        br.port_mut(IfIndex(3)).unwrap().vlans = vec![20];
        // Untagged on port 1 -> vlan 10 -> floods only to port 2.
        let d = br.decide(IfIndex(1), mac(100), mac(200), None, Nanos::ZERO);
        assert_eq!(d, BridgeDecision::Flood(vec![IfIndex(2)]));
        // Tagged vlan 20 on port 1 (not a member) -> dropped.
        let d = br.decide(IfIndex(1), mac(100), mac(200), Some(20), Nanos::ZERO);
        assert_eq!(d, BridgeDecision::Drop(DropReason::VlanFiltered));
        // Learning is per-vlan: mac learned in vlan 10 is unknown in 20.
        let d = br.decide(IfIndex(3), mac(300), mac(100), Some(20), Nanos::ZERO);
        assert!(matches!(d, BridgeDecision::Flood(_)));
    }

    #[test]
    fn multicast_source_not_learned() {
        let mut br = bridge();
        br.fdb_learn(MacAddr::BROADCAST, 0, IfIndex(1), Nanos::ZERO);
        assert_eq!(br.fdb_len(), 0);
    }

    #[test]
    fn remove_port_flushes_fdb() {
        let mut br = bridge();
        br.fdb_learn(mac(100), 0, IfIndex(1), Nanos::ZERO);
        assert!(br.remove_port(IfIndex(1)));
        assert_eq!(br.fdb_len(), 0);
        assert!(!br.remove_port(IfIndex(1)));
        assert_eq!(br.port_count(), 2);
    }

    #[test]
    fn unknown_ingress_port_drops() {
        let mut br = bridge();
        let d = br.decide(IfIndex(99), mac(1), mac(2), None, Nanos::ZERO);
        assert_eq!(d, BridgeDecision::Drop(DropReason::NotABridgePort));
    }
}
