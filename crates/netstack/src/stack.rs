//! The simulated kernel: devices, configuration surface, netlink
//! publication, and the slow-path packet pipeline with hook points.
//!
//! [`Kernel::receive`] models what happens between a frame arriving at a
//! NIC and leaving the host: driver receive → **XDP hook** → `sk_buff`
//! allocation → **TC ingress hook** → bridge / ARP / IPv4 processing with
//! netfilter, routing, neighbor resolution — every stage charging its
//! calibrated cost. The XDP and TC slots are where `linuxfp-ebpf`
//! programs (and therefore LinuxFP fast paths) attach; a verdict of
//! `Pass` falls through to the very same slow path, which is what makes
//! the acceleration transparent.

use crate::bridge::{Bridge, BridgeDecision};
use crate::conntrack::{Conntrack, NatTuple};
use crate::device::{DeviceKind, IfIndex, NetDevice};
use crate::error::NetError;
use crate::fib::{Fib, Route, RouteScope};
use crate::l7::{L7ConnKey, L7LookupOutcome, L7Policy, L7};
use crate::nat::{Nat, NatChain, NatCtx, NatLookupOutcome, NatRule, PostOutcome};
use crate::neigh::NeighTable;
use crate::netfilter::{ChainHook, IptRule, Netfilter, NfVerdict, PacketMeta};
use crate::netlink::{LinkInfo, NetlinkBus, NetlinkMessage, NlGroup, RouteInfo, SubscriberId};
use linuxfp_packet::arp::{ArpOp, ArpPacket};
use linuxfp_packet::builder;
use linuxfp_packet::icmp::{IcmpHeader, IcmpType};
use linuxfp_packet::ipv4::{IpProto, Ipv4Header, Prefix};
use linuxfp_packet::tcp::TcpHeader;
use linuxfp_packet::udp::UdpHeader;
use linuxfp_packet::{Batch, EtherType, EthernetFrame, MacAddr, Packet, PacketBuf};
use linuxfp_sim::{CostModel, CostTracker, Nanos};
use linuxfp_telemetry::trace::{
    Disposition, FlightRecorder, TraceCtx, TraceEvent, TraceRing, TraceSpan,
};
use linuxfp_telemetry::{Counter, Histogram, Registry, Scale};

pub use linuxfp_telemetry::trace::{DropReason, PuntReason};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::Ipv4Addr;
use std::str::FromStr;
use std::sync::Arc;

/// The destination MAC of 802.1D BPDUs.
pub const BPDU_MAC: MacAddr = MacAddr::new([0x01, 0x80, 0xC2, 0x00, 0x00, 0x00]);

/// An interface address that preserves the exact host part (unlike
/// [`Prefix`], which masks it).
///
/// # Example
///
/// ```
/// use linuxfp_netstack::stack::IfAddr;
///
/// let a: IfAddr = "10.0.1.1/24".parse().unwrap();
/// assert_eq!(a.addr.octets()[3], 1);
/// assert_eq!(a.prefix_len, 24);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IfAddr {
    /// The exact address.
    pub addr: Ipv4Addr,
    /// The prefix length of the connected subnet.
    pub prefix_len: u8,
}

impl IfAddr {
    /// Creates an interface address.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len > 32`.
    pub fn new(addr: Ipv4Addr, prefix_len: u8) -> Self {
        assert!(prefix_len <= 32, "prefix length {prefix_len} > 32");
        IfAddr { addr, prefix_len }
    }

    /// The connected subnet this address implies.
    pub fn subnet(&self) -> Prefix {
        Prefix::new(self.addr, self.prefix_len)
    }
}

impl FromStr for IfAddr {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| NetError::Invalid(format!("address needs /len: {s}")))?;
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|_| NetError::Invalid(format!("bad address: {s}")))?;
        let len: u8 = len
            .parse()
            .map_err(|_| NetError::Invalid(format!("bad prefix length: {s}")))?;
        if len > 32 {
            return Err(NetError::Invalid(format!("prefix length > 32: {s}")));
        }
        Ok(IfAddr::new(addr, len))
    }
}

/// Verdict returned by an attached hook program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookVerdict {
    /// Continue into the rest of the stack (`XDP_PASS` / `TC_ACT_OK`).
    Pass,
    /// Discard the packet (`XDP_DROP` / `TC_ACT_SHOT`).
    Drop,
    /// Forward out another interface (`XDP_REDIRECT` / `bpf_redirect`).
    Redirect(IfIndex),
    /// The frame was consumed into a user-space AF_XDP socket
    /// (`XDP_REDIRECT` into an XSKMAP).
    DeliverUser,
}

/// The signature of an attached hook program. The program receives the
/// kernel itself so that helper calls can read and update kernel state —
/// the unified-state design of the paper — plus the packet's trace
/// context so sampled packets carry hook-level events (flow-cache
/// outcome, VM verdict, punt reason).
pub type HookFn = Arc<
    dyn Fn(&mut Kernel, &mut Packet, &mut CostTracker, &mut TraceCtx) -> HookVerdict + Send + Sync,
>;

/// Externally visible result of processing a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// The frame left the host through a physical NIC.
    Transmit {
        /// Egress device.
        dev: IfIndex,
        /// The frame as transmitted. Pool-backed when the packet came
        /// from a pooled injection: dropping the outcome recycles it.
        frame: PacketBuf,
    },
    /// The frame was delivered to the local socket layer.
    Deliver {
        /// Device the packet was addressed through.
        dev: IfIndex,
        /// The delivered frame.
        frame: PacketBuf,
    },
    /// The frame was dropped.
    Drop {
        /// Why, from the unified taxonomy.
        reason: DropReason,
    },
}

/// Result of [`Kernel::receive`]: observable effects plus the virtual time
/// charged, broken down by stage.
#[derive(Debug, Clone, Default)]
pub struct RxOutcome {
    /// What happened to the packet (and any packets it triggered, e.g.
    /// ARP requests or flooded copies).
    pub effects: Vec<Effect>,
    /// Cost of all processing performed.
    pub cost: CostTracker,
    /// Flight-recorder context: enabled only when this packet was
    /// sampled, in which case the finished span lands in the kernel's
    /// trace ring. Disabled (the default) it allocates nothing and
    /// charges nothing.
    pub trace: TraceCtx,
}

impl RxOutcome {
    /// Charges virtual time at `stage` and mirrors it into the trace
    /// context (a no-op unless this packet is sampled). All datapath
    /// stage charges route through here so span stage events stay in
    /// sync with the cost tracker.
    #[inline]
    pub(crate) fn charge(&mut self, stage: &'static str, ns: f64) {
        self.cost.charge(stage, ns);
        self.trace.stage(stage, ns);
    }

    /// Frames transmitted out physical NICs, as `(dev, frame)` pairs.
    pub fn transmissions(&self) -> Vec<(IfIndex, &[u8])> {
        self.effects
            .iter()
            .filter_map(|e| match e {
                Effect::Transmit { dev, frame } => Some((*dev, frame.as_slice())),
                _ => None,
            })
            .collect()
    }

    /// Frames delivered locally.
    pub fn deliveries(&self) -> Vec<(IfIndex, &[u8])> {
        self.effects
            .iter()
            .filter_map(|e| match e {
                Effect::Deliver { dev, frame } => Some((*dev, frame.as_slice())),
                _ => None,
            })
            .collect()
    }

    /// Drop reasons recorded, as their stable string labels.
    pub fn drops(&self) -> Vec<&'static str> {
        self.effects
            .iter()
            .filter_map(|e| match e {
                Effect::Drop { reason } => Some(reason.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Drop reasons recorded, as taxonomy values.
    pub fn drop_reasons(&self) -> Vec<DropReason> {
        self.effects
            .iter()
            .filter_map(|e| match e {
                Effect::Drop { reason } => Some(*reason),
                _ => None,
            })
            .collect()
    }
}

/// Per-device traffic counters (the `ip -s link` surface).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DevCounters {
    /// Packets received.
    pub rx_packets: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Packets transmitted.
    pub tx_packets: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
}

/// What one housekeeping pass collected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HousekeepingReport {
    /// Aged-out bridge FDB entries removed.
    pub fdb_expired: usize,
    /// Expired conntrack entries removed.
    pub conntrack_expired: usize,
    /// Expired neighbor entries removed.
    pub neigh_expired: usize,
    /// Expired NAT binding entries removed (per direction).
    pub nat_expired: usize,
}

/// Outcome of the `bpf_fdb_lookup` helper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdbLookupOutcome {
    /// Destination known: forward out this port.
    Hit(IfIndex),
    /// The source is not (or no longer) in the FDB, or the ingress port
    /// is not forwarding: the packet must take the slow path, which
    /// learns / applies STP (paper Table I: FDB management is slow-path
    /// work).
    SrcUnknown,
    /// Source known (and refreshed); the destination missed — flooding
    /// is slow-path work, but L3-destined frames may continue.
    DstMiss,
}

/// Result of the combined FIB + neighbor lookup exposed to fast paths as
/// `bpf_fib_lookup`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FibFastResult {
    /// Egress interface.
    pub ifindex: IfIndex,
    /// Source MAC to write (the egress interface's address).
    pub src_mac: MacAddr,
    /// Destination MAC to write (the next hop's address).
    pub dst_mac: MacAddr,
}

/// The shared kernel structures a shard can touch. Everything here stays
/// in the `Kernel` (single source of truth — the paper's unified-state
/// design); what scales per shard is the *caches* in front of them.
/// When a shard reads one of these after another writer advanced its
/// generation, the access models pulling the written cache lines across
/// cores and is charged [`linuxfp_sim::CostModel::coherence_miss_ns`]
/// under the `coherence` stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherentStruct {
    /// The routing table.
    Fib,
    /// The neighbor (ARP) table.
    Neigh,
    /// The conntrack table (including NAT binding state it carries).
    Conntrack,
    /// The netfilter rule tables and ipsets.
    Netfilter,
    /// The iptables `nat` table and port allocator.
    Nat,
    /// The L7 policy table and connection-verdict pins.
    L7,
    /// The ipvs service/backend tables.
    Ipvs,
    /// Bridge forwarding databases (all bridges, collectively).
    Fdb,
}

impl CoherentStruct {
    /// Every shared structure, for whole-state scans.
    pub const ALL: [CoherentStruct; 8] = [
        CoherentStruct::Fib,
        CoherentStruct::Neigh,
        CoherentStruct::Conntrack,
        CoherentStruct::Netfilter,
        CoherentStruct::Nat,
        CoherentStruct::L7,
        CoherentStruct::Ipvs,
        CoherentStruct::Fdb,
    ];

    /// Stable label used by `linuxfp_coherence_events_total{structure}`.
    pub const fn as_str(self) -> &'static str {
        match self {
            CoherentStruct::Fib => "fib",
            CoherentStruct::Neigh => "neigh",
            CoherentStruct::Conntrack => "conntrack",
            CoherentStruct::Netfilter => "netfilter",
            CoherentStruct::Nat => "nat",
            CoherentStruct::L7 => "l7",
            CoherentStruct::Ipvs => "ipvs",
            CoherentStruct::Fdb => "fdb",
        }
    }

    const fn index(self) -> usize {
        self as usize
    }
}

/// Per-shard view of the shared structures: the generation each one had
/// when this shard last touched it.
type ShardView = [u64; CoherentStruct::ALL.len()];

/// The simulated kernel.
/// Cached counter handles for the kernel's slow-path telemetry: resolved
/// once in [`Kernel::set_telemetry`] so the per-packet cost is a relaxed
/// atomic increment. Counters are real host atomics and charge no
/// virtual time — observability must not perturb the calibrated costs.
#[derive(Debug, Clone)]
struct StackTelemetry {
    registry: Registry,
    packets_injected: Counter,
    slow_bridge: Counter,
    slow_ip: Counter,
    slow_arp: Counter,
    slow_local: Counter,
    slow_netfilter: Counter,
    slow_ipvs: Counter,
    slow_nat: Counter,
    slow_l7: Counter,
    batch_size: Histogram,
}

impl StackTelemetry {
    fn new(registry: Registry) -> Self {
        registry.describe(
            "linuxfp_packets_injected_total",
            "Frames injected into the kernel from outside (one per Kernel::receive)",
        );
        registry.describe(
            "linuxfp_slowpath_packets_total",
            "Slow-path packet visits per kernel subsystem",
        );
        registry.describe("linuxfp_drops_total", "Packets dropped, by reason");
        registry.describe(
            "linuxfp_subsystem_ops_total",
            "Subsystem operations (fast-path helpers and slow path alike)",
        );
        registry.describe(
            "linuxfp_nat_translations_total",
            "Forward-direction packets translated by a NAT binding (both paths)",
        );
        registry.describe(
            "linuxfp_nat_reply_hits_total",
            "Reply-direction packets un-translated by a NAT binding (both paths)",
        );
        registry.describe(
            "linuxfp_nat_port_exhaustion_total",
            "Fresh masquerade flows dropped because the port range was exhausted",
        );
        registry.describe(
            "linuxfp_conntrack_evictions_total",
            "Conntrack entries evicted because the table was at capacity",
        );
        registry.describe(
            "linuxfp_nat_evictions_total",
            "NAT binding pairs evicted because the binding table was at capacity",
        );
        registry.describe(
            "linuxfp_l7_parsed_requests_total",
            "HTTP/1.x request lines parsed to a policy verdict (both paths)",
        );
        registry.describe(
            "linuxfp_l7_unparseable_total",
            "Segments that failed the bounded request-line parse (both paths)",
        );
        registry.describe(
            "linuxfp_l7_denies_total",
            "L7 policy deny verdicts returned (both paths)",
        );
        registry.describe(
            "linuxfp_batch_size",
            "Frames per injected burst (1 for single-packet Kernel::receive)",
        );
        registry.describe(
            "linuxfp_shard_packets_total",
            "Frames steered to each RSS shard (incremented only when rss_shards > 1)",
        );
        registry.describe(
            "linuxfp_coherence_events_total",
            "Coherence misses: a shard touched shared state another writer changed",
        );
        registry.describe(
            "linuxfp_shard_drops_total",
            "Drops by reason and owning RSS shard (only emitted when rss_shards > 1)",
        );
        let slow = |subsystem: &str| {
            registry.counter(
                "linuxfp_slowpath_packets_total",
                &[("subsystem", subsystem)],
            )
        };
        StackTelemetry {
            packets_injected: registry.counter("linuxfp_packets_injected_total", &[]),
            slow_bridge: slow("bridge"),
            slow_ip: slow("ip"),
            slow_arp: slow("arp"),
            slow_local: slow("local"),
            slow_netfilter: slow("netfilter"),
            slow_ipvs: slow("ipvs"),
            slow_nat: slow("nat"),
            slow_l7: slow("l7"),
            batch_size: registry.histogram("linuxfp_batch_size", &[], Scale::Identity),
            registry,
        }
    }
}

pub struct Kernel {
    cost: Arc<CostModel>,
    now: Nanos,
    devices: BTreeMap<IfIndex, NetDevice>,
    names: HashMap<String, IfIndex>,
    next_ifindex: u32,
    /// The routing table (public: it *is* the shared state).
    pub fib: Fib,
    /// The neighbor table.
    pub neigh: NeighTable,
    bridges: BTreeMap<IfIndex, Bridge>,
    /// The netfilter subsystem.
    pub netfilter: Netfilter,
    /// The conntrack table.
    pub conntrack: Conntrack,
    /// The ipvs load-balancing subsystem.
    pub ipvs: crate::ipvs::Ipvs,
    /// The iptables `nat` table.
    pub nat: Nat,
    /// The L7 request-policy table and connection-verdict pins.
    pub l7: L7,
    /// Last coarse-interval conntrack/NAT GC run from the packet path.
    last_ct_gc: Nanos,
    /// Whether forwarded traffic is connection-tracked (Kubernetes-style
    /// hosts enable this; plain routers usually do not).
    pub conntrack_forward: bool,
    sysctls: BTreeMap<String, i64>,
    netlink: NetlinkBus,
    xdp_hooks: HashMap<IfIndex, HookFn>,
    tc_hooks: HashMap<IfIndex, HookFn>,
    pending_arp: HashMap<Ipv4Addr, Vec<(IfIndex, PacketBuf)>>,
    vxlan_fdb: HashMap<IfIndex, HashMap<MacAddr, Ipv4Addr>>,
    vxlan_defaults: HashMap<IfIndex, Vec<Ipv4Addr>>,
    /// Per-reason drop counters.
    pub drop_counts: HashMap<&'static str, u64>,
    counters: HashMap<IfIndex, DevCounters>,
    /// BPDUs consumed by STP processing.
    pub bpdus_processed: u64,
    telemetry: Option<StackTelemetry>,
    /// The per-packet flight recorder (sampler + span ring). `None`
    /// until [`Kernel::enable_flight_recorder`] — the datapath checks a
    /// single `Option` per burst, so recording off costs nothing.
    pub(crate) recorder: Option<FlightRecorder>,
    /// Bumped whenever virtual time advances; folded into
    /// [`Kernel::state_generation`] so anything derived from
    /// time-dependent lookups (lazy expiry in conntrack, neighbor and FDB
    /// tables) is invalidated when the clock moves.
    time_generation: u64,
    /// Cached `net.linuxfp.rss_shards` (clamped to `1..=MAX_RSS_SHARDS`);
    /// 1 disables sharding entirely and is bit-identical to the
    /// pre-sharding datapath.
    rss_shards: u32,
    /// The shard whose packet the (serial) simulation is currently
    /// processing — set by RSS steering, read by coherence charging.
    pub(crate) current_shard: u32,
    /// Per-shard last-seen generations of the shared structures. Empty
    /// of meaning when `rss_shards == 1` (never consulted).
    shard_last_seen: Vec<ShardView>,
    seed: u64,
}

/// Result of [`Kernel::inject_batch`]: one [`RxOutcome`] per injected
/// frame (in order) plus the per-burst fixed cost amortized across them.
#[derive(Debug, Default)]
pub struct BatchOutcome {
    /// Per-frame outcomes, in injection order.
    pub outcomes: Vec<RxOutcome>,
    /// Fixed per-burst work (driver receive setup, hook dispatch),
    /// charged once under the same stage names the per-packet trackers
    /// use for their remainders. With sharding active this is the merge
    /// of every shard's fixed cost — each shard with traffic runs its
    /// own NAPI poll.
    pub batch_cost: CostTracker,
    /// Number of frames injected.
    pub batch_size: usize,
    /// Virtual time each shard spent on its slice of the burst (its
    /// fixed batch cost plus its packets' costs). One entry per
    /// configured shard; a single `[total]` entry when `rss_shards=1`.
    /// Empty only for outcomes not produced by `inject_batch`.
    pub shard_ns: Vec<f64>,
}

impl BatchOutcome {
    /// Total virtual time for the burst: fixed cost + all per-frame cost.
    /// This is *CPU* time, summed across shards.
    pub fn total_ns(&self) -> f64 {
        self.batch_cost.total_ns() + self.outcomes.iter().map(|o| o.cost.total_ns()).sum::<f64>()
    }

    /// Average per-packet service time for the burst.
    pub fn per_packet_ns(&self) -> f64 {
        self.total_ns() / self.batch_size.max(1) as f64
    }

    /// Wall-clock virtual time for the burst under parallel shard
    /// execution: the slowest shard's time (shards process their queues
    /// concurrently). Equals [`BatchOutcome::total_ns`] when unsharded.
    pub fn wall_ns(&self) -> f64 {
        if self.shard_ns.is_empty() {
            self.total_ns()
        } else {
            self.shard_ns.iter().copied().fold(0.0, f64::max)
        }
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("devices", &self.devices.len())
            .field("routes", &self.fib.len())
            .field("bridges", &self.bridges.len())
            .field("now", &self.now)
            .finish()
    }
}

impl Kernel {
    /// Creates a kernel with no devices. `seed` namespaces generated MAC
    /// addresses so multi-host topologies don't collide.
    pub fn new(seed: u64) -> Self {
        let mut sysctls = BTreeMap::new();
        sysctls.insert("net.ipv4.ip_forward".to_string(), 0);
        sysctls.insert("net.bridge.bridge-nf-call-iptables".to_string(), 0);
        sysctls.insert("net.linuxfp.flow_cache".to_string(), 1);
        sysctls.insert("net.linuxfp.jit".to_string(), 1);
        sysctls.insert("net.linuxfp.opt".to_string(), 1);
        sysctls.insert("net.linuxfp.trace_sample".to_string(), 0);
        sysctls.insert("net.linuxfp.rss_shards".to_string(), 1);
        Kernel {
            cost: Arc::new(CostModel::calibrated()),
            now: Nanos::ZERO,
            devices: BTreeMap::new(),
            names: HashMap::new(),
            next_ifindex: 1,
            fib: Fib::new(),
            neigh: NeighTable::new(),
            bridges: BTreeMap::new(),
            netfilter: Netfilter::new(),
            conntrack: Conntrack::new(),
            ipvs: crate::ipvs::Ipvs::new(),
            nat: Nat::new(),
            l7: L7::new(),
            last_ct_gc: Nanos::ZERO,
            conntrack_forward: false,
            sysctls,
            netlink: NetlinkBus::new(),
            xdp_hooks: HashMap::new(),
            tc_hooks: HashMap::new(),
            pending_arp: HashMap::new(),
            vxlan_fdb: HashMap::new(),
            vxlan_defaults: HashMap::new(),
            drop_counts: HashMap::new(),
            counters: HashMap::new(),
            bpdus_processed: 0,
            telemetry: None,
            recorder: None,
            time_generation: 0,
            rss_shards: 1,
            current_shard: 0,
            shard_last_seen: vec![ShardView::default()],
            seed,
        }
    }

    /// Enables slow-path telemetry: injected-packet, per-subsystem and
    /// per-reason drop counters land in `registry`, and the FIB,
    /// netfilter, bridge and ipvs subsystems count their operations. The
    /// counters are host atomics with no virtual-time charge.
    pub fn set_telemetry(&mut self, registry: Registry) {
        let t = StackTelemetry::new(registry);
        let ops = |subsystem: &str| {
            t.registry
                .counter("linuxfp_subsystem_ops_total", &[("subsystem", subsystem)])
        };
        self.fib.set_lookup_counter(ops("fib"));
        self.netfilter.set_evaluation_counter(ops("netfilter"));
        self.ipvs.set_selection_counter(ops("ipvs"));
        self.nat
            .set_translation_counter(t.registry.counter("linuxfp_nat_translations_total", &[]));
        self.nat
            .set_reply_counter(t.registry.counter("linuxfp_nat_reply_hits_total", &[]));
        self.nat
            .set_exhaustion_counter(t.registry.counter("linuxfp_nat_port_exhaustion_total", &[]));
        self.conntrack
            .set_eviction_counter(t.registry.counter("linuxfp_conntrack_evictions_total", &[]));
        self.conntrack
            .set_nat_eviction_counter(t.registry.counter("linuxfp_nat_evictions_total", &[]));
        self.l7
            .set_parsed_counter(t.registry.counter("linuxfp_l7_parsed_requests_total", &[]));
        self.l7
            .set_unparseable_counter(t.registry.counter("linuxfp_l7_unparseable_total", &[]));
        self.l7
            .set_deny_counter(t.registry.counter("linuxfp_l7_denies_total", &[]));
        for bridge in self.bridges.values_mut() {
            bridge.set_decision_counter(ops("bridge"));
        }
        self.telemetry = Some(t);
    }

    /// The telemetry registry, if [`Kernel::set_telemetry`] was called.
    pub fn telemetry(&self) -> Option<&Registry> {
        self.telemetry.as_ref().map(|t| &t.registry)
    }

    /// Replaces the cost model (for ablation experiments).
    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.cost = Arc::new(cost);
    }

    /// The active cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Shared handle to the active cost model — lets hook closures keep
    /// a reference across packets instead of cloning the struct per
    /// frame.
    pub fn cost_model_arc(&self) -> Arc<CostModel> {
        Arc::clone(&self.cost)
    }

    /// The kernel-wide state generation: the wrapping sum of every
    /// subsystem's coherence generation plus the time generation. Any
    /// change a fast-path program could observe — route/neighbor/FDB/
    /// rule/ipset/NAT/ipvs mutation, conntrack or NAT eviction, netlink
    /// publish, virtual-time advance — changes this value. Hook
    /// dispatchers compare it against cached work (resolved tail-call
    /// slots, microflow verdict-cache entries) and lazily invalidate on
    /// mismatch. Individual bumps may coincide across subsystems in
    /// principle (it is a sum, not a vector clock), but every mutation
    /// funnels through at least one addend, so equality after a mutation
    /// would require another subsystem to wrap — not reachable in
    /// simulation runs.
    pub fn state_generation(&self) -> u64 {
        let mut g = self
            .netlink
            .generation()
            .wrapping_add(self.fib.generation())
            .wrapping_add(self.neigh.generation())
            .wrapping_add(self.conntrack.generation())
            .wrapping_add(self.netfilter.generation)
            .wrapping_add(self.nat.generation)
            .wrapping_add(self.l7.generation)
            .wrapping_add(self.ipvs.generation)
            .wrapping_add(self.time_generation);
        for bridge in self.bridges.values() {
            g = g.wrapping_add(bridge.generation());
        }
        g
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Traffic counters for a device (zeroes for unknown devices).
    pub fn dev_counters(&self, dev: IfIndex) -> DevCounters {
        self.counters.get(&dev).copied().unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // Device configuration (the `ip link` / `brctl` surface)
    // ------------------------------------------------------------------

    fn alloc_index(&mut self) -> IfIndex {
        let idx = IfIndex(self.next_ifindex);
        self.next_ifindex += 1;
        idx
    }

    fn gen_mac(&self, index: IfIndex) -> MacAddr {
        MacAddr::from_index(self.seed.wrapping_mul(0x10000) + u64::from(index.as_u32()))
    }

    fn register(&mut self, dev: NetDevice) -> IfIndex {
        let idx = dev.index;
        self.names.insert(dev.name.clone(), idx);
        self.devices.insert(idx, dev);
        let info = self.link_info(idx).expect("just inserted");
        self.netlink.publish(NetlinkMessage::NewLink(info));
        idx
    }

    fn ensure_name_free(&self, name: &str) -> Result<(), NetError> {
        if self.names.contains_key(name) {
            Err(NetError::DeviceExists(name.to_string()))
        } else {
            Ok(())
        }
    }

    /// Adds a physical NIC.
    ///
    /// # Errors
    ///
    /// Fails if the name is taken.
    pub fn add_physical(&mut self, name: &str) -> Result<IfIndex, NetError> {
        self.ensure_name_free(name)?;
        let idx = self.alloc_index();
        let mac = self.gen_mac(idx);
        Ok(self.register(NetDevice::new(idx, name, DeviceKind::Physical, mac)))
    }

    /// Adds a veth pair (`ip link add <a> type veth peer name <b>`).
    ///
    /// # Errors
    ///
    /// Fails if either name is taken.
    pub fn add_veth_pair(&mut self, a: &str, b: &str) -> Result<(IfIndex, IfIndex), NetError> {
        self.ensure_name_free(a)?;
        self.ensure_name_free(b)?;
        if a == b {
            return Err(NetError::Invalid("veth ends need distinct names".into()));
        }
        let ia = self.alloc_index();
        let ib = self.alloc_index();
        let mac_a = self.gen_mac(ia);
        let mac_b = self.gen_mac(ib);
        self.register(NetDevice::new(ia, a, DeviceKind::Veth { peer: ib }, mac_a));
        self.register(NetDevice::new(ib, b, DeviceKind::Veth { peer: ia }, mac_b));
        Ok((ia, ib))
    }

    /// Adds a bridge (`brctl addbr`).
    ///
    /// # Errors
    ///
    /// Fails if the name is taken.
    pub fn add_bridge(&mut self, name: &str) -> Result<IfIndex, NetError> {
        self.ensure_name_free(name)?;
        let idx = self.alloc_index();
        let mac = self.gen_mac(idx);
        let mut bridge = Bridge::new(idx, mac);
        if let Some(t) = &self.telemetry {
            bridge.set_decision_counter(
                t.registry
                    .counter("linuxfp_subsystem_ops_total", &[("subsystem", "bridge")]),
            );
        }
        self.bridges.insert(idx, bridge);
        Ok(self.register(NetDevice::new(idx, name, DeviceKind::Bridge, mac)))
    }

    /// Adds a VXLAN device (`ip link add <name> type vxlan id <vni> ...`).
    ///
    /// # Errors
    ///
    /// Fails if the name is taken.
    pub fn add_vxlan(
        &mut self,
        name: &str,
        vni: u32,
        local: Ipv4Addr,
        port: u16,
    ) -> Result<IfIndex, NetError> {
        self.ensure_name_free(name)?;
        let idx = self.alloc_index();
        let mac = self.gen_mac(idx);
        self.vxlan_fdb.insert(idx, HashMap::new());
        self.vxlan_defaults.insert(idx, Vec::new());
        Ok(self.register(NetDevice::new(
            idx,
            name,
            DeviceKind::Vxlan { vni, local, port },
            mac,
        )))
    }

    /// Adds an FDB entry mapping a remote MAC to its VTEP
    /// (`bridge fdb append <mac> dev <vxlan> dst <vtep>`).
    ///
    /// # Errors
    ///
    /// Fails if the device is not a VXLAN device.
    pub fn vxlan_fdb_add(
        &mut self,
        dev: IfIndex,
        mac: MacAddr,
        vtep: Ipv4Addr,
    ) -> Result<(), NetError> {
        let fdb = self
            .vxlan_fdb
            .get_mut(&dev)
            .ok_or_else(|| NetError::Invalid(format!("{dev} is not a vxlan device")))?;
        fdb.insert(mac, vtep);
        Ok(())
    }

    /// Registers a default flood target for unknown/broadcast inner MACs.
    ///
    /// # Errors
    ///
    /// Fails if the device is not a VXLAN device.
    pub fn vxlan_add_default_remote(
        &mut self,
        dev: IfIndex,
        vtep: Ipv4Addr,
    ) -> Result<(), NetError> {
        let defaults = self
            .vxlan_defaults
            .get_mut(&dev)
            .ok_or_else(|| NetError::Invalid(format!("{dev} is not a vxlan device")))?;
        if !defaults.contains(&vtep) {
            defaults.push(vtep);
        }
        Ok(())
    }

    /// Enslaves `port` to `bridge` (`brctl addif`).
    ///
    /// # Errors
    ///
    /// Fails when either device is missing, `bridge` is not a bridge, or
    /// the port is a bridge itself.
    pub fn brctl_addif(&mut self, bridge: IfIndex, port: IfIndex) -> Result<(), NetError> {
        if !self.bridges.contains_key(&bridge) {
            return Err(NetError::Invalid(format!("{bridge} is not a bridge")));
        }
        if self.bridges.contains_key(&port) {
            return Err(NetError::Invalid("cannot enslave a bridge".into()));
        }
        let dev = self
            .devices
            .get_mut(&port)
            .ok_or_else(|| NetError::NoSuchDevice(port.to_string()))?;
        dev.master = Some(bridge);
        self.bridges
            .get_mut(&bridge)
            .expect("checked")
            .add_port(port);
        let info = self.link_info(port).expect("exists");
        self.netlink.publish(NetlinkMessage::NewLink(info));
        Ok(())
    }

    /// Removes `port` from `bridge` (`brctl delif`).
    ///
    /// # Errors
    ///
    /// Fails when the devices are missing or not related.
    pub fn brctl_delif(&mut self, bridge: IfIndex, port: IfIndex) -> Result<(), NetError> {
        let br = self
            .bridges
            .get_mut(&bridge)
            .ok_or_else(|| NetError::Invalid(format!("{bridge} is not a bridge")))?;
        if !br.remove_port(port) {
            return Err(NetError::NotFound(format!("{port} not in {bridge}")));
        }
        if let Some(dev) = self.devices.get_mut(&port) {
            dev.master = None;
        }
        let info = self.link_info(port).expect("exists");
        self.netlink.publish(NetlinkMessage::NewLink(info));
        Ok(())
    }

    /// Enables or disables STP on a bridge (`brctl stp <br> on|off`).
    ///
    /// # Errors
    ///
    /// Fails if `bridge` is not a bridge.
    pub fn bridge_set_stp(&mut self, bridge: IfIndex, on: bool) -> Result<(), NetError> {
        let br = self
            .bridges
            .get_mut(&bridge)
            .ok_or_else(|| NetError::Invalid(format!("{bridge} is not a bridge")))?;
        br.stp_enabled = on;
        let info = self.link_info(bridge).expect("exists");
        self.netlink.publish(NetlinkMessage::NewLink(info));
        Ok(())
    }

    /// Enables or disables VLAN filtering on a bridge.
    ///
    /// # Errors
    ///
    /// Fails if `bridge` is not a bridge.
    pub fn bridge_set_vlan_filtering(&mut self, bridge: IfIndex, on: bool) -> Result<(), NetError> {
        let br = self
            .bridges
            .get_mut(&bridge)
            .ok_or_else(|| NetError::Invalid(format!("{bridge} is not a bridge")))?;
        br.vlan_filtering = on;
        let info = self.link_info(bridge).expect("exists");
        self.netlink.publish(NetlinkMessage::NewLink(info));
        Ok(())
    }

    /// Direct access to a bridge (for port VLAN/STP state configuration
    /// and FDB inspection). Conservatively bumps the bridge's coherence
    /// generation: callers use this to flip forwarding-relevant port
    /// state without going through netlink.
    pub fn bridge_mut(&mut self, bridge: IfIndex) -> Option<&mut Bridge> {
        let b = self.bridges.get_mut(&bridge)?;
        b.touch_generation();
        Some(b)
    }

    /// Read access to a bridge.
    pub fn bridge(&self, bridge: IfIndex) -> Option<&Bridge> {
        self.bridges.get(&bridge)
    }

    /// Indexes of all bridges.
    pub fn bridge_indices(&self) -> Vec<IfIndex> {
        self.bridges.keys().copied().collect()
    }

    /// Sets a link up (`ip link set <dev> up`).
    ///
    /// # Errors
    ///
    /// Fails if the device does not exist.
    pub fn ip_link_set_up(&mut self, dev: IfIndex) -> Result<(), NetError> {
        self.set_link_state(dev, true)
    }

    /// Marks a device as an endpoint (terminating in an external stack,
    /// e.g. a pod network namespace).
    ///
    /// # Errors
    ///
    /// Fails if the device does not exist.
    pub fn set_endpoint(&mut self, dev: IfIndex, endpoint: bool) -> Result<(), NetError> {
        let d = self
            .devices
            .get_mut(&dev)
            .ok_or_else(|| NetError::NoSuchDevice(dev.to_string()))?;
        d.endpoint = endpoint;
        Ok(())
    }

    /// Sets a link down.
    ///
    /// # Errors
    ///
    /// Fails if the device does not exist.
    pub fn ip_link_set_down(&mut self, dev: IfIndex) -> Result<(), NetError> {
        self.set_link_state(dev, false)
    }

    fn set_link_state(&mut self, dev: IfIndex, up: bool) -> Result<(), NetError> {
        let d = self
            .devices
            .get_mut(&dev)
            .ok_or_else(|| NetError::NoSuchDevice(dev.to_string()))?;
        d.up = up;
        let info = self.link_info(dev).expect("exists");
        self.netlink.publish(NetlinkMessage::NewLink(info));
        Ok(())
    }

    /// Adds an address (`ip addr add <addr>/<len> dev <dev>`); also
    /// installs the connected route, as Linux does.
    ///
    /// # Errors
    ///
    /// Fails if the device does not exist or already has the address.
    pub fn ip_addr_add(&mut self, dev: IfIndex, addr: IfAddr) -> Result<(), NetError> {
        let d = self
            .devices
            .get_mut(&dev)
            .ok_or_else(|| NetError::NoSuchDevice(dev.to_string()))?;
        if d.has_addr(addr.addr) {
            return Err(NetError::AlreadyExists(addr.addr.to_string()));
        }
        d.addrs.push((addr.addr, addr.prefix_len));
        self.netlink.publish(NetlinkMessage::NewAddr {
            index: dev,
            addr: addr.addr,
            prefix_len: addr.prefix_len,
        });
        if addr.prefix_len < 32 {
            self.install_route(Route::connected(addr.subnet(), dev));
        }
        let info = self.link_info(dev).expect("exists");
        self.netlink.publish(NetlinkMessage::NewLink(info));
        Ok(())
    }

    /// Removes an address and its connected route.
    ///
    /// # Errors
    ///
    /// Fails if the device or address is missing.
    pub fn ip_addr_del(&mut self, dev: IfIndex, addr: IfAddr) -> Result<(), NetError> {
        let d = self
            .devices
            .get_mut(&dev)
            .ok_or_else(|| NetError::NoSuchDevice(dev.to_string()))?;
        let before = d.addrs.len();
        d.addrs
            .retain(|(a, l)| !(*a == addr.addr && *l == addr.prefix_len));
        if d.addrs.len() == before {
            return Err(NetError::NotFound(addr.addr.to_string()));
        }
        self.fib.remove(&addr.subnet(), Some(dev));
        self.netlink.publish(NetlinkMessage::DelAddr {
            index: dev,
            addr: addr.addr,
        });
        self.netlink.publish(NetlinkMessage::DelRoute {
            prefix: addr.subnet(),
        });
        Ok(())
    }

    fn install_route(&mut self, route: Route) {
        self.fib.insert(route);
        self.netlink.publish(NetlinkMessage::NewRoute(RouteInfo {
            prefix: route.prefix,
            via: route.via,
            dev: route.dev,
            metric: route.metric,
        }));
    }

    /// Adds a route (`ip route add <prefix> [via <gw>] [dev <dev>]`).
    /// When `dev` is omitted it is resolved from the gateway's connected
    /// subnet.
    ///
    /// # Errors
    ///
    /// Fails when neither `via` nor `dev` determine an egress interface.
    pub fn ip_route_add(
        &mut self,
        prefix: Prefix,
        via: Option<Ipv4Addr>,
        dev: Option<IfIndex>,
    ) -> Result<(), NetError> {
        let egress = match (dev, via) {
            (Some(d), _) => d,
            (None, Some(gw)) => self.device_for_subnet(gw).ok_or_else(|| {
                NetError::Invalid(format!("no connected subnet for gateway {gw}"))
            })?,
            (None, None) => {
                return Err(NetError::Invalid("route needs via or dev".into()));
            }
        };
        if !self.devices.contains_key(&egress) {
            return Err(NetError::NoSuchDevice(egress.to_string()));
        }
        let route = match via {
            Some(gw) => Route::via_gateway(prefix, gw, egress),
            None => Route::connected(prefix, egress),
        };
        self.install_route(route);
        Ok(())
    }

    /// Deletes routes for `prefix` (optionally restricted to `dev`).
    ///
    /// # Errors
    ///
    /// Fails if no route matched.
    pub fn ip_route_del(&mut self, prefix: Prefix, dev: Option<IfIndex>) -> Result<(), NetError> {
        if self.fib.remove(&prefix, dev) == 0 {
            return Err(NetError::NotFound(prefix.to_string()));
        }
        self.netlink.publish(NetlinkMessage::DelRoute { prefix });
        Ok(())
    }

    /// The device whose connected subnet contains `addr`.
    pub fn device_for_subnet(&self, addr: Ipv4Addr) -> Option<IfIndex> {
        self.devices
            .values()
            .find(|d| d.connected_prefixes().iter().any(|p| p.contains(addr)))
            .map(|d| d.index)
    }

    /// Sets a sysctl (`sysctl -w <name>=<value>`).
    ///
    /// # Errors
    ///
    /// Fails for unknown sysctls.
    pub fn sysctl_set(&mut self, name: &str, value: i64) -> Result<(), NetError> {
        if !self.sysctls.contains_key(name) {
            return Err(NetError::NotFound(name.to_string()));
        }
        self.sysctls.insert(name.to_string(), value);
        if name == "net.linuxfp.trace_sample" {
            if let Some(recorder) = &mut self.recorder {
                recorder.set_every(value.max(0) as u64);
            }
        }
        if name == "net.linuxfp.rss_shards" {
            // Clamp and cache; resizing drops every shard's last-seen
            // view, so all shards start cold (they would on real cores
            // coming online too).
            let shards = value.clamp(1, i64::from(rss::MAX_RSS_SHARDS)) as u32;
            self.rss_shards = shards;
            self.current_shard = 0;
            self.shard_last_seen = vec![ShardView::default(); shards as usize];
        }
        self.netlink.publish(NetlinkMessage::SysctlChanged {
            name: name.to_string(),
            value,
        });
        Ok(())
    }

    /// Reads a sysctl.
    pub fn sysctl_get(&self, name: &str) -> Option<i64> {
        self.sysctls.get(name).copied()
    }

    /// Whether IPv4 forwarding is enabled.
    pub fn ip_forward_enabled(&self) -> bool {
        self.sysctl_get("net.ipv4.ip_forward") == Some(1)
    }

    /// Whether bridged IPv4 traffic traverses iptables (the
    /// `br_netfilter` behavior Kubernetes requires).
    pub fn bridge_nf_enabled(&self) -> bool {
        self.sysctl_get("net.bridge.bridge-nf-call-iptables") == Some(1)
    }

    /// Whether the fast path's microflow verdict cache is enabled
    /// (`net.linuxfp.flow_cache`, default on).
    pub fn flow_cache_enabled(&self) -> bool {
        self.sysctl_get("net.linuxfp.flow_cache") == Some(1)
    }

    /// Whether attached programs run in their load-time-compiled
    /// (direct-threaded) form (`net.linuxfp.jit`, default on — mirroring
    /// `net.core.bpf_jit_enable` on production kernels). Turning it off
    /// falls back to the reference interpreter, which must be
    /// observationally identical and only slower.
    pub fn jit_enabled(&self) -> bool {
        self.sysctl_get("net.linuxfp.jit") == Some(1)
    }

    /// Whether synthesized programs are run through the bytecode
    /// optimizer before verification and load (`net.linuxfp.opt`,
    /// default on). Turning it off deploys the emitters' naive output
    /// unchanged — observationally identical, just more instructions
    /// per cache-miss packet; the `--opt 0` difftest lane and the
    /// opt-parity fuzz hold the two forms to the same behavior.
    pub fn opt_enabled(&self) -> bool {
        self.sysctl_get("net.linuxfp.opt") == Some(1)
    }

    /// The active RSS shard count (`net.linuxfp.rss_shards`, default 1,
    /// clamped to `1..=`[`rss::MAX_RSS_SHARDS`]). With 1 shard the
    /// datapath is bit-identical to the unsharded pipeline: no steering,
    /// no coherence charges, one batch amortizer.
    pub fn rss_shards(&self) -> u32 {
        self.rss_shards
    }

    /// The generation of one shared structure — the addends of
    /// [`Kernel::state_generation`], individually addressable so shards
    /// can track staleness per structure.
    fn structure_generation(&self, s: CoherentStruct) -> u64 {
        match s {
            CoherentStruct::Fib => self.fib.generation(),
            CoherentStruct::Neigh => self.neigh.generation(),
            CoherentStruct::Conntrack => self.conntrack.generation(),
            CoherentStruct::Netfilter => self.netfilter.generation,
            CoherentStruct::Nat => self.nat.generation,
            CoherentStruct::L7 => self.l7.generation,
            CoherentStruct::Ipvs => self.ipvs.generation,
            CoherentStruct::Fdb => {
                let mut g = 0u64;
                for bridge in self.bridges.values() {
                    g = g.wrapping_add(bridge.generation());
                }
                g
            }
        }
    }

    /// Marks the current shard's view of `s` as up to date *without*
    /// charging — used right after this shard itself mutated the
    /// structure (its own writes are already in its cache).
    pub(crate) fn coherence_refresh(&mut self, s: CoherentStruct) {
        if self.rss_shards <= 1 {
            return;
        }
        let gen = self.structure_generation(s);
        self.shard_last_seen[self.current_shard as usize][s.index()] = gen;
    }

    /// Charges the cross-core coherence cost if the current shard's view
    /// of `s` is stale (another shard — or the control plane, or
    /// housekeeping — wrote it since this shard last looked), and marks
    /// the view current. Free when `rss_shards=1`, free on repeat access
    /// within the same generation: only the *first* touch after a remote
    /// write pays, exactly like a cache-line transfer.
    pub(crate) fn coherence(&mut self, s: CoherentStruct, out: &mut RxOutcome) {
        if self.rss_shards <= 1 {
            return;
        }
        let gen = self.structure_generation(s);
        let shard = self.current_shard as usize;
        if self.shard_last_seen[shard][s.index()] == gen {
            return;
        }
        self.shard_last_seen[shard][s.index()] = gen;
        out.charge("coherence", self.cost.coherence_miss_ns);
        self.count_coherence_event(s);
    }

    /// Fast-path flavor of [`Kernel::coherence`] for hook programs,
    /// which compare the *combined* state generation to key their
    /// caches and therefore read every structure's generation line.
    /// Charges one miss per structure that went stale.
    pub fn coherence_charge_fastpath(&mut self, cost: &mut CostTracker, trace: &mut TraceCtx) {
        if self.rss_shards <= 1 {
            return;
        }
        for s in CoherentStruct::ALL {
            let gen = self.structure_generation(s);
            let shard = self.current_shard as usize;
            if self.shard_last_seen[shard][s.index()] != gen {
                self.shard_last_seen[shard][s.index()] = gen;
                cost.charge("coherence", self.cost.coherence_miss_ns);
                trace.stage("coherence", self.cost.coherence_miss_ns);
                self.count_coherence_event(s);
            }
        }
    }

    /// Re-syncs the current shard's whole view after a fast-path program
    /// ran: helper calls may have written shared state (conntrack
    /// refresh, FDB refresh, NAT counters, L7 pins), and a shard's own
    /// writes must not read as remote on its next packet. Serial
    /// execution guarantees any generation movement since the matching
    /// charge call was this shard's own.
    pub fn coherence_refresh_fastpath(&mut self) {
        if self.rss_shards <= 1 {
            return;
        }
        for s in CoherentStruct::ALL {
            let gen = self.structure_generation(s);
            self.shard_last_seen[self.current_shard as usize][s.index()] = gen;
        }
    }

    fn count_coherence_event(&self, s: CoherentStruct) {
        if let Some(t) = &self.telemetry {
            t.registry
                .counter(
                    "linuxfp_coherence_events_total",
                    &[("structure", s.as_str())],
                )
                .inc();
        }
    }

    /// Enables the per-packet flight recorder: keeps up to `capacity`
    /// sampled spans, sampling 1-in-`every` packets (`0` = off; also
    /// settable at runtime via the `net.linuxfp.trace_sample` sysctl).
    /// Returns a shared handle to the span ring. The recorder reads
    /// virtual time and cost trackers but never charges them: with
    /// sampling off the datapath is bit-identical to a kernel without a
    /// recorder.
    pub fn enable_flight_recorder(&mut self, capacity: usize, every: u64) -> TraceRing {
        let recorder = FlightRecorder::new(capacity, every);
        let ring = recorder.ring();
        self.recorder = Some(recorder);
        self.sysctls
            .insert("net.linuxfp.trace_sample".to_string(), every as i64);
        ring
    }

    /// The flight-recorder span ring, if enabled.
    pub fn trace_ring(&self) -> Option<TraceRing> {
        self.recorder.as_ref().map(FlightRecorder::ring)
    }

    /// Records a housekeeping marker span when the recorder is active.
    pub(crate) fn record_housekeeping_span(&self, report: &HousekeepingReport) {
        if let Some(recorder) = &self.recorder {
            if recorder.every() > 0 {
                recorder.record(TraceSpan::housekeeping(
                    self.now.as_nanos(),
                    report.fdb_expired,
                    report.conntrack_expired,
                    report.neigh_expired,
                    report.nat_expired,
                ));
            }
        }
    }

    // ------------------------------------------------------------------
    // iptables / ipset surface
    // ------------------------------------------------------------------

    /// Appends a rule (`iptables -A <CHAIN> ...`).
    pub fn iptables_append(&mut self, hook: ChainHook, rule: IptRule) {
        self.netfilter.append(hook, rule);
        self.publish_nf_changed();
    }

    /// Flushes a chain (`iptables -F <CHAIN>`).
    pub fn iptables_flush(&mut self, hook: ChainHook) {
        self.netfilter.flush(hook);
        self.publish_nf_changed();
    }

    /// Creates an ipset.
    pub fn ipset_create(&mut self, name: &str, set: crate::netfilter::IpSet) -> bool {
        let ok = self.netfilter.set_create(name, set);
        if ok {
            self.publish_nf_changed();
        }
        ok
    }

    /// Adds a member to an ipset.
    pub fn ipset_add(&mut self, name: &str, prefix: Prefix) -> bool {
        let ok = self.netfilter.set_add(name, prefix);
        if ok {
            self.publish_nf_changed();
        }
        ok
    }

    /// Empties an ipset (`ipset flush <name>`).
    pub fn ipset_flush(&mut self, name: &str) -> bool {
        let ok = self.netfilter.set_flush(name);
        if ok {
            self.publish_nf_changed();
        }
        ok
    }

    /// Adds a virtual service (`ipvsadm -A -u <vip>:<port> -s <sched>`).
    pub fn ipvsadm_add_service(
        &mut self,
        vip: Ipv4Addr,
        port: u16,
        proto: IpProto,
        scheduler: crate::ipvs::Scheduler,
    ) -> bool {
        let ok = self.ipvs.add_service(vip, port, proto, scheduler);
        if ok {
            let generation = self.ipvs.generation;
            self.netlink
                .publish(NetlinkMessage::IpvsChanged { generation });
        }
        ok
    }

    /// Adds a backend (`ipvsadm -a -u <vip>:<port> -r <backend>`).
    pub fn ipvsadm_add_backend(
        &mut self,
        vip: Ipv4Addr,
        port: u16,
        proto: IpProto,
        backend: Ipv4Addr,
        backend_port: u16,
    ) -> bool {
        let ok = self
            .ipvs
            .add_backend(vip, port, proto, backend, backend_port);
        if ok {
            let generation = self.ipvs.generation;
            self.netlink
                .publish(NetlinkMessage::IpvsChanged { generation });
        }
        ok
    }

    /// Appends a NAT rule (`iptables -t nat -A <CHAIN> ...`); returns
    /// `false` when the target is illegal for the chain.
    pub fn iptables_nat_append(&mut self, chain: NatChain, rule: NatRule) -> bool {
        let ok = self.nat.append(chain, rule);
        if ok {
            self.publish_nat_changed();
        }
        ok
    }

    /// Flushes the `nat` table (`iptables -t nat -F`). Established
    /// bindings keep translating their flows, as in Linux.
    pub fn iptables_nat_flush(&mut self) {
        self.nat.flush();
        self.publish_nat_changed();
    }

    /// Appends an L7 request policy (first match wins).
    pub fn l7_policy_append(&mut self, policy: L7Policy) {
        self.l7.append(policy);
        self.publish_l7_changed();
    }

    /// Flushes the L7 policy table *and* the connection-verdict pins:
    /// pinned connections are re-evaluated from their next request.
    pub fn l7_policy_flush(&mut self) {
        self.l7.flush();
        self.publish_l7_changed();
    }

    fn publish_l7_changed(&mut self) {
        let generation = self.l7.generation;
        self.netlink
            .publish(NetlinkMessage::L7Changed { generation });
    }

    fn publish_nat_changed(&mut self) {
        let generation = self.nat.generation;
        self.netlink
            .publish(NetlinkMessage::NatChanged { generation });
    }

    fn publish_nf_changed(&mut self) {
        let generation = self.netfilter.generation;
        self.netlink
            .publish(NetlinkMessage::NetfilterChanged { generation });
    }

    // ------------------------------------------------------------------
    // Netlink subscription & dumps
    // ------------------------------------------------------------------

    /// Joins netlink multicast groups.
    pub fn netlink_subscribe(&mut self, groups: &[NlGroup]) -> SubscriberId {
        self.netlink.subscribe(groups)
    }

    /// Drains pending notifications for a subscriber.
    pub fn netlink_poll(&mut self, id: SubscriberId) -> Vec<NetlinkMessage> {
        self.netlink.poll(id)
    }

    fn link_info(&self, dev: IfIndex) -> Option<LinkInfo> {
        let d = self.devices.get(&dev)?;
        let bridge = self.bridges.get(&dev);
        Some(LinkInfo {
            index: d.index,
            name: d.name.clone(),
            kind: d.kind.kind_name().to_string(),
            mac: d.mac,
            up: d.up,
            master: d.master,
            addrs: d.addrs.clone(),
            stp_enabled: bridge.map(|b| b.stp_enabled),
            vlan_filtering: bridge.map(|b| b.vlan_filtering),
        })
    }

    /// Dumps all links (`RTM_GETLINK`).
    pub fn dump_links(&self) -> Vec<LinkInfo> {
        self.devices
            .keys()
            .filter_map(|i| self.link_info(*i))
            .collect()
    }

    /// Dumps all neighbor entries (`RTM_GETNEIGH`).
    pub fn dump_neigh(&self) -> Vec<(Ipv4Addr, crate::neigh::NeighEntry)> {
        self.neigh.entries()
    }

    /// Dumps all routes (`RTM_GETROUTE`).
    pub fn dump_routes(&self) -> Vec<RouteInfo> {
        self.fib
            .routes()
            .into_iter()
            .map(|r| RouteInfo {
                prefix: r.prefix,
                via: r.via,
                dev: r.dev,
                metric: r.metric,
            })
            .collect()
    }

    /// Looks up a device by name.
    pub fn ifindex(&self, name: &str) -> Option<IfIndex> {
        self.names.get(name).copied()
    }

    /// A device by index.
    pub fn device(&self, dev: IfIndex) -> Option<&NetDevice> {
        self.devices.get(&dev)
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    // ------------------------------------------------------------------
    // Hook attachment (XDP / TC)
    // ------------------------------------------------------------------

    /// Attaches an XDP program to a device.
    ///
    /// # Errors
    ///
    /// Fails if the device does not exist.
    pub fn attach_xdp(&mut self, dev: IfIndex, hook: HookFn) -> Result<(), NetError> {
        let d = self
            .devices
            .get_mut(&dev)
            .ok_or_else(|| NetError::NoSuchDevice(dev.to_string()))?;
        d.has_xdp = true;
        self.xdp_hooks.insert(dev, hook);
        Ok(())
    }

    /// Detaches any XDP program from a device.
    pub fn detach_xdp(&mut self, dev: IfIndex) {
        if let Some(d) = self.devices.get_mut(&dev) {
            d.has_xdp = false;
        }
        self.xdp_hooks.remove(&dev);
    }

    /// Attaches a TC ingress program to a device.
    ///
    /// # Errors
    ///
    /// Fails if the device does not exist.
    pub fn attach_tc_ingress(&mut self, dev: IfIndex, hook: HookFn) -> Result<(), NetError> {
        let d = self
            .devices
            .get_mut(&dev)
            .ok_or_else(|| NetError::NoSuchDevice(dev.to_string()))?;
        d.has_tc_ingress = true;
        self.tc_hooks.insert(dev, hook);
        Ok(())
    }

    /// Detaches any TC ingress program from a device.
    pub fn detach_tc_ingress(&mut self, dev: IfIndex) {
        if let Some(d) = self.devices.get_mut(&dev) {
            d.has_tc_ingress = false;
        }
        self.tc_hooks.remove(&dev);
    }

    // ------------------------------------------------------------------
    // Helper facades exposed to fast paths (the paper's kernel helpers)
    // ------------------------------------------------------------------

    /// `bpf_fib_lookup`: combined FIB + neighbor lookup. Returns `None`
    /// when there is no route or the next hop is unresolved — the fast
    /// path then passes the packet to the slow path, which performs ARP.
    pub fn helper_fib_lookup(&mut self, dst: Ipv4Addr) -> Option<FibFastResult> {
        // Locally addressed packets are never fast-path forwarded; the
        // real helper reports RT_LOCAL and the program passes to Linux.
        if self.owns_addr(dst) {
            return None;
        }
        let route = self.fib.lookup(dst).copied()?;
        let next_hop = route.via.unwrap_or(dst);
        let now = self.now;
        let (dst_mac, _) = self.neigh.resolved_mac(next_hop, now)?;
        let egress = self.devices.get(&route.dev)?;
        if !egress.up {
            return None;
        }
        Some(FibFastResult {
            ifindex: route.dev,
            src_mac: egress.mac,
            dst_mac,
        })
    }

    /// `bpf_fdb_lookup` (the paper's new helper): FDB lookup for the
    /// bridge that `ingress_port` belongs to, honoring aging and STP port
    /// state, and refreshing the *source* entry (fast-path FDB update).
    /// Returns the egress port, or `None` on miss / unknown source (the
    /// slow path then learns and floods).
    pub fn helper_fdb_lookup(
        &mut self,
        ingress_port: IfIndex,
        src_mac: MacAddr,
        dst_mac: MacAddr,
        vlan: u16,
    ) -> FdbLookupOutcome {
        let Some(bridge_idx) = self.devices.get(&ingress_port).and_then(|d| d.master) else {
            return FdbLookupOutcome::SrcUnknown;
        };
        let now = self.now;
        let Some(bridge) = self.bridges.get_mut(&bridge_idx) else {
            return FdbLookupOutcome::SrcUnknown;
        };
        // The ingress port must be in the forwarding state: STP is
        // slow-path protocol work, and a blocked port's traffic must
        // reach it (to be dropped there), never be fast-forwarded.
        if bridge.port(ingress_port).map(|p| p.stp_state)
            != Some(crate::bridge::StpState::Forwarding)
        {
            return FdbLookupOutcome::SrcUnknown;
        }
        // The source must already be known (learning is slow-path work);
        // refresh its timestamp so active flows don't age out.
        if bridge.fdb_lookup(src_mac, vlan, now).is_none() {
            return FdbLookupOutcome::SrcUnknown;
        }
        bridge.fdb_learn(src_mac, vlan, ingress_port, now);
        match bridge.fdb_lookup(dst_mac, vlan, now) {
            Some(egress) if egress != ingress_port => FdbLookupOutcome::Hit(egress),
            // A hairpin hit is treated like a miss: the slow path drops.
            _ => FdbLookupOutcome::DstMiss,
        }
    }

    /// `bpf_ipt_lookup` (the paper's new helper): evaluates the FORWARD
    /// chain against packet metadata using the *kernel's* rule table.
    pub fn helper_ipt_lookup(&self, meta: &PacketMeta, tracker: &mut CostTracker) -> NfVerdict {
        self.netfilter.evaluate_with_rule_cost(
            ChainHook::Forward,
            meta,
            &self.cost,
            tracker,
            self.cost.helper_ipt_rule_ns,
        )
    }

    /// `bpf_nat_lookup` (the fifth subsystem's helper): reads the
    /// *kernel's* NAT binding table — never shadow state. A `Hit` tells
    /// the fast path the full translated tuple; a `Miss` means the slow
    /// path must see the packet (rule evaluation, port allocation and
    /// binding creation are slow-path work, like conntrack entry
    /// creation in the paper's split); `NoNat` lets untranslated
    /// traffic keep to the fast path.
    ///
    /// Only UDP is fast-path translated (TCP reports `Miss`), mirroring
    /// the ipvs fast path's protocol split.
    pub fn helper_nat_lookup(
        &mut self,
        src: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        proto: u8,
    ) -> NatLookupOutcome {
        let tuple = NatTuple::new(src, sport, dst, dport, proto);
        if !matches!(proto, 6 | 17) {
            return NatLookupOutcome::NoNat;
        }
        let now = self.now;
        if let Some(hit) = self.conntrack.nat_lookup(&tuple, now) {
            if proto != 17 {
                return NatLookupOutcome::Miss;
            }
            // Count through the same counters as the slow path: the
            // translation happens either way.
            if hit.reply {
                self.nat.note_reply_hit();
            } else {
                self.nat.note_translation();
            }
            return NatLookupOutcome::Hit(hit.xlat);
        }
        if self.nat.could_translate(&tuple) {
            NatLookupOutcome::Miss
        } else {
            NatLookupOutcome::NoNat
        }
    }

    /// `bpf_l7_policy_lookup` (the sixth subsystem's helper): reads the
    /// *kernel's* L7 policy and connection-pin tables — never shadow
    /// state. The payload slice is the bytes the synthesized program
    /// proved in-bounds; `first` is the first payload byte the program
    /// itself loaded through a verified variable-offset load (`None`
    /// encodes an empty payload). Verdicts, pin installation and
    /// telemetry all run through [`crate::l7::L7::lookup_hinted`] — the
    /// same code the slow path executes, so the two paths cannot
    /// disagree.
    pub fn helper_l7_lookup(
        &mut self,
        src: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        payload: &[u8],
        first: Option<u8>,
    ) -> L7LookupOutcome {
        let key = L7ConnKey {
            src,
            sport,
            dst,
            dport,
        };
        self.l7.lookup_hinted(key, payload, first)
    }
}

/// Wires a buffer pool's occupancy into `registry`: the gauges
/// `linuxfp_pool_buffers{state="free"|"outstanding"|"allocated"}` follow
/// every acquire/recycle/detach. The `linuxfp-packet` crate stays
/// dependency-free, so the telemetry hookup lives here, at the first
/// layer that knows both sides. The observer runs outside virtual time —
/// observability must not perturb the modeled costs.
pub fn wire_pool_telemetry(pool: &linuxfp_packet::BufferPool, registry: &Registry) {
    registry.describe(
        "linuxfp_pool_buffers",
        "Packet buffer pool occupancy by state",
    );
    let free = registry.gauge("linuxfp_pool_buffers", &[("state", "free")]);
    let outstanding = registry.gauge("linuxfp_pool_buffers", &[("state", "outstanding")]);
    let allocated = registry.gauge("linuxfp_pool_buffers", &[("state", "allocated")]);
    pool.set_occupancy_observer(Arc::new(move |s: &linuxfp_packet::PoolStats| {
        free.set(s.free as i64);
        outstanding.set(s.outstanding as i64);
        allocated.set(s.allocated as i64);
    }));
}

/// [`wire_pool_telemetry`] for a sharded pool: every member pool's
/// occupancy lands in the same `linuxfp_pool_buffers` gauges with an
/// additional `shard` label, so per-shard occupancy is observable and
/// the sum over shards is the aggregate.
pub fn wire_sharded_pool_telemetry(pool: &linuxfp_packet::ShardedPool, registry: &Registry) {
    registry.describe(
        "linuxfp_pool_buffers",
        "Packet buffer pool occupancy by state",
    );
    for shard in 0..pool.shards() {
        let label = shard.to_string();
        let free = registry.gauge(
            "linuxfp_pool_buffers",
            &[("state", "free"), ("shard", label.as_str())],
        );
        let outstanding = registry.gauge(
            "linuxfp_pool_buffers",
            &[("state", "outstanding"), ("shard", label.as_str())],
        );
        let allocated = registry.gauge(
            "linuxfp_pool_buffers",
            &[("state", "allocated"), ("shard", label.as_str())],
        );
        pool.pool(shard)
            .set_occupancy_observer(Arc::new(move |s: &linuxfp_packet::PoolStats| {
                free.set(s.free as i64);
                outstanding.set(s.outstanding as i64);
                allocated.set(s.allocated as i64);
            }));
    }
}

mod forward;
mod housekeeping;
mod local;
pub mod rss;
mod rx;
