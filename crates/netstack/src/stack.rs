//! The simulated kernel: devices, configuration surface, netlink
//! publication, and the slow-path packet pipeline with hook points.
//!
//! [`Kernel::receive`] models what happens between a frame arriving at a
//! NIC and leaving the host: driver receive → **XDP hook** → `sk_buff`
//! allocation → **TC ingress hook** → bridge / ARP / IPv4 processing with
//! netfilter, routing, neighbor resolution — every stage charging its
//! calibrated cost. The XDP and TC slots are where `linuxfp-ebpf`
//! programs (and therefore LinuxFP fast paths) attach; a verdict of
//! `Pass` falls through to the very same slow path, which is what makes
//! the acceleration transparent.

use crate::bridge::{Bridge, BridgeDecision};
use crate::conntrack::{Conntrack, NatTuple};
use crate::device::{DeviceKind, IfIndex, NetDevice};
use crate::error::NetError;
use crate::fib::{Fib, Route, RouteScope};
use crate::nat::{Nat, NatChain, NatCtx, NatLookupOutcome, NatRule, PostOutcome};
use crate::neigh::NeighTable;
use crate::netfilter::{ChainHook, IptRule, Netfilter, NfVerdict, PacketMeta};
use crate::netlink::{LinkInfo, NetlinkBus, NetlinkMessage, NlGroup, RouteInfo, SubscriberId};
use linuxfp_packet::arp::{ArpOp, ArpPacket};
use linuxfp_packet::builder;
use linuxfp_packet::icmp::{IcmpHeader, IcmpType};
use linuxfp_packet::ipv4::{IpProto, Ipv4Header, Prefix};
use linuxfp_packet::udp::UdpHeader;
use linuxfp_packet::{EtherType, EthernetFrame, MacAddr, Packet};
use linuxfp_sim::{CostModel, CostTracker, Nanos};
use linuxfp_telemetry::{Counter, Registry};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::Ipv4Addr;
use std::str::FromStr;
use std::sync::Arc;

/// The destination MAC of 802.1D BPDUs.
pub const BPDU_MAC: MacAddr = MacAddr::new([0x01, 0x80, 0xC2, 0x00, 0x00, 0x00]);

/// An interface address that preserves the exact host part (unlike
/// [`Prefix`], which masks it).
///
/// # Example
///
/// ```
/// use linuxfp_netstack::stack::IfAddr;
///
/// let a: IfAddr = "10.0.1.1/24".parse().unwrap();
/// assert_eq!(a.addr.octets()[3], 1);
/// assert_eq!(a.prefix_len, 24);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IfAddr {
    /// The exact address.
    pub addr: Ipv4Addr,
    /// The prefix length of the connected subnet.
    pub prefix_len: u8,
}

impl IfAddr {
    /// Creates an interface address.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len > 32`.
    pub fn new(addr: Ipv4Addr, prefix_len: u8) -> Self {
        assert!(prefix_len <= 32, "prefix length {prefix_len} > 32");
        IfAddr { addr, prefix_len }
    }

    /// The connected subnet this address implies.
    pub fn subnet(&self) -> Prefix {
        Prefix::new(self.addr, self.prefix_len)
    }
}

impl FromStr for IfAddr {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| NetError::Invalid(format!("address needs /len: {s}")))?;
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|_| NetError::Invalid(format!("bad address: {s}")))?;
        let len: u8 = len
            .parse()
            .map_err(|_| NetError::Invalid(format!("bad prefix length: {s}")))?;
        if len > 32 {
            return Err(NetError::Invalid(format!("prefix length > 32: {s}")));
        }
        Ok(IfAddr::new(addr, len))
    }
}

/// Verdict returned by an attached hook program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookVerdict {
    /// Continue into the rest of the stack (`XDP_PASS` / `TC_ACT_OK`).
    Pass,
    /// Discard the packet (`XDP_DROP` / `TC_ACT_SHOT`).
    Drop,
    /// Forward out another interface (`XDP_REDIRECT` / `bpf_redirect`).
    Redirect(IfIndex),
    /// The frame was consumed into a user-space AF_XDP socket
    /// (`XDP_REDIRECT` into an XSKMAP).
    DeliverUser,
}

/// The signature of an attached hook program. The program receives the
/// kernel itself so that helper calls can read and update kernel state —
/// the unified-state design of the paper.
pub type HookFn =
    Arc<dyn Fn(&mut Kernel, &mut Packet, &mut CostTracker) -> HookVerdict + Send + Sync>;

/// Externally visible result of processing a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// The frame left the host through a physical NIC.
    Transmit {
        /// Egress device.
        dev: IfIndex,
        /// The frame as transmitted.
        frame: Vec<u8>,
    },
    /// The frame was delivered to the local socket layer.
    Deliver {
        /// Device the packet was addressed through.
        dev: IfIndex,
        /// The delivered frame.
        frame: Vec<u8>,
    },
    /// The frame was dropped.
    Drop {
        /// Why.
        reason: &'static str,
    },
}

/// Result of [`Kernel::receive`]: observable effects plus the virtual time
/// charged, broken down by stage.
#[derive(Debug, Clone, Default)]
pub struct RxOutcome {
    /// What happened to the packet (and any packets it triggered, e.g.
    /// ARP requests or flooded copies).
    pub effects: Vec<Effect>,
    /// Cost of all processing performed.
    pub cost: CostTracker,
}

impl RxOutcome {
    /// Frames transmitted out physical NICs, as `(dev, frame)` pairs.
    pub fn transmissions(&self) -> Vec<(IfIndex, &[u8])> {
        self.effects
            .iter()
            .filter_map(|e| match e {
                Effect::Transmit { dev, frame } => Some((*dev, frame.as_slice())),
                _ => None,
            })
            .collect()
    }

    /// Frames delivered locally.
    pub fn deliveries(&self) -> Vec<(IfIndex, &[u8])> {
        self.effects
            .iter()
            .filter_map(|e| match e {
                Effect::Deliver { dev, frame } => Some((*dev, frame.as_slice())),
                _ => None,
            })
            .collect()
    }

    /// Drop reasons recorded.
    pub fn drops(&self) -> Vec<&'static str> {
        self.effects
            .iter()
            .filter_map(|e| match e {
                Effect::Drop { reason } => Some(*reason),
                _ => None,
            })
            .collect()
    }
}

/// Per-device traffic counters (the `ip -s link` surface).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DevCounters {
    /// Packets received.
    pub rx_packets: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Packets transmitted.
    pub tx_packets: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
}

/// What one housekeeping pass collected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HousekeepingReport {
    /// Aged-out bridge FDB entries removed.
    pub fdb_expired: usize,
    /// Expired conntrack entries removed.
    pub conntrack_expired: usize,
    /// Expired neighbor entries removed.
    pub neigh_expired: usize,
    /// Expired NAT binding entries removed (per direction).
    pub nat_expired: usize,
}

/// Outcome of the `bpf_fdb_lookup` helper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdbLookupOutcome {
    /// Destination known: forward out this port.
    Hit(IfIndex),
    /// The source is not (or no longer) in the FDB, or the ingress port
    /// is not forwarding: the packet must take the slow path, which
    /// learns / applies STP (paper Table I: FDB management is slow-path
    /// work).
    SrcUnknown,
    /// Source known (and refreshed); the destination missed — flooding
    /// is slow-path work, but L3-destined frames may continue.
    DstMiss,
}

/// Result of the combined FIB + neighbor lookup exposed to fast paths as
/// `bpf_fib_lookup`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FibFastResult {
    /// Egress interface.
    pub ifindex: IfIndex,
    /// Source MAC to write (the egress interface's address).
    pub src_mac: MacAddr,
    /// Destination MAC to write (the next hop's address).
    pub dst_mac: MacAddr,
}

/// The simulated kernel.
/// Cached counter handles for the kernel's slow-path telemetry: resolved
/// once in [`Kernel::set_telemetry`] so the per-packet cost is a relaxed
/// atomic increment. Counters are real host atomics and charge no
/// virtual time — observability must not perturb the calibrated costs.
#[derive(Debug, Clone)]
struct StackTelemetry {
    registry: Registry,
    packets_injected: Counter,
    slow_bridge: Counter,
    slow_ip: Counter,
    slow_arp: Counter,
    slow_local: Counter,
    slow_netfilter: Counter,
    slow_ipvs: Counter,
    slow_nat: Counter,
}

impl StackTelemetry {
    fn new(registry: Registry) -> Self {
        registry.describe(
            "linuxfp_packets_injected_total",
            "Frames injected into the kernel from outside (one per Kernel::receive)",
        );
        registry.describe(
            "linuxfp_slowpath_packets_total",
            "Slow-path packet visits per kernel subsystem",
        );
        registry.describe("linuxfp_drops_total", "Packets dropped, by reason");
        registry.describe(
            "linuxfp_subsystem_ops_total",
            "Subsystem operations (fast-path helpers and slow path alike)",
        );
        registry.describe(
            "linuxfp_nat_translations_total",
            "Forward-direction packets translated by a NAT binding (both paths)",
        );
        registry.describe(
            "linuxfp_nat_reply_hits_total",
            "Reply-direction packets un-translated by a NAT binding (both paths)",
        );
        registry.describe(
            "linuxfp_nat_port_exhaustion_total",
            "Fresh masquerade flows dropped because the port range was exhausted",
        );
        registry.describe(
            "linuxfp_conntrack_evictions_total",
            "Conntrack entries evicted because the table was at capacity",
        );
        let slow = |subsystem: &str| {
            registry.counter(
                "linuxfp_slowpath_packets_total",
                &[("subsystem", subsystem)],
            )
        };
        StackTelemetry {
            packets_injected: registry.counter("linuxfp_packets_injected_total", &[]),
            slow_bridge: slow("bridge"),
            slow_ip: slow("ip"),
            slow_arp: slow("arp"),
            slow_local: slow("local"),
            slow_netfilter: slow("netfilter"),
            slow_ipvs: slow("ipvs"),
            slow_nat: slow("nat"),
            registry,
        }
    }
}

pub struct Kernel {
    cost: Arc<CostModel>,
    now: Nanos,
    devices: BTreeMap<IfIndex, NetDevice>,
    names: HashMap<String, IfIndex>,
    next_ifindex: u32,
    /// The routing table (public: it *is* the shared state).
    pub fib: Fib,
    /// The neighbor table.
    pub neigh: NeighTable,
    bridges: BTreeMap<IfIndex, Bridge>,
    /// The netfilter subsystem.
    pub netfilter: Netfilter,
    /// The conntrack table.
    pub conntrack: Conntrack,
    /// The ipvs load-balancing subsystem.
    pub ipvs: crate::ipvs::Ipvs,
    /// The iptables `nat` table.
    pub nat: Nat,
    /// Last coarse-interval conntrack/NAT GC run from the packet path.
    last_ct_gc: Nanos,
    /// Whether forwarded traffic is connection-tracked (Kubernetes-style
    /// hosts enable this; plain routers usually do not).
    pub conntrack_forward: bool,
    sysctls: BTreeMap<String, i64>,
    netlink: NetlinkBus,
    xdp_hooks: HashMap<IfIndex, HookFn>,
    tc_hooks: HashMap<IfIndex, HookFn>,
    pending_arp: HashMap<Ipv4Addr, Vec<(IfIndex, Vec<u8>)>>,
    vxlan_fdb: HashMap<IfIndex, HashMap<MacAddr, Ipv4Addr>>,
    vxlan_defaults: HashMap<IfIndex, Vec<Ipv4Addr>>,
    /// Per-reason drop counters.
    pub drop_counts: HashMap<&'static str, u64>,
    counters: HashMap<IfIndex, DevCounters>,
    /// BPDUs consumed by STP processing.
    pub bpdus_processed: u64,
    telemetry: Option<StackTelemetry>,
    seed: u64,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("devices", &self.devices.len())
            .field("routes", &self.fib.len())
            .field("bridges", &self.bridges.len())
            .field("now", &self.now)
            .finish()
    }
}

impl Kernel {
    /// Creates a kernel with no devices. `seed` namespaces generated MAC
    /// addresses so multi-host topologies don't collide.
    pub fn new(seed: u64) -> Self {
        let mut sysctls = BTreeMap::new();
        sysctls.insert("net.ipv4.ip_forward".to_string(), 0);
        sysctls.insert("net.bridge.bridge-nf-call-iptables".to_string(), 0);
        Kernel {
            cost: Arc::new(CostModel::calibrated()),
            now: Nanos::ZERO,
            devices: BTreeMap::new(),
            names: HashMap::new(),
            next_ifindex: 1,
            fib: Fib::new(),
            neigh: NeighTable::new(),
            bridges: BTreeMap::new(),
            netfilter: Netfilter::new(),
            conntrack: Conntrack::new(),
            ipvs: crate::ipvs::Ipvs::new(),
            nat: Nat::new(),
            last_ct_gc: Nanos::ZERO,
            conntrack_forward: false,
            sysctls,
            netlink: NetlinkBus::new(),
            xdp_hooks: HashMap::new(),
            tc_hooks: HashMap::new(),
            pending_arp: HashMap::new(),
            vxlan_fdb: HashMap::new(),
            vxlan_defaults: HashMap::new(),
            drop_counts: HashMap::new(),
            counters: HashMap::new(),
            bpdus_processed: 0,
            telemetry: None,
            seed,
        }
    }

    /// Enables slow-path telemetry: injected-packet, per-subsystem and
    /// per-reason drop counters land in `registry`, and the FIB,
    /// netfilter, bridge and ipvs subsystems count their operations. The
    /// counters are host atomics with no virtual-time charge.
    pub fn set_telemetry(&mut self, registry: Registry) {
        let t = StackTelemetry::new(registry);
        let ops = |subsystem: &str| {
            t.registry
                .counter("linuxfp_subsystem_ops_total", &[("subsystem", subsystem)])
        };
        self.fib.set_lookup_counter(ops("fib"));
        self.netfilter.set_evaluation_counter(ops("netfilter"));
        self.ipvs.set_selection_counter(ops("ipvs"));
        self.nat
            .set_translation_counter(t.registry.counter("linuxfp_nat_translations_total", &[]));
        self.nat
            .set_reply_counter(t.registry.counter("linuxfp_nat_reply_hits_total", &[]));
        self.nat
            .set_exhaustion_counter(t.registry.counter("linuxfp_nat_port_exhaustion_total", &[]));
        self.conntrack
            .set_eviction_counter(t.registry.counter("linuxfp_conntrack_evictions_total", &[]));
        for bridge in self.bridges.values_mut() {
            bridge.set_decision_counter(ops("bridge"));
        }
        self.telemetry = Some(t);
    }

    /// The telemetry registry, if [`Kernel::set_telemetry`] was called.
    pub fn telemetry(&self) -> Option<&Registry> {
        self.telemetry.as_ref().map(|t| &t.registry)
    }

    /// Replaces the cost model (for ablation experiments).
    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.cost = Arc::new(cost);
    }

    /// The active cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Traffic counters for a device (zeroes for unknown devices).
    pub fn dev_counters(&self, dev: IfIndex) -> DevCounters {
        self.counters.get(&dev).copied().unwrap_or_default()
    }

    /// Runs the periodic slow-path housekeeping Linux timers perform:
    /// FDB aging, conntrack expiry, neighbor GC (paper Table I's
    /// "manage FDB (aging)" column).
    pub fn run_housekeeping(&mut self) -> HousekeepingReport {
        let now = self.now;
        let mut report = HousekeepingReport::default();
        for bridge in self.bridges.values_mut() {
            report.fdb_expired += bridge.fdb_gc(now);
        }
        report.conntrack_expired = self.conntrack.gc(now);
        report.nat_expired = self.conntrack.nat_gc(now);
        for port in self.conntrack.take_freed_nat_ports() {
            self.nat.release_port(port);
        }
        report.neigh_expired = self.neigh.gc(now);
        report
    }

    /// Advances virtual time (drives FDB/neighbor/conntrack aging).
    pub fn advance(&mut self, delta: Nanos) {
        self.now += delta;
    }

    // ------------------------------------------------------------------
    // Device configuration (the `ip link` / `brctl` surface)
    // ------------------------------------------------------------------

    fn alloc_index(&mut self) -> IfIndex {
        let idx = IfIndex(self.next_ifindex);
        self.next_ifindex += 1;
        idx
    }

    fn gen_mac(&self, index: IfIndex) -> MacAddr {
        MacAddr::from_index(self.seed.wrapping_mul(0x10000) + u64::from(index.as_u32()))
    }

    fn register(&mut self, dev: NetDevice) -> IfIndex {
        let idx = dev.index;
        self.names.insert(dev.name.clone(), idx);
        self.devices.insert(idx, dev);
        let info = self.link_info(idx).expect("just inserted");
        self.netlink.publish(NetlinkMessage::NewLink(info));
        idx
    }

    fn ensure_name_free(&self, name: &str) -> Result<(), NetError> {
        if self.names.contains_key(name) {
            Err(NetError::DeviceExists(name.to_string()))
        } else {
            Ok(())
        }
    }

    /// Adds a physical NIC.
    ///
    /// # Errors
    ///
    /// Fails if the name is taken.
    pub fn add_physical(&mut self, name: &str) -> Result<IfIndex, NetError> {
        self.ensure_name_free(name)?;
        let idx = self.alloc_index();
        let mac = self.gen_mac(idx);
        Ok(self.register(NetDevice::new(idx, name, DeviceKind::Physical, mac)))
    }

    /// Adds a veth pair (`ip link add <a> type veth peer name <b>`).
    ///
    /// # Errors
    ///
    /// Fails if either name is taken.
    pub fn add_veth_pair(&mut self, a: &str, b: &str) -> Result<(IfIndex, IfIndex), NetError> {
        self.ensure_name_free(a)?;
        self.ensure_name_free(b)?;
        if a == b {
            return Err(NetError::Invalid("veth ends need distinct names".into()));
        }
        let ia = self.alloc_index();
        let ib = self.alloc_index();
        let mac_a = self.gen_mac(ia);
        let mac_b = self.gen_mac(ib);
        self.register(NetDevice::new(ia, a, DeviceKind::Veth { peer: ib }, mac_a));
        self.register(NetDevice::new(ib, b, DeviceKind::Veth { peer: ia }, mac_b));
        Ok((ia, ib))
    }

    /// Adds a bridge (`brctl addbr`).
    ///
    /// # Errors
    ///
    /// Fails if the name is taken.
    pub fn add_bridge(&mut self, name: &str) -> Result<IfIndex, NetError> {
        self.ensure_name_free(name)?;
        let idx = self.alloc_index();
        let mac = self.gen_mac(idx);
        let mut bridge = Bridge::new(idx, mac);
        if let Some(t) = &self.telemetry {
            bridge.set_decision_counter(
                t.registry
                    .counter("linuxfp_subsystem_ops_total", &[("subsystem", "bridge")]),
            );
        }
        self.bridges.insert(idx, bridge);
        Ok(self.register(NetDevice::new(idx, name, DeviceKind::Bridge, mac)))
    }

    /// Adds a VXLAN device (`ip link add <name> type vxlan id <vni> ...`).
    ///
    /// # Errors
    ///
    /// Fails if the name is taken.
    pub fn add_vxlan(
        &mut self,
        name: &str,
        vni: u32,
        local: Ipv4Addr,
        port: u16,
    ) -> Result<IfIndex, NetError> {
        self.ensure_name_free(name)?;
        let idx = self.alloc_index();
        let mac = self.gen_mac(idx);
        self.vxlan_fdb.insert(idx, HashMap::new());
        self.vxlan_defaults.insert(idx, Vec::new());
        Ok(self.register(NetDevice::new(
            idx,
            name,
            DeviceKind::Vxlan { vni, local, port },
            mac,
        )))
    }

    /// Adds an FDB entry mapping a remote MAC to its VTEP
    /// (`bridge fdb append <mac> dev <vxlan> dst <vtep>`).
    ///
    /// # Errors
    ///
    /// Fails if the device is not a VXLAN device.
    pub fn vxlan_fdb_add(
        &mut self,
        dev: IfIndex,
        mac: MacAddr,
        vtep: Ipv4Addr,
    ) -> Result<(), NetError> {
        let fdb = self
            .vxlan_fdb
            .get_mut(&dev)
            .ok_or_else(|| NetError::Invalid(format!("{dev} is not a vxlan device")))?;
        fdb.insert(mac, vtep);
        Ok(())
    }

    /// Registers a default flood target for unknown/broadcast inner MACs.
    ///
    /// # Errors
    ///
    /// Fails if the device is not a VXLAN device.
    pub fn vxlan_add_default_remote(
        &mut self,
        dev: IfIndex,
        vtep: Ipv4Addr,
    ) -> Result<(), NetError> {
        let defaults = self
            .vxlan_defaults
            .get_mut(&dev)
            .ok_or_else(|| NetError::Invalid(format!("{dev} is not a vxlan device")))?;
        if !defaults.contains(&vtep) {
            defaults.push(vtep);
        }
        Ok(())
    }

    /// Enslaves `port` to `bridge` (`brctl addif`).
    ///
    /// # Errors
    ///
    /// Fails when either device is missing, `bridge` is not a bridge, or
    /// the port is a bridge itself.
    pub fn brctl_addif(&mut self, bridge: IfIndex, port: IfIndex) -> Result<(), NetError> {
        if !self.bridges.contains_key(&bridge) {
            return Err(NetError::Invalid(format!("{bridge} is not a bridge")));
        }
        if self.bridges.contains_key(&port) {
            return Err(NetError::Invalid("cannot enslave a bridge".into()));
        }
        let dev = self
            .devices
            .get_mut(&port)
            .ok_or_else(|| NetError::NoSuchDevice(port.to_string()))?;
        dev.master = Some(bridge);
        self.bridges
            .get_mut(&bridge)
            .expect("checked")
            .add_port(port);
        let info = self.link_info(port).expect("exists");
        self.netlink.publish(NetlinkMessage::NewLink(info));
        Ok(())
    }

    /// Removes `port` from `bridge` (`brctl delif`).
    ///
    /// # Errors
    ///
    /// Fails when the devices are missing or not related.
    pub fn brctl_delif(&mut self, bridge: IfIndex, port: IfIndex) -> Result<(), NetError> {
        let br = self
            .bridges
            .get_mut(&bridge)
            .ok_or_else(|| NetError::Invalid(format!("{bridge} is not a bridge")))?;
        if !br.remove_port(port) {
            return Err(NetError::NotFound(format!("{port} not in {bridge}")));
        }
        if let Some(dev) = self.devices.get_mut(&port) {
            dev.master = None;
        }
        let info = self.link_info(port).expect("exists");
        self.netlink.publish(NetlinkMessage::NewLink(info));
        Ok(())
    }

    /// Enables or disables STP on a bridge (`brctl stp <br> on|off`).
    ///
    /// # Errors
    ///
    /// Fails if `bridge` is not a bridge.
    pub fn bridge_set_stp(&mut self, bridge: IfIndex, on: bool) -> Result<(), NetError> {
        let br = self
            .bridges
            .get_mut(&bridge)
            .ok_or_else(|| NetError::Invalid(format!("{bridge} is not a bridge")))?;
        br.stp_enabled = on;
        let info = self.link_info(bridge).expect("exists");
        self.netlink.publish(NetlinkMessage::NewLink(info));
        Ok(())
    }

    /// Enables or disables VLAN filtering on a bridge.
    ///
    /// # Errors
    ///
    /// Fails if `bridge` is not a bridge.
    pub fn bridge_set_vlan_filtering(&mut self, bridge: IfIndex, on: bool) -> Result<(), NetError> {
        let br = self
            .bridges
            .get_mut(&bridge)
            .ok_or_else(|| NetError::Invalid(format!("{bridge} is not a bridge")))?;
        br.vlan_filtering = on;
        let info = self.link_info(bridge).expect("exists");
        self.netlink.publish(NetlinkMessage::NewLink(info));
        Ok(())
    }

    /// Direct access to a bridge (for port VLAN/STP state configuration
    /// and FDB inspection).
    pub fn bridge_mut(&mut self, bridge: IfIndex) -> Option<&mut Bridge> {
        self.bridges.get_mut(&bridge)
    }

    /// Read access to a bridge.
    pub fn bridge(&self, bridge: IfIndex) -> Option<&Bridge> {
        self.bridges.get(&bridge)
    }

    /// Indexes of all bridges.
    pub fn bridge_indices(&self) -> Vec<IfIndex> {
        self.bridges.keys().copied().collect()
    }

    /// Sets a link up (`ip link set <dev> up`).
    ///
    /// # Errors
    ///
    /// Fails if the device does not exist.
    pub fn ip_link_set_up(&mut self, dev: IfIndex) -> Result<(), NetError> {
        self.set_link_state(dev, true)
    }

    /// Marks a device as an endpoint (terminating in an external stack,
    /// e.g. a pod network namespace).
    ///
    /// # Errors
    ///
    /// Fails if the device does not exist.
    pub fn set_endpoint(&mut self, dev: IfIndex, endpoint: bool) -> Result<(), NetError> {
        let d = self
            .devices
            .get_mut(&dev)
            .ok_or_else(|| NetError::NoSuchDevice(dev.to_string()))?;
        d.endpoint = endpoint;
        Ok(())
    }

    /// Sets a link down.
    ///
    /// # Errors
    ///
    /// Fails if the device does not exist.
    pub fn ip_link_set_down(&mut self, dev: IfIndex) -> Result<(), NetError> {
        self.set_link_state(dev, false)
    }

    fn set_link_state(&mut self, dev: IfIndex, up: bool) -> Result<(), NetError> {
        let d = self
            .devices
            .get_mut(&dev)
            .ok_or_else(|| NetError::NoSuchDevice(dev.to_string()))?;
        d.up = up;
        let info = self.link_info(dev).expect("exists");
        self.netlink.publish(NetlinkMessage::NewLink(info));
        Ok(())
    }

    /// Adds an address (`ip addr add <addr>/<len> dev <dev>`); also
    /// installs the connected route, as Linux does.
    ///
    /// # Errors
    ///
    /// Fails if the device does not exist or already has the address.
    pub fn ip_addr_add(&mut self, dev: IfIndex, addr: IfAddr) -> Result<(), NetError> {
        let d = self
            .devices
            .get_mut(&dev)
            .ok_or_else(|| NetError::NoSuchDevice(dev.to_string()))?;
        if d.has_addr(addr.addr) {
            return Err(NetError::AlreadyExists(addr.addr.to_string()));
        }
        d.addrs.push((addr.addr, addr.prefix_len));
        self.netlink.publish(NetlinkMessage::NewAddr {
            index: dev,
            addr: addr.addr,
            prefix_len: addr.prefix_len,
        });
        if addr.prefix_len < 32 {
            self.install_route(Route::connected(addr.subnet(), dev));
        }
        let info = self.link_info(dev).expect("exists");
        self.netlink.publish(NetlinkMessage::NewLink(info));
        Ok(())
    }

    /// Removes an address and its connected route.
    ///
    /// # Errors
    ///
    /// Fails if the device or address is missing.
    pub fn ip_addr_del(&mut self, dev: IfIndex, addr: IfAddr) -> Result<(), NetError> {
        let d = self
            .devices
            .get_mut(&dev)
            .ok_or_else(|| NetError::NoSuchDevice(dev.to_string()))?;
        let before = d.addrs.len();
        d.addrs
            .retain(|(a, l)| !(*a == addr.addr && *l == addr.prefix_len));
        if d.addrs.len() == before {
            return Err(NetError::NotFound(addr.addr.to_string()));
        }
        self.fib.remove(&addr.subnet(), Some(dev));
        self.netlink.publish(NetlinkMessage::DelAddr {
            index: dev,
            addr: addr.addr,
        });
        self.netlink.publish(NetlinkMessage::DelRoute {
            prefix: addr.subnet(),
        });
        Ok(())
    }

    fn install_route(&mut self, route: Route) {
        self.fib.insert(route);
        self.netlink.publish(NetlinkMessage::NewRoute(RouteInfo {
            prefix: route.prefix,
            via: route.via,
            dev: route.dev,
            metric: route.metric,
        }));
    }

    /// Adds a route (`ip route add <prefix> [via <gw>] [dev <dev>]`).
    /// When `dev` is omitted it is resolved from the gateway's connected
    /// subnet.
    ///
    /// # Errors
    ///
    /// Fails when neither `via` nor `dev` determine an egress interface.
    pub fn ip_route_add(
        &mut self,
        prefix: Prefix,
        via: Option<Ipv4Addr>,
        dev: Option<IfIndex>,
    ) -> Result<(), NetError> {
        let egress = match (dev, via) {
            (Some(d), _) => d,
            (None, Some(gw)) => self.device_for_subnet(gw).ok_or_else(|| {
                NetError::Invalid(format!("no connected subnet for gateway {gw}"))
            })?,
            (None, None) => {
                return Err(NetError::Invalid("route needs via or dev".into()));
            }
        };
        if !self.devices.contains_key(&egress) {
            return Err(NetError::NoSuchDevice(egress.to_string()));
        }
        let route = match via {
            Some(gw) => Route::via_gateway(prefix, gw, egress),
            None => Route::connected(prefix, egress),
        };
        self.install_route(route);
        Ok(())
    }

    /// Deletes routes for `prefix` (optionally restricted to `dev`).
    ///
    /// # Errors
    ///
    /// Fails if no route matched.
    pub fn ip_route_del(&mut self, prefix: Prefix, dev: Option<IfIndex>) -> Result<(), NetError> {
        if self.fib.remove(&prefix, dev) == 0 {
            return Err(NetError::NotFound(prefix.to_string()));
        }
        self.netlink.publish(NetlinkMessage::DelRoute { prefix });
        Ok(())
    }

    /// The device whose connected subnet contains `addr`.
    pub fn device_for_subnet(&self, addr: Ipv4Addr) -> Option<IfIndex> {
        self.devices
            .values()
            .find(|d| d.connected_prefixes().iter().any(|p| p.contains(addr)))
            .map(|d| d.index)
    }

    /// Sets a sysctl (`sysctl -w <name>=<value>`).
    ///
    /// # Errors
    ///
    /// Fails for unknown sysctls.
    pub fn sysctl_set(&mut self, name: &str, value: i64) -> Result<(), NetError> {
        if !self.sysctls.contains_key(name) {
            return Err(NetError::NotFound(name.to_string()));
        }
        self.sysctls.insert(name.to_string(), value);
        self.netlink.publish(NetlinkMessage::SysctlChanged {
            name: name.to_string(),
            value,
        });
        Ok(())
    }

    /// Reads a sysctl.
    pub fn sysctl_get(&self, name: &str) -> Option<i64> {
        self.sysctls.get(name).copied()
    }

    /// Whether IPv4 forwarding is enabled.
    pub fn ip_forward_enabled(&self) -> bool {
        self.sysctl_get("net.ipv4.ip_forward") == Some(1)
    }

    /// Whether bridged IPv4 traffic traverses iptables (the
    /// `br_netfilter` behavior Kubernetes requires).
    pub fn bridge_nf_enabled(&self) -> bool {
        self.sysctl_get("net.bridge.bridge-nf-call-iptables") == Some(1)
    }

    // ------------------------------------------------------------------
    // iptables / ipset surface
    // ------------------------------------------------------------------

    /// Appends a rule (`iptables -A <CHAIN> ...`).
    pub fn iptables_append(&mut self, hook: ChainHook, rule: IptRule) {
        self.netfilter.append(hook, rule);
        self.publish_nf_changed();
    }

    /// Flushes a chain (`iptables -F <CHAIN>`).
    pub fn iptables_flush(&mut self, hook: ChainHook) {
        self.netfilter.flush(hook);
        self.publish_nf_changed();
    }

    /// Creates an ipset.
    pub fn ipset_create(&mut self, name: &str, set: crate::netfilter::IpSet) -> bool {
        let ok = self.netfilter.set_create(name, set);
        if ok {
            self.publish_nf_changed();
        }
        ok
    }

    /// Adds a member to an ipset.
    pub fn ipset_add(&mut self, name: &str, prefix: Prefix) -> bool {
        let ok = self.netfilter.set_add(name, prefix);
        if ok {
            self.publish_nf_changed();
        }
        ok
    }

    /// Adds a virtual service (`ipvsadm -A -u <vip>:<port> -s <sched>`).
    pub fn ipvsadm_add_service(
        &mut self,
        vip: Ipv4Addr,
        port: u16,
        proto: IpProto,
        scheduler: crate::ipvs::Scheduler,
    ) -> bool {
        let ok = self.ipvs.add_service(vip, port, proto, scheduler);
        if ok {
            let generation = self.ipvs.generation;
            self.netlink
                .publish(NetlinkMessage::IpvsChanged { generation });
        }
        ok
    }

    /// Adds a backend (`ipvsadm -a -u <vip>:<port> -r <backend>`).
    pub fn ipvsadm_add_backend(
        &mut self,
        vip: Ipv4Addr,
        port: u16,
        proto: IpProto,
        backend: Ipv4Addr,
        backend_port: u16,
    ) -> bool {
        let ok = self
            .ipvs
            .add_backend(vip, port, proto, backend, backend_port);
        if ok {
            let generation = self.ipvs.generation;
            self.netlink
                .publish(NetlinkMessage::IpvsChanged { generation });
        }
        ok
    }

    /// Appends a NAT rule (`iptables -t nat -A <CHAIN> ...`); returns
    /// `false` when the target is illegal for the chain.
    pub fn iptables_nat_append(&mut self, chain: NatChain, rule: NatRule) -> bool {
        let ok = self.nat.append(chain, rule);
        if ok {
            self.publish_nat_changed();
        }
        ok
    }

    /// Flushes the `nat` table (`iptables -t nat -F`). Established
    /// bindings keep translating their flows, as in Linux.
    pub fn iptables_nat_flush(&mut self) {
        self.nat.flush();
        self.publish_nat_changed();
    }

    fn publish_nat_changed(&mut self) {
        let generation = self.nat.generation;
        self.netlink
            .publish(NetlinkMessage::NatChanged { generation });
    }

    fn publish_nf_changed(&mut self) {
        let generation = self.netfilter.generation;
        self.netlink
            .publish(NetlinkMessage::NetfilterChanged { generation });
    }

    // ------------------------------------------------------------------
    // Netlink subscription & dumps
    // ------------------------------------------------------------------

    /// Joins netlink multicast groups.
    pub fn netlink_subscribe(&mut self, groups: &[NlGroup]) -> SubscriberId {
        self.netlink.subscribe(groups)
    }

    /// Drains pending notifications for a subscriber.
    pub fn netlink_poll(&mut self, id: SubscriberId) -> Vec<NetlinkMessage> {
        self.netlink.poll(id)
    }

    fn link_info(&self, dev: IfIndex) -> Option<LinkInfo> {
        let d = self.devices.get(&dev)?;
        let bridge = self.bridges.get(&dev);
        Some(LinkInfo {
            index: d.index,
            name: d.name.clone(),
            kind: d.kind.kind_name().to_string(),
            mac: d.mac,
            up: d.up,
            master: d.master,
            addrs: d.addrs.clone(),
            stp_enabled: bridge.map(|b| b.stp_enabled),
            vlan_filtering: bridge.map(|b| b.vlan_filtering),
        })
    }

    /// Dumps all links (`RTM_GETLINK`).
    pub fn dump_links(&self) -> Vec<LinkInfo> {
        self.devices
            .keys()
            .filter_map(|i| self.link_info(*i))
            .collect()
    }

    /// Dumps all neighbor entries (`RTM_GETNEIGH`).
    pub fn dump_neigh(&self) -> Vec<(Ipv4Addr, crate::neigh::NeighEntry)> {
        self.neigh.entries()
    }

    /// Dumps all routes (`RTM_GETROUTE`).
    pub fn dump_routes(&self) -> Vec<RouteInfo> {
        self.fib
            .routes()
            .into_iter()
            .map(|r| RouteInfo {
                prefix: r.prefix,
                via: r.via,
                dev: r.dev,
                metric: r.metric,
            })
            .collect()
    }

    /// Looks up a device by name.
    pub fn ifindex(&self, name: &str) -> Option<IfIndex> {
        self.names.get(name).copied()
    }

    /// A device by index.
    pub fn device(&self, dev: IfIndex) -> Option<&NetDevice> {
        self.devices.get(&dev)
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    // ------------------------------------------------------------------
    // Hook attachment (XDP / TC)
    // ------------------------------------------------------------------

    /// Attaches an XDP program to a device.
    ///
    /// # Errors
    ///
    /// Fails if the device does not exist.
    pub fn attach_xdp(&mut self, dev: IfIndex, hook: HookFn) -> Result<(), NetError> {
        let d = self
            .devices
            .get_mut(&dev)
            .ok_or_else(|| NetError::NoSuchDevice(dev.to_string()))?;
        d.has_xdp = true;
        self.xdp_hooks.insert(dev, hook);
        Ok(())
    }

    /// Detaches any XDP program from a device.
    pub fn detach_xdp(&mut self, dev: IfIndex) {
        if let Some(d) = self.devices.get_mut(&dev) {
            d.has_xdp = false;
        }
        self.xdp_hooks.remove(&dev);
    }

    /// Attaches a TC ingress program to a device.
    ///
    /// # Errors
    ///
    /// Fails if the device does not exist.
    pub fn attach_tc_ingress(&mut self, dev: IfIndex, hook: HookFn) -> Result<(), NetError> {
        let d = self
            .devices
            .get_mut(&dev)
            .ok_or_else(|| NetError::NoSuchDevice(dev.to_string()))?;
        d.has_tc_ingress = true;
        self.tc_hooks.insert(dev, hook);
        Ok(())
    }

    /// Detaches any TC ingress program from a device.
    pub fn detach_tc_ingress(&mut self, dev: IfIndex) {
        if let Some(d) = self.devices.get_mut(&dev) {
            d.has_tc_ingress = false;
        }
        self.tc_hooks.remove(&dev);
    }

    // ------------------------------------------------------------------
    // Helper facades exposed to fast paths (the paper's kernel helpers)
    // ------------------------------------------------------------------

    /// `bpf_fib_lookup`: combined FIB + neighbor lookup. Returns `None`
    /// when there is no route or the next hop is unresolved — the fast
    /// path then passes the packet to the slow path, which performs ARP.
    pub fn helper_fib_lookup(&mut self, dst: Ipv4Addr) -> Option<FibFastResult> {
        // Locally addressed packets are never fast-path forwarded; the
        // real helper reports RT_LOCAL and the program passes to Linux.
        if self.owns_addr(dst) {
            return None;
        }
        let route = self.fib.lookup(dst).copied()?;
        let next_hop = route.via.unwrap_or(dst);
        let now = self.now;
        let (dst_mac, _) = self.neigh.resolved_mac(next_hop, now)?;
        let egress = self.devices.get(&route.dev)?;
        if !egress.up {
            return None;
        }
        Some(FibFastResult {
            ifindex: route.dev,
            src_mac: egress.mac,
            dst_mac,
        })
    }

    /// `bpf_fdb_lookup` (the paper's new helper): FDB lookup for the
    /// bridge that `ingress_port` belongs to, honoring aging and STP port
    /// state, and refreshing the *source* entry (fast-path FDB update).
    /// Returns the egress port, or `None` on miss / unknown source (the
    /// slow path then learns and floods).
    pub fn helper_fdb_lookup(
        &mut self,
        ingress_port: IfIndex,
        src_mac: MacAddr,
        dst_mac: MacAddr,
        vlan: u16,
    ) -> FdbLookupOutcome {
        let Some(bridge_idx) = self.devices.get(&ingress_port).and_then(|d| d.master) else {
            return FdbLookupOutcome::SrcUnknown;
        };
        let now = self.now;
        let Some(bridge) = self.bridges.get_mut(&bridge_idx) else {
            return FdbLookupOutcome::SrcUnknown;
        };
        // The ingress port must be in the forwarding state: STP is
        // slow-path protocol work, and a blocked port's traffic must
        // reach it (to be dropped there), never be fast-forwarded.
        if bridge.port(ingress_port).map(|p| p.stp_state)
            != Some(crate::bridge::StpState::Forwarding)
        {
            return FdbLookupOutcome::SrcUnknown;
        }
        // The source must already be known (learning is slow-path work);
        // refresh its timestamp so active flows don't age out.
        if bridge.fdb_lookup(src_mac, vlan, now).is_none() {
            return FdbLookupOutcome::SrcUnknown;
        }
        bridge.fdb_learn(src_mac, vlan, ingress_port, now);
        match bridge.fdb_lookup(dst_mac, vlan, now) {
            Some(egress) if egress != ingress_port => FdbLookupOutcome::Hit(egress),
            // A hairpin hit is treated like a miss: the slow path drops.
            _ => FdbLookupOutcome::DstMiss,
        }
    }

    /// `bpf_ipt_lookup` (the paper's new helper): evaluates the FORWARD
    /// chain against packet metadata using the *kernel's* rule table.
    pub fn helper_ipt_lookup(&self, meta: &PacketMeta, tracker: &mut CostTracker) -> NfVerdict {
        self.netfilter.evaluate_with_rule_cost(
            ChainHook::Forward,
            meta,
            &self.cost,
            tracker,
            self.cost.helper_ipt_rule_ns,
        )
    }

    /// `bpf_nat_lookup` (the fifth subsystem's helper): reads the
    /// *kernel's* NAT binding table — never shadow state. A `Hit` tells
    /// the fast path the full translated tuple; a `Miss` means the slow
    /// path must see the packet (rule evaluation, port allocation and
    /// binding creation are slow-path work, like conntrack entry
    /// creation in the paper's split); `NoNat` lets untranslated
    /// traffic keep to the fast path.
    ///
    /// Only UDP is fast-path translated (TCP reports `Miss`), mirroring
    /// the ipvs fast path's protocol split.
    pub fn helper_nat_lookup(
        &mut self,
        src: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        proto: u8,
    ) -> NatLookupOutcome {
        let tuple = NatTuple::new(src, sport, dst, dport, proto);
        if !matches!(proto, 6 | 17) {
            return NatLookupOutcome::NoNat;
        }
        let now = self.now;
        if let Some(hit) = self.conntrack.nat_lookup(&tuple, now) {
            if proto != 17 {
                return NatLookupOutcome::Miss;
            }
            // Count through the same counters as the slow path: the
            // translation happens either way.
            if hit.reply {
                self.nat.note_reply_hit();
            } else {
                self.nat.note_translation();
            }
            return NatLookupOutcome::Hit(hit.xlat);
        }
        if self.nat.could_translate(&tuple) {
            NatLookupOutcome::Miss
        } else {
            NatLookupOutcome::NoNat
        }
    }

    // ------------------------------------------------------------------
    // The data path
    // ------------------------------------------------------------------

    /// Processes a frame received on `dev`, running hooks and the slow
    /// path, returning all externally visible effects and the cost.
    pub fn receive(&mut self, dev: IfIndex, frame: Vec<u8>) -> RxOutcome {
        if let Some(t) = &self.telemetry {
            t.packets_injected.inc();
        }
        // Coarse-interval GC from the packet path: Linux ties conntrack
        // expiry to timers and packet processing; without this, tables
        // only shrink when callers remember to run housekeeping.
        if self.now.saturating_sub(self.last_ct_gc) >= Nanos::from_secs(1) {
            self.last_ct_gc = self.now;
            let now = self.now;
            self.conntrack.gc(now);
            self.conntrack.nat_gc(now);
            for port in self.conntrack.take_freed_nat_ports() {
                self.nat.release_port(port);
            }
        }
        let mut out = RxOutcome::default();
        let mut queue: VecDeque<(IfIndex, Vec<u8>)> = VecDeque::new();
        queue.push_back((dev, frame));
        let mut hops = 0;
        while let Some((dev, frame)) = queue.pop_front() {
            hops += 1;
            if hops > 64 {
                self.drop(&mut out, "forwarding loop");
                break;
            }
            self.receive_one(dev, frame, &mut out, &mut queue);
        }
        out
    }

    fn drop(&mut self, out: &mut RxOutcome, reason: &'static str) {
        if let Some(t) = &self.telemetry {
            // Reasons are a small static set; get-or-create is off the
            // common path (drops only).
            t.registry
                .counter("linuxfp_drops_total", &[("reason", reason)])
                .inc();
        }
        *self.drop_counts.entry(reason).or_insert(0) += 1;
        out.effects.push(Effect::Drop { reason });
    }

    fn receive_one(
        &mut self,
        dev: IfIndex,
        frame: Vec<u8>,
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, Vec<u8>)>,
    ) {
        let Some(device) = self.devices.get(&dev) else {
            self.drop(out, "no such device");
            return;
        };
        if !device.up {
            self.drop(out, "device down");
            return;
        }
        match device.kind {
            DeviceKind::Physical => out.cost.charge("driver_rx", self.cost.driver_rx_ns),
            DeviceKind::Veth { .. } => out.cost.charge("veth_cross", self.cost.veth_cross_ns),
            DeviceKind::Bridge | DeviceKind::Vxlan { .. } => {}
        }
        {
            let c = self.counters.entry(dev).or_default();
            c.rx_packets += 1;
            c.rx_bytes += frame.len() as u64;
        }

        let mut pkt = Packet::new(frame, dev.as_u32());

        // XDP hook: before any sk_buff exists.
        if let Some(hook) = self.xdp_hooks.get(&dev).cloned() {
            out.cost.charge("xdp_entry", self.cost.xdp_entry_ns);
            match hook(self, &mut pkt, &mut out.cost) {
                HookVerdict::Pass => {}
                HookVerdict::Drop => {
                    self.drop(out, "xdp drop");
                    return;
                }
                HookVerdict::Redirect(target) => {
                    self.transmit(target, pkt.data, out, queue);
                    return;
                }
                HookVerdict::DeliverUser => {
                    // Consumed onto an AF_XDP ring: user space owns it
                    // now, without any sk_buff ever existing.
                    out.effects.push(Effect::Deliver {
                        dev,
                        frame: pkt.data,
                    });
                    return;
                }
            }
        }

        // sk_buff allocation: the cost XDP avoids.
        out.cost.charge("skb_alloc", self.cost.skb_alloc_ns);

        // TC ingress hook.
        if let Some(hook) = self.tc_hooks.get(&dev).cloned() {
            out.cost.charge("tc_entry", self.cost.tc_entry_ns);
            match hook(self, &mut pkt, &mut out.cost) {
                HookVerdict::Pass => {}
                HookVerdict::Drop => {
                    self.drop(out, "tc drop");
                    return;
                }
                HookVerdict::Redirect(target) => {
                    self.transmit(target, pkt.data, out, queue);
                    return;
                }
                HookVerdict::DeliverUser => {
                    out.effects.push(Effect::Deliver {
                        dev,
                        frame: pkt.data,
                    });
                    return;
                }
            }
        }

        self.slow_path(dev, pkt.data, out, queue);
    }

    fn slow_path(
        &mut self,
        dev: IfIndex,
        frame: Vec<u8>,
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, Vec<u8>)>,
    ) {
        let Ok(eth) = EthernetFrame::parse(&frame) else {
            self.drop(out, "malformed ethernet");
            return;
        };
        let (master, dev_mac, endpoint) = {
            let device = self.devices.get(&dev).expect("checked in receive_one");
            (device.master, device.mac, device.endpoint)
        };

        // Endpoint devices (pod-side veths) hand frames to an external
        // stack: deliver anything addressed to them (or broadcast).
        if endpoint {
            if eth.dst == dev_mac || eth.dst.is_multicast() {
                out.cost.charge("local_deliver", self.cost.local_deliver_ns);
                out.effects.push(Effect::Deliver { dev, frame });
            } else {
                self.drop(out, "wrong destination mac");
            }
            return;
        }

        // Bridge port: L2 processing first.
        if let Some(bridge_idx) = master {
            self.bridge_input(bridge_idx, dev, eth, frame, out, queue);
            return;
        }

        // Non-promiscuous check for ordinary devices.
        if eth.dst != dev_mac && eth.dst.is_unicast() {
            self.drop(out, "wrong destination mac");
            return;
        }

        self.up_stack(dev, eth, frame, out, queue);
    }

    fn bridge_input(
        &mut self,
        bridge_idx: IfIndex,
        port: IfIndex,
        eth: EthernetFrame,
        frame: Vec<u8>,
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, Vec<u8>)>,
    ) {
        out.cost.charge("bridge_stack", self.cost.bridge_stack_ns);
        if let Some(t) = &self.telemetry {
            t.slow_bridge.inc();
        }

        // STP BPDUs are consumed by slow-path protocol processing.
        if eth.dst == BPDU_MAC {
            let stp_on = self
                .bridges
                .get(&bridge_idx)
                .map(|b| b.stp_enabled)
                .unwrap_or(false);
            if stp_on {
                self.bpdus_processed += 1;
            }
            self.drop(out, "bpdu consumed");
            return;
        }

        let now = self.now;
        let vlan_tag = eth.vlan.map(|t| t.vid);
        let Some(bridge) = self.bridges.get_mut(&bridge_idx) else {
            self.drop(out, "missing bridge");
            return;
        };
        let decision = bridge.decide(port, eth.src, eth.dst, vlan_tag, now);

        // br_netfilter: bridged IPv4 frames about to be forwarded also
        // traverse the iptables FORWARD chain (and conntrack), exactly as
        // Kubernetes hosts configure via bridge-nf-call-iptables.
        if matches!(
            decision,
            BridgeDecision::Forward(_) | BridgeDecision::Flood(_)
        ) && eth.ethertype == EtherType::Ipv4
            && self.bridge_nf_enabled()
        {
            if let Ok(ip) = Ipv4Header::parse(&frame[eth.payload_offset..]) {
                let meta = self.packet_meta(port, &frame, eth.payload_offset, &ip);
                if self.conntrack_forward {
                    out.cost.charge("conntrack", self.cost.conntrack_lookup_ns);
                    let now = self.now;
                    self.conntrack
                        .track(ip.src, meta.sport, ip.dst, meta.dport, ip.proto, now);
                }
                if let Some(t) = &self.telemetry {
                    t.slow_netfilter.inc();
                }
                let verdict =
                    self.netfilter
                        .evaluate(ChainHook::Forward, &meta, &self.cost, &mut out.cost);
                if verdict == NfVerdict::Drop {
                    self.drop(out, "nf forward drop");
                    return;
                }
            }
        }

        match decision {
            BridgeDecision::Forward(egress) => {
                self.transmit(egress, frame, out, queue);
            }
            BridgeDecision::Flood(ports) => {
                for (i, egress) in ports.iter().enumerate() {
                    if i > 0 {
                        out.cost
                            .charge("bridge_flood", self.cost.bridge_flood_per_port_ns);
                    }
                    self.transmit(*egress, frame.clone(), out, queue);
                }
                // Broadcast (e.g. ARP) also goes up the bridge's own stack.
                if eth.dst.is_broadcast() || eth.dst.is_multicast() {
                    self.up_stack(bridge_idx, eth, frame, out, queue);
                }
            }
            BridgeDecision::Local => {
                self.up_stack(bridge_idx, eth, frame, out, queue);
            }
            BridgeDecision::Drop(reason) => {
                self.drop(out, reason);
            }
        }
    }

    fn up_stack(
        &mut self,
        dev: IfIndex,
        eth: EthernetFrame,
        frame: Vec<u8>,
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, Vec<u8>)>,
    ) {
        match eth.ethertype {
            EtherType::Arp => self.arp_input(dev, &eth, &frame, out, queue),
            EtherType::Ipv4 => self.ip_input(dev, &eth, frame, out, queue),
            _ => self.drop(out, "unhandled ethertype"),
        }
    }

    fn arp_input(
        &mut self,
        dev: IfIndex,
        eth: &EthernetFrame,
        frame: &[u8],
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, Vec<u8>)>,
    ) {
        if let Some(t) = &self.telemetry {
            t.slow_arp.inc();
        }
        let Ok(arp) = ArpPacket::parse(&frame[eth.payload_offset..]) else {
            self.drop(out, "malformed arp");
            return;
        };
        let device = self.devices.get(&dev).expect("exists");
        let our_mac = device.mac;
        let target_is_ours = device.has_addr(arp.target_ip);

        // Learn the sender (Linux learns from both requests and replies
        // addressed to it).
        if target_is_ours || arp.op == ArpOp::Reply {
            let now = self.now;
            self.neigh.learn(arp.sender_ip, arp.sender_mac, dev, now);
            self.netlink.publish(NetlinkMessage::NewNeigh {
                addr: arp.sender_ip,
                mac: arp.sender_mac,
                dev,
            });
            self.flush_pending_arp(arp.sender_ip, out, queue);
        }

        if arp.op == ArpOp::Request && target_is_ours {
            let reply = arp.reply_to(our_mac);
            let reply_frame = builder::arp_frame(&reply, our_mac, arp.sender_mac);
            self.transmit(dev, reply_frame, out, queue);
        } else {
            out.effects.push(Effect::Drop {
                reason: "arp consumed",
            });
        }
    }

    fn flush_pending_arp(
        &mut self,
        resolved: Ipv4Addr,
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, Vec<u8>)>,
    ) {
        let Some(waiting) = self.pending_arp.remove(&resolved) else {
            return;
        };
        let now = self.now;
        let Some((mac, _)) = self.neigh.resolved_mac(resolved, now) else {
            return;
        };
        for (egress, mut frame) in waiting {
            if let Some(egress_dev) = self.devices.get(&egress) {
                let src = egress_dev.mac;
                EthernetFrame::rewrite_macs(&mut frame, mac, src);
                self.transmit(egress, frame, out, queue);
            }
        }
    }

    fn ip_input(
        &mut self,
        dev: IfIndex,
        eth: &EthernetFrame,
        frame: Vec<u8>,
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, Vec<u8>)>,
    ) {
        out.cost.charge("ip_rcv", self.cost.ip_rcv_ns);
        if let Some(t) = &self.telemetry {
            t.slow_ip.inc();
        }
        let l3 = eth.payload_offset;
        let Ok(ip) = Ipv4Header::parse(&frame[l3..]) else {
            self.drop(out, "malformed ipv4");
            return;
        };
        if !ip.verify_checksum(&frame[l3..]) {
            self.drop(out, "bad ipv4 checksum");
            return;
        }

        let meta = self.packet_meta(dev, &frame, l3, &ip);

        // Conntrack (when enabled for this host).
        if self.conntrack_forward {
            out.cost.charge("conntrack", self.cost.conntrack_lookup_ns);
            let now = self.now;
            self.conntrack
                .track(ip.src, meta.sport, ip.dst, meta.dport, ip.proto, now);
        }

        // PREROUTING.
        if let Some(t) = &self.telemetry {
            t.slow_netfilter.inc();
        }
        let verdict =
            self.netfilter
                .evaluate(ChainHook::Prerouting, &meta, &self.cost, &mut out.cost);
        if verdict == NfVerdict::Drop {
            self.drop(out, "nf prerouting drop");
            return;
        }

        let mut frame = frame;
        let mut ip = ip;
        let mut meta = meta;

        // nat PREROUTING: an established binding or a DNAT rule rewrites
        // the destination before routing; the source half (SNAT /
        // masquerade) is applied at POSTROUTING. Rule evaluation and
        // binding management are slow-path work — the fast path reads
        // the resulting bindings through `bpf_nat_lookup`.
        let mut nat_ctx: Option<NatCtx> = None;
        let nat_active = self.nat.total_rules() > 0 || self.conntrack.nat_len() > 0;
        if nat_active && matches!(ip.proto, IpProto::Udp | IpProto::Tcp) {
            out.cost.charge("nat_lookup", self.cost.conntrack_lookup_ns);
            let now = self.now;
            let tuple = NatTuple::new(ip.src, meta.sport, ip.dst, meta.dport, ip.proto.to_u8());
            nat_ctx = self.nat.prerouting(&mut self.conntrack, tuple, dev, now);
            if let Some(ctx) = &nat_ctx {
                if ctx.xlat.dst != tuple.dst || ctx.xlat.dport != tuple.dport {
                    if let Some(t) = &self.telemetry {
                        t.slow_nat.inc();
                    }
                    linuxfp_packet::rewrite_ipv4(
                        &mut frame,
                        l3,
                        &linuxfp_packet::FieldRewrite {
                            dst: Some(ctx.xlat.dst),
                            dport: Some(ctx.xlat.dport),
                            ..Default::default()
                        },
                    );
                    ip = Ipv4Header::parse(&frame[l3..]).expect("rewritten header valid");
                    meta = self.packet_meta(dev, &frame, l3, &ip);
                }
            }
        }

        // ipvs NAT: traffic to a virtual service is rewritten toward a
        // backend — pinned flows reuse their backend; new flows are
        // scheduled here (slow-path work per paper Table I, row 4).
        if !self.ipvs.is_empty() && matches!(ip.proto, IpProto::Udp | IpProto::Tcp) {
            out.cost.charge("conntrack", self.cost.conntrack_lookup_ns);
            let now = self.now;
            let selected = self.ipvs.select_backend(
                &mut self.conntrack,
                ip.src,
                meta.sport,
                ip.dst,
                meta.dport,
                ip.proto,
                now,
            );
            if let Some((backend_ip, backend_port)) = selected {
                if let Some(t) = &self.telemetry {
                    t.slow_ipvs.inc();
                }
                out.cost.charge("ipvs_sched", self.cost.ipvs_sched_ns);
                Self::ipvs_nat_rewrite(&mut frame, l3, &ip, backend_ip, backend_port);
                ip = Ipv4Header::parse(&frame[l3..]).expect("rewritten header valid");
                meta = self.packet_meta(dev, &frame, l3, &ip);
            }
        }

        // Local delivery?
        let local =
            self.devices.values().any(|d| d.has_addr(ip.dst)) || ip.dst == Ipv4Addr::BROADCAST;
        if local {
            if let Some(t) = &self.telemetry {
                t.slow_netfilter.inc();
            }
            let verdict =
                self.netfilter
                    .evaluate(ChainHook::Input, &meta, &self.cost, &mut out.cost);
            if verdict == NfVerdict::Drop {
                self.drop(out, "nf input drop");
                return;
            }
            self.local_deliver(dev, eth, frame, &ip, out, queue);
            return;
        }

        // Forwarding path.
        if !self.ip_forward_enabled() {
            self.drop(out, "forwarding disabled");
            return;
        }
        out.cost
            .charge("fib_lookup", self.cost.fib_lookup_kernel_ns);
        let Some(route) = self.fib.lookup(ip.dst).copied() else {
            self.icmp_error(&frame, l3, &ip, IcmpType::DestUnreachable(0), out, queue);
            self.drop(out, "no route");
            return;
        };
        let meta = PacketMeta {
            out_if: route.dev,
            ..meta
        };
        if let Some(t) = &self.telemetry {
            t.slow_netfilter.inc();
        }
        let verdict = self
            .netfilter
            .evaluate(ChainHook::Forward, &meta, &self.cost, &mut out.cost);
        if verdict == NfVerdict::Drop {
            self.drop(out, "nf forward drop");
            return;
        }

        out.cost
            .charge("ip_forward", self.cost.ip_forward_finish_ns);
        if Ipv4Header::decrement_ttl(&mut frame[l3..]).is_none() {
            self.icmp_error(&frame, l3, &ip, IcmpType::TimeExceeded, out, queue);
            self.drop(out, "ttl exceeded");
            return;
        }

        // nat POSTROUTING: complete fresh translations (SNAT/MASQUERADE
        // rule evaluation, port allocation, binding install) and apply
        // the source half of established bindings. Done before neighbor
        // resolution so ARP-queued frames already carry the rewrite.
        // The POSTROUTING filter chain below still sees the pre-SNAT
        // source, as mangle/filter hooks do in Linux.
        if nat_active && matches!(ip.proto, IpProto::Udp | IpProto::Tcp) {
            let now = self.now;
            let cur = NatTuple::new(ip.src, meta.sport, ip.dst, meta.dport, ip.proto.to_u8());
            let egress_ip = self
                .devices
                .get(&route.dev)
                .and_then(|d| d.addrs.first().map(|(a, _)| *a));
            let bindings_before = self.conntrack.nat_len();
            let outcome = self.nat.postrouting(
                &mut self.conntrack,
                nat_ctx.take(),
                cur,
                route.dev,
                egress_ip,
                now,
            );
            if self.conntrack.nat_len() > bindings_before {
                // A fresh binding was installed (conntrack-entry-creation
                // class work).
                out.cost.charge("nat_bind", self.cost.conntrack_create_ns);
            }
            match outcome {
                PostOutcome::Snat { src, sport } => {
                    if let Some(t) = &self.telemetry {
                        t.slow_nat.inc();
                    }
                    linuxfp_packet::rewrite_ipv4(
                        &mut frame,
                        l3,
                        &linuxfp_packet::FieldRewrite {
                            src: Some(src),
                            sport: Some(sport),
                            ..Default::default()
                        },
                    );
                }
                PostOutcome::ExhaustedDrop => {
                    self.drop(out, "nat port exhaustion");
                    return;
                }
                PostOutcome::None => {}
            }
        }

        // Neighbor resolution for the next hop.
        out.cost.charge("neigh_lookup", self.cost.neigh_lookup_ns);
        let next_hop = match route.scope {
            RouteScope::Link => ip.dst,
            RouteScope::Universe => route.via.unwrap_or(ip.dst),
        };
        let now = self.now;
        match self.neigh.resolved_mac(next_hop, now) {
            Some((dst_mac, _)) => {
                let src_mac = self
                    .devices
                    .get(&route.dev)
                    .map(|d| d.mac)
                    .unwrap_or(MacAddr::ZERO);
                EthernetFrame::rewrite_macs(&mut frame, dst_mac, src_mac);
                if let Some(t) = &self.telemetry {
                    t.slow_netfilter.inc();
                }
                let verdict = self.netfilter.evaluate(
                    ChainHook::Postrouting,
                    &meta,
                    &self.cost,
                    &mut out.cost,
                );
                if verdict == NfVerdict::Drop {
                    self.drop(out, "nf postrouting drop");
                    return;
                }
                out.cost.charge("qdisc_xmit", self.cost.qdisc_xmit_ns);
                self.transmit(route.dev, frame, out, queue);
            }
            None => {
                self.arp_resolve_and_queue(route.dev, next_hop, frame, out, queue);
            }
        }
    }

    fn arp_resolve_and_queue(
        &mut self,
        egress: IfIndex,
        next_hop: Ipv4Addr,
        frame: Vec<u8>,
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, Vec<u8>)>,
    ) {
        self.pending_arp
            .entry(next_hop)
            .or_default()
            .push((egress, frame));
        let now = self.now;
        let fresh = self.neigh.mark_incomplete(next_hop, egress, now);
        if fresh {
            let Some(egress_dev) = self.devices.get(&egress) else {
                return;
            };
            let our_mac = egress_dev.mac;
            let our_ip = egress_dev
                .connected_prefixes()
                .iter()
                .find(|p| p.contains(next_hop))
                .and_then(|p| egress_dev.addr_in(p))
                .or_else(|| egress_dev.addrs.first().map(|(a, _)| *a));
            let Some(our_ip) = our_ip else {
                self.drop(out, "no source address for arp");
                return;
            };
            let req = ArpPacket::request(our_mac, our_ip, next_hop);
            let req_frame = builder::arp_frame(&req, our_mac, MacAddr::BROADCAST);
            self.transmit(egress, req_frame, out, queue);
        }
    }

    fn local_deliver(
        &mut self,
        dev: IfIndex,
        eth: &EthernetFrame,
        frame: Vec<u8>,
        ip: &Ipv4Header,
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, Vec<u8>)>,
    ) {
        if let Some(t) = &self.telemetry {
            t.slow_local.inc();
        }
        out.cost.charge("local_deliver", self.cost.local_deliver_ns);
        let l3 = eth.payload_offset;
        let l4 = l3 + ip.header_len;

        // VXLAN termination: UDP to the VXLAN port of a local VXLAN
        // device decapsulates and re-enters as a frame on that device's
        // bridge context.
        if ip.proto == IpProto::Udp {
            if let Ok(udp) = UdpHeader::parse(&frame[l4..]) {
                if let Some(vxlan_dev) = self.vxlan_device_for(ip.dst, udp.dst_port) {
                    out.cost.charge("vxlan_decap", self.cost.vxlan_decap_ns);
                    if let Ok((_vni, inner)) = builder::vxlan_decapsulate(&frame) {
                        // The inner frame appears as if received on the
                        // VXLAN device, which is typically a bridge port.
                        queue.push_back((vxlan_dev, inner));
                        return;
                    }
                    self.drop(out, "malformed vxlan");
                    return;
                }
            }
        }

        // ICMP echo responder.
        if ip.proto == IpProto::Icmp {
            if let Ok(icmp) = IcmpHeader::parse(&frame[l4..]) {
                if icmp.icmp_type == IcmpType::EchoRequest {
                    let payload = &frame[l4 + 8..];
                    let reply = IcmpHeader::build(IcmpType::EchoReply, icmp.id, icmp.seq, payload);
                    let total_len = (ip.header_len + reply.len()) as u16;
                    let mut reply_frame =
                        vec![0u8; linuxfp_packet::ETH_HLEN + ip.header_len + reply.len()];
                    EthernetFrame::write(&mut reply_frame, eth.src, eth.dst, EtherType::Ipv4);
                    Ipv4Header::write(
                        &mut reply_frame[linuxfp_packet::ETH_HLEN..],
                        ip.dst,
                        ip.src,
                        IpProto::Icmp,
                        64,
                        ip.id,
                        total_len,
                        true,
                    );
                    reply_frame[linuxfp_packet::ETH_HLEN + ip.header_len..].copy_from_slice(&reply);
                    self.transmit(dev, reply_frame, out, queue);
                    return;
                }
            }
        }

        out.effects.push(Effect::Deliver { dev, frame });
    }

    /// Generates an ICMP error about `frame` back toward its source —
    /// the slow-path corner-case handling the fast path always punts
    /// (paper Table I: "IP (de)fragmentation, ICMP" stay in Linux).
    /// Suppressed for ICMP originals (other than echo requests), per the
    /// never-error-about-an-error rule.
    fn icmp_error(
        &mut self,
        frame: &[u8],
        l3: usize,
        ip: &Ipv4Header,
        kind: IcmpType,
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, Vec<u8>)>,
    ) {
        if ip.proto == IpProto::Icmp {
            let is_echo_request = IcmpHeader::parse(&frame[l3 + ip.header_len..])
                .map(|h| h.icmp_type == IcmpType::EchoRequest)
                .unwrap_or(false);
            if !is_echo_request {
                return;
            }
        }
        // Source: an address on the device the packet came in through
        // (fall back to any local address).
        let Some(src_addr) = self
            .device_for_subnet(ip.src)
            .and_then(|d| self.devices.get(&d))
            .and_then(|d| d.addrs.first().map(|(a, _)| *a))
            .or_else(|| {
                self.devices
                    .values()
                    .find_map(|d| d.addrs.first().map(|(a, _)| *a))
            })
        else {
            return;
        };
        out.cost.charge("icmp_error", self.cost.icmp_error_ns);
        // Payload: the offending IP header + first 8 bytes, per RFC 792.
        let quoted_len = (ip.header_len + 8).min(frame.len() - l3);
        let icmp = IcmpHeader::build(kind, 0, 0, &frame[l3..l3 + quoted_len]);
        let total_len = (linuxfp_packet::ipv4::IPV4_MIN_HLEN + icmp.len()) as u16;
        let mut error_frame =
            vec![0u8; linuxfp_packet::ETH_HLEN + linuxfp_packet::ipv4::IPV4_MIN_HLEN + icmp.len()];
        EthernetFrame::write(
            &mut error_frame,
            MacAddr::ZERO, // resolved by ip_output
            MacAddr::ZERO,
            EtherType::Ipv4,
        );
        Ipv4Header::write(
            &mut error_frame[linuxfp_packet::ETH_HLEN..],
            src_addr,
            ip.src,
            IpProto::Icmp,
            64,
            0,
            total_len,
            false,
        );
        error_frame[linuxfp_packet::ETH_HLEN + linuxfp_packet::ipv4::IPV4_MIN_HLEN..]
            .copy_from_slice(&icmp);
        self.ip_output(error_frame, ip.src, out, queue);
    }

    /// Rewrites the destination of a frame to an ipvs backend through
    /// the shared incremental checksum-delta helper — the same audited
    /// implementation NAT and the synthesized fast paths use (UDP
    /// checksum cleared, TCP checksum delta-updated).
    fn ipvs_nat_rewrite(
        frame: &mut [u8],
        l3: usize,
        _ip: &Ipv4Header,
        backend_ip: Ipv4Addr,
        backend_port: u16,
    ) {
        linuxfp_packet::rewrite_ipv4(
            frame,
            l3,
            &linuxfp_packet::FieldRewrite {
                dst: Some(backend_ip),
                dport: Some(backend_port),
                ..Default::default()
            },
        );
    }

    fn vxlan_device_for(&self, dst: Ipv4Addr, port: u16) -> Option<IfIndex> {
        self.devices
            .values()
            .find(|d| match d.kind {
                DeviceKind::Vxlan {
                    local, port: vport, ..
                } => vport == port && (local == dst || self.owns_addr(dst)),
                _ => false,
            })
            .map(|d| d.index)
    }

    fn owns_addr(&self, addr: Ipv4Addr) -> bool {
        self.devices.values().any(|d| d.has_addr(addr))
    }

    fn packet_meta(&self, dev: IfIndex, frame: &[u8], l3: usize, ip: &Ipv4Header) -> PacketMeta {
        let l4 = l3 + ip.header_len;
        let (sport, dport) = match ip.proto {
            IpProto::Udp => UdpHeader::parse(&frame[l4..])
                .map(|u| (u.src_port, u.dst_port))
                .unwrap_or((0, 0)),
            IpProto::Tcp => linuxfp_packet::TcpHeader::parse(&frame[l4..])
                .map(|t| (t.src_port, t.dst_port))
                .unwrap_or((0, 0)),
            _ => (0, 0),
        };
        PacketMeta {
            src: ip.src,
            dst: ip.dst,
            proto: ip.proto,
            sport,
            dport,
            in_if: dev,
            out_if: IfIndex::NONE,
        }
    }

    /// Transmits a frame out `dev`, following device semantics: physical
    /// NICs emit an [`Effect::Transmit`], veth re-enters the peer, bridge
    /// masters forward/flood, VXLAN devices encapsulate.
    pub fn transmit_frame(&mut self, dev: IfIndex, frame: Vec<u8>) -> RxOutcome {
        let mut out = RxOutcome::default();
        let mut queue = VecDeque::new();
        self.transmit(dev, frame, &mut out, &mut queue);
        while let Some((d, f)) = queue.pop_front() {
            self.receive_one(d, f, &mut out, &mut queue);
        }
        out
    }

    fn transmit(
        &mut self,
        dev: IfIndex,
        frame: Vec<u8>,
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, Vec<u8>)>,
    ) {
        let Some(device) = self.devices.get(&dev) else {
            self.drop(out, "transmit on missing device");
            return;
        };
        if !device.up {
            self.drop(out, "transmit on down device");
            return;
        }
        match device.kind.clone() {
            DeviceKind::Physical => {
                out.cost.charge("driver_tx", self.cost.driver_tx_ns);
                let c = self.counters.entry(dev).or_default();
                c.tx_packets += 1;
                c.tx_bytes += frame.len() as u64;
                out.effects.push(Effect::Transmit { dev, frame });
            }
            DeviceKind::Veth { peer } => {
                queue.push_back((peer, frame));
            }
            DeviceKind::Bridge => {
                // Transmit *on* the bridge device: forward by FDB.
                let Ok(eth) = EthernetFrame::parse(&frame) else {
                    self.drop(out, "malformed ethernet");
                    return;
                };
                let now = self.now;
                let vlan = eth.vlan.map(|t| t.vid).unwrap_or(0);
                let lookup = match self.bridges.get_mut(&dev) {
                    Some(bridge) => bridge.fdb_lookup(eth.dst, vlan, now),
                    None => {
                        self.drop(out, "missing bridge");
                        return;
                    }
                };
                match lookup {
                    Some(egress) => self.transmit(egress, frame, out, queue),
                    None => {
                        let ports = self
                            .bridges
                            .get(&dev)
                            .map(|b| b.flood_ports(IfIndex::NONE, vlan))
                            .unwrap_or_default();
                        for egress in ports {
                            out.cost
                                .charge("bridge_flood", self.cost.bridge_flood_per_port_ns);
                            self.transmit(egress, frame.clone(), out, queue);
                        }
                    }
                }
            }
            DeviceKind::Vxlan {
                vni,
                local,
                port: _,
            } => {
                out.cost.charge("vxlan_encap", self.cost.vxlan_encap_ns);
                let Ok(eth) = EthernetFrame::parse(&frame) else {
                    self.drop(out, "malformed ethernet");
                    return;
                };
                let remotes: Vec<Ipv4Addr> = if eth.dst.is_unicast() {
                    match self.vxlan_fdb.get(&dev).and_then(|m| m.get(&eth.dst)) {
                        Some(vtep) => vec![*vtep],
                        None => self.vxlan_defaults.get(&dev).cloned().unwrap_or_default(),
                    }
                } else {
                    self.vxlan_defaults.get(&dev).cloned().unwrap_or_default()
                };
                if remotes.is_empty() {
                    self.drop(out, "vxlan no remote vtep");
                    return;
                }
                for vtep in remotes {
                    let outer = builder::vxlan_encapsulate(
                        &frame,
                        vni,
                        MacAddr::ZERO, // filled by ip_output below
                        MacAddr::ZERO,
                        local,
                        vtep,
                        49152,
                    );
                    self.ip_output(outer, vtep, out, queue);
                }
            }
        }
    }

    /// Routes a locally generated IP frame (MACs unresolved) toward
    /// `next_ip` and transmits it.
    fn ip_output(
        &mut self,
        mut frame: Vec<u8>,
        next_ip: Ipv4Addr,
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, Vec<u8>)>,
    ) {
        out.cost
            .charge("fib_lookup", self.cost.fib_lookup_kernel_ns);
        let Some(route) = self.fib.lookup(next_ip).copied() else {
            self.drop(out, "no route (output)");
            return;
        };
        let next_hop = match route.scope {
            RouteScope::Link => next_ip,
            RouteScope::Universe => route.via.unwrap_or(next_ip),
        };
        out.cost.charge("neigh_lookup", self.cost.neigh_lookup_ns);
        let now = self.now;
        match self.neigh.resolved_mac(next_hop, now) {
            Some((dst_mac, _)) => {
                let src_mac = self
                    .devices
                    .get(&route.dev)
                    .map(|d| d.mac)
                    .unwrap_or(MacAddr::ZERO);
                EthernetFrame::rewrite_macs(&mut frame, dst_mac, src_mac);
                out.cost.charge("qdisc_xmit", self.cost.qdisc_xmit_ns);
                self.transmit(route.dev, frame, out, queue);
            }
            None => {
                self.arp_resolve_and_queue(route.dev, next_hop, frame, out, queue);
            }
        }
    }
}
