//! L7 request policy: a bounded HTTP/1.x request-line parser and a
//! per-URL-prefix/method policy table — the sixth accelerated
//! subsystem's slow path.
//!
//! The table maps `(method, URL prefix)` to allow / deny / steer, in
//! the spirit of an ipset: configuration events bump [`L7::generation`]
//! so the controller resynthesizes and the flow cache invalidates.
//!
//! Like NAT and ipvs, the expensive per-flow decision is made **once**
//! and pinned: the first parsed request line of a connection records
//! its verdict in a connection table, and every later segment of that
//! connection — including bare ACKs with no payload — gets the pinned
//! verdict without touching the payload. That payload-independence is
//! what makes an L7 verdict safe to replay from the microflow cache,
//! whose key covers headers but not payload bytes. A packet decided
//! *without* a pin (empty payload on an unpinned connection) must be
//! marked cache-ineligible by the caller.
//!
//! The parser is deliberately bounded and pessimistic: it examines at
//! most [`PARSE_WINDOW`] bytes and the full request line (`METHOD
//! SP url SP HTTP/1.x CRLF`) must complete inside that window. A
//! request line split across segments, a truncated line, binary
//! garbage, or an unknown method all read as *unparseable*: the fast
//! path punts and the slow path forwards (default-allow) without
//! pinning. Pipelined requests are handled by construction — only the
//! first parsed line of a connection pins; later segments replay the
//! pin regardless of content.

use crate::device::IfIndex;
use linuxfp_telemetry::Counter;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Longest request-line prefix either path will examine. The
/// synthesized fast path passes the same constant to
/// `bpf_l7_policy_lookup`, so both paths parse identical bytes.
pub const PARSE_WINDOW: usize = 64;

/// Most pinned connections held at once. Inserting past the cap evicts
/// the smallest key deterministically — and bumps the generation,
/// because losing a pin makes the evicted connection payload-dependent
/// again, which invalidates any cached verdict for it.
pub const PIN_CAP: usize = 4096;

/// The HTTP/1.x methods the bounded parser recognizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HttpMethod {
    /// `GET`.
    Get,
    /// `HEAD`.
    Head,
    /// `POST`.
    Post,
    /// `PUT`.
    Put,
    /// `DELETE`.
    Delete,
}

impl HttpMethod {
    /// Decodes a method token; `None` for anything off the known set.
    pub fn from_token(token: &[u8]) -> Option<Self> {
        match token {
            b"GET" => Some(HttpMethod::Get),
            b"HEAD" => Some(HttpMethod::Head),
            b"POST" => Some(HttpMethod::Post),
            b"PUT" => Some(HttpMethod::Put),
            b"DELETE" => Some(HttpMethod::Delete),
            _ => None,
        }
    }

    /// The wire token.
    pub const fn as_str(self) -> &'static str {
        match self {
            HttpMethod::Get => "GET",
            HttpMethod::Head => "HEAD",
            HttpMethod::Post => "POST",
            HttpMethod::Put => "PUT",
            HttpMethod::Delete => "DELETE",
        }
    }
}

/// What a matching policy does with the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L7Action {
    /// Forward normally.
    Allow,
    /// Drop the connection's segments.
    Deny,
    /// Transmit out this device instead of the routed egress (slow
    /// path only — the fast path punts steered connections).
    Steer(IfIndex),
}

/// One policy: first match wins, no match means allow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L7Policy {
    /// Match on the request method (`None` matches any).
    pub method: Option<HttpMethod>,
    /// Match on a URL prefix (`/` matches every request).
    pub url_prefix: Vec<u8>,
    /// What to do with the connection.
    pub action: L7Action,
}

impl L7Policy {
    /// A policy matching every method under `url_prefix`.
    pub fn prefix(url_prefix: &[u8], action: L7Action) -> Self {
        L7Policy {
            method: None,
            url_prefix: url_prefix.to_vec(),
            action,
        }
    }

    fn matches(&self, method: HttpMethod, url: &[u8]) -> bool {
        self.method.is_none_or(|m| m == method) && url.starts_with(&self.url_prefix)
    }
}

/// The connection a pin is keyed on (TCP only, post-DNAT tuple).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct L7ConnKey {
    /// Source address.
    pub src: Ipv4Addr,
    /// Source port.
    pub sport: u16,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Destination port.
    pub dport: u16,
}

/// What [`L7::lookup`] reports — shared verbatim by both paths, so the
/// verdict (and every counter side effect) is identical by
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L7LookupOutcome {
    /// The connection's verdict is allow and a pin now exists: the
    /// outcome is payload-independent, so it may be cached.
    Allow,
    /// The connection's verdict is deny: drop this segment.
    Deny,
    /// The connection's verdict is steer: transmit out this device.
    Steer(IfIndex),
    /// No pin and no request line to parse (empty payload, or no
    /// policies configured): forward, but the verdict is *not*
    /// payload-independent — mark the packet cache-ineligible.
    NoRequest,
    /// No pin and the payload failed the bounded parse: forward
    /// (default allow) without pinning; the fast path punts.
    Unparseable,
}

/// Parses one HTTP/1.x request line from the start of `payload`,
/// examining at most [`PARSE_WINDOW`] bytes. Returns the method and
/// URL, or `None` when the line is malformed, truncated, split across
/// segments, or uses an unknown method.
pub fn parse_request_line(payload: &[u8]) -> Option<(HttpMethod, &[u8])> {
    let window = &payload[..payload.len().min(PARSE_WINDOW)];
    let sp1 = window.iter().position(|&b| b == b' ')?;
    let method = HttpMethod::from_token(&window[..sp1])?;
    let rest = &window[sp1 + 1..];
    let sp2 = rest.iter().position(|&b| b == b' ')?;
    let url = &rest[..sp2];
    if url.first() != Some(&b'/') || url.iter().any(|&b| !(0x21..=0x7e).contains(&b)) {
        return None;
    }
    // `HTTP/1.x\r\n` must complete inside the window: a split or
    // truncated request line punts rather than guessing.
    let tail = &rest[sp2 + 1..];
    if tail.len() < 10
        || &tail[..7] != b"HTTP/1."
        || !tail[7].is_ascii_digit()
        || &tail[8..10] != b"\r\n"
    {
        return None;
    }
    Some((method, url))
}

/// The L7 policy table plus the per-connection verdict pins.
#[derive(Debug, Clone, Default)]
pub struct L7 {
    rules: Vec<L7Policy>,
    pins: BTreeMap<L7ConnKey, L7Action>,
    /// Monotonic generation, bumped on every event that can change a
    /// future verdict: policy append/flush and pin eviction.
    pub generation: u64,
    parsed: Option<Counter>,
    unparseable: Option<Counter>,
    denies: Option<Counter>,
}

impl L7 {
    /// Creates an empty table.
    pub fn new() -> Self {
        L7::default()
    }

    /// Counts successfully parsed request lines into `counter`.
    pub fn set_parsed_counter(&mut self, counter: Counter) {
        self.parsed = Some(counter);
    }

    /// Counts unparseable segments (on unpinned connections with
    /// policies configured) into `counter`.
    pub fn set_unparseable_counter(&mut self, counter: Counter) {
        self.unparseable = Some(counter);
    }

    /// Counts deny verdicts into `counter`.
    pub fn set_deny_counter(&mut self, counter: Counter) {
        self.denies = Some(counter);
    }

    /// Appends a policy (first match wins).
    pub fn append(&mut self, policy: L7Policy) {
        self.rules.push(policy);
        self.generation += 1;
    }

    /// Flushes all policies *and* all pins: a flush is a statement
    /// that prior verdicts no longer stand, so pinned connections are
    /// re-evaluated from their next request line.
    pub fn flush(&mut self) {
        if !self.rules.is_empty() || !self.pins.is_empty() {
            self.rules.clear();
            self.pins.clear();
            self.generation += 1;
        }
    }

    /// Configured policies.
    pub fn total_rules(&self) -> usize {
        self.rules.len()
    }

    /// Connections with a pinned verdict.
    pub fn pinned_len(&self) -> usize {
        self.pins.len()
    }

    /// Whether the subsystem has any effect on traffic: policies
    /// configured, or verdicts still pinned from before a flush — the
    /// same shape as `nat_configured` surviving a rule flush while
    /// bindings live.
    pub fn is_active(&self) -> bool {
        !self.rules.is_empty() || !self.pins.is_empty()
    }

    /// First-match policy evaluation; no match means allow.
    fn evaluate(&self, method: HttpMethod, url: &[u8]) -> L7Action {
        self.rules
            .iter()
            .find(|r| r.matches(method, url))
            .map_or(L7Action::Allow, |r| r.action)
    }

    /// Pins `action` for `key`, evicting deterministically at the cap.
    /// Eviction bumps the generation: the evicted connection's verdict
    /// becomes payload-dependent again, so any cached verdict for it
    /// must die.
    fn pin(&mut self, key: L7ConnKey, action: L7Action) {
        if self.pins.len() >= PIN_CAP && !self.pins.contains_key(&key) {
            let victim = *self.pins.keys().next().expect("cap > 0");
            self.pins.remove(&victim);
            self.generation += 1;
        }
        self.pins.insert(key, action);
    }

    /// The single verdict entry point both paths share.
    ///
    /// Equivalent to [`L7::lookup_hinted`] with the hint taken from
    /// the payload itself (what the slow path does).
    pub fn lookup(&mut self, key: L7ConnKey, payload: &[u8]) -> L7LookupOutcome {
        self.lookup_hinted(key, payload, payload.first().copied())
    }

    /// Verdict lookup with an explicit first-payload-byte hint.
    ///
    /// The synthesized fast path proves the first payload byte
    /// in-bounds, loads it with a verified variable-offset load, and
    /// passes it here (`None` encodes an empty payload); this method
    /// trusts that byte as the parse dispatch — exactly as the slow
    /// path trusts `payload[0]`. The two call sites therefore agree
    /// bit-for-bit on every outcome and counter.
    pub fn lookup_hinted(
        &mut self,
        key: L7ConnKey,
        payload: &[u8],
        first: Option<u8>,
    ) -> L7LookupOutcome {
        if let Some(&action) = self.pins.get(&key) {
            return self.verdict(action);
        }
        if self.rules.is_empty() {
            return L7LookupOutcome::NoRequest;
        }
        let Some(first) = first else {
            return L7LookupOutcome::NoRequest;
        };
        // Every known method token starts with an ASCII uppercase
        // letter, so the dispatch byte rejects binary garbage without
        // scanning the window.
        if !first.is_ascii_uppercase() {
            return self.note_unparseable();
        }
        match parse_request_line(payload) {
            Some((method, url)) => {
                if let Some(c) = &self.parsed {
                    c.inc();
                }
                let action = self.evaluate(method, url);
                self.pin(key, action);
                self.verdict(action)
            }
            None => self.note_unparseable(),
        }
    }

    fn verdict(&self, action: L7Action) -> L7LookupOutcome {
        match action {
            L7Action::Allow => L7LookupOutcome::Allow,
            L7Action::Deny => {
                if let Some(c) = &self.denies {
                    c.inc();
                }
                L7LookupOutcome::Deny
            }
            L7Action::Steer(dev) => L7LookupOutcome::Steer(dev),
        }
    }

    fn note_unparseable(&self) -> L7LookupOutcome {
        if let Some(c) = &self.unparseable {
            c.inc();
        }
        L7LookupOutcome::Unparseable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(sport: u16) -> L7ConnKey {
        L7ConnKey {
            src: Ipv4Addr::new(10, 0, 1, 2),
            sport,
            dst: Ipv4Addr::new(10, 10, 0, 7),
            dport: 80,
        }
    }

    fn table() -> L7 {
        let mut l7 = L7::new();
        l7.append(L7Policy {
            method: Some(HttpMethod::Post),
            url_prefix: b"/admin".to_vec(),
            action: L7Action::Deny,
        });
        l7.append(L7Policy::prefix(b"/metrics", L7Action::Steer(IfIndex(9))));
        l7.append(L7Policy::prefix(b"/api", L7Action::Allow));
        l7
    }

    #[test]
    fn parser_accepts_well_formed_request_lines() {
        let (m, url) = parse_request_line(b"GET /api/v1/users HTTP/1.1\r\nHost: x\r\n").unwrap();
        assert_eq!(m, HttpMethod::Get);
        assert_eq!(url, b"/api/v1/users");
        let (m, url) = parse_request_line(b"DELETE / HTTP/1.0\r\n").unwrap();
        assert_eq!(m, HttpMethod::Delete);
        assert_eq!(url, b"/");
    }

    #[test]
    fn parser_punts_on_garbage_truncation_and_splits() {
        // Binary garbage.
        assert!(parse_request_line(&[0x16, 0x03, 0x01, 0x00]).is_none());
        // Unknown method.
        assert!(parse_request_line(b"BREW /pot HTTP/1.1\r\n").is_none());
        // Split across segments: line doesn't finish in this one.
        assert!(parse_request_line(b"GET /api/v1/us").is_none());
        // Truncated just before the CRLF.
        assert!(parse_request_line(b"GET /x HTTP/1.1").is_none());
        // URL not absolute-path shaped.
        assert!(parse_request_line(b"GET http://e/ HTTP/1.1\r\n").is_none());
        // Control byte inside the URL.
        assert!(parse_request_line(b"GET /a\x01b HTTP/1.1\r\n").is_none());
        // Request line longer than the window is a punt, not a guess.
        let long = format!("GET /{} HTTP/1.1\r\n", "a".repeat(PARSE_WINDOW));
        assert!(parse_request_line(long.as_bytes()).is_none());
        // Empty input.
        assert!(parse_request_line(b"").is_none());
    }

    #[test]
    fn first_parsed_request_pins_the_connection_verdict() {
        let mut l7 = table();
        let k = key(40000);
        assert_eq!(
            l7.lookup(k, b"POST /admin/keys HTTP/1.1\r\n"),
            L7LookupOutcome::Deny
        );
        assert_eq!(l7.pinned_len(), 1);
        // A later segment with a *different* (even allowed) payload
        // still gets the pinned verdict — and so does a bare ACK.
        assert_eq!(
            l7.lookup(k, b"GET /api/ok HTTP/1.1\r\n"),
            L7LookupOutcome::Deny
        );
        assert_eq!(l7.lookup(k, b""), L7LookupOutcome::Deny);
        // A different connection is evaluated on its own merits.
        assert_eq!(
            l7.lookup(key(40001), b"GET /api/ok HTTP/1.1\r\n"),
            L7LookupOutcome::Allow
        );
    }

    #[test]
    fn unpinned_outcomes_do_not_pin() {
        let mut l7 = table();
        let k = key(1);
        assert_eq!(l7.lookup(k, b""), L7LookupOutcome::NoRequest);
        assert_eq!(l7.lookup(k, b"\x00garbage"), L7LookupOutcome::Unparseable);
        assert_eq!(l7.pinned_len(), 0);
        // Default allow when no policy matches; that *does* pin.
        assert_eq!(
            l7.lookup(k, b"GET /other HTTP/1.1\r\n"),
            L7LookupOutcome::Allow
        );
        assert_eq!(l7.pinned_len(), 1);
    }

    #[test]
    fn steer_and_method_matching() {
        let mut l7 = table();
        assert_eq!(
            l7.lookup(key(2), b"GET /metrics HTTP/1.1\r\n"),
            L7LookupOutcome::Steer(IfIndex(9))
        );
        // /admin deny is POST-only; GET falls through to default allow.
        assert_eq!(
            l7.lookup(key(3), b"GET /admin HTTP/1.1\r\n"),
            L7LookupOutcome::Allow
        );
    }

    #[test]
    fn flush_clears_pins_and_bumps_generation() {
        let mut l7 = table();
        l7.lookup(key(5), b"POST /admin HTTP/1.1\r\n");
        assert_eq!(l7.pinned_len(), 1);
        let g = l7.generation;
        l7.flush();
        assert!(l7.generation > g);
        assert_eq!((l7.total_rules(), l7.pinned_len()), (0, 0));
        assert!(!l7.is_active());
        // With no policies, nothing pins and nothing counts.
        assert_eq!(
            l7.lookup(key(5), b"POST /admin HTTP/1.1\r\n"),
            L7LookupOutcome::NoRequest
        );
        // Flushing an already-empty table is not an event.
        let g = l7.generation;
        l7.flush();
        assert_eq!(l7.generation, g);
    }

    #[test]
    fn pin_eviction_is_deterministic_and_bumps_generation() {
        let mut l7 = L7::new();
        l7.append(L7Policy::prefix(b"/", L7Action::Allow));
        for sport in 0..PIN_CAP as u16 {
            l7.lookup(key(sport), b"GET / HTTP/1.1\r\n");
        }
        assert_eq!(l7.pinned_len(), PIN_CAP);
        let g = l7.generation;
        // One more connection evicts the smallest key...
        l7.lookup(key(60000), b"GET / HTTP/1.1\r\n");
        assert_eq!(l7.pinned_len(), PIN_CAP);
        assert_eq!(l7.generation, g + 1, "eviction invalidates caches");
        // ...and re-pinning an existing connection does not evict.
        let g = l7.generation;
        l7.lookup(key(60000), b"");
        assert_eq!(l7.generation, g);
    }

    #[test]
    fn hinted_lookup_matches_unhinted() {
        let mut a = table();
        let mut b = table();
        let cases: &[&[u8]] = &[
            b"GET /api HTTP/1.1\r\n",
            b"POST /admin HTTP/1.1\r\n",
            b"\xffbinary",
            b"",
            b"GET /split",
        ];
        for (i, payload) in cases.iter().enumerate() {
            let k = key(i as u16);
            assert_eq!(
                a.lookup(k, payload),
                b.lookup_hinted(k, payload, payload.first().copied()),
                "case {i}"
            );
        }
        assert_eq!(a.pinned_len(), b.pinned_len());
        assert_eq!(a.generation, b.generation);
    }
}
