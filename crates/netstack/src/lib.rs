//! A simulated Linux kernel networking stack — the LinuxFP **slow path**.
//!
//! LinuxFP's architecture keeps Linux as a complete, always-correct packet
//! processing environment and installs synthesized eBPF fast paths in front
//! of it. This crate is the "Linux" of the reproduction:
//!
//! - **Devices** ([`device`]): physical NICs, veth pairs, bridges, and
//!   VXLAN tunnels, with XDP and TC hook attachment points.
//! - **Routing** ([`fib`]): a longest-prefix-match trie, route attributes,
//!   and the `ip route` configuration surface.
//! - **Neighbors** ([`neigh`]): the ARP table state machine; ARP itself is
//!   processed here (the fast path never answers ARP — paper Table I).
//! - **Bridging** ([`bridge`]): forwarding database with learning and
//!   aging, STP port states, VLAN filtering, and flooding on FDB miss.
//! - **Netfilter** ([`netfilter`]): the `filter` table with built-in and
//!   user chains, linear rule evaluation (whose cost the paper's Fig. 8
//!   measures), and ipset aggregation.
//! - **Conntrack** ([`conntrack`]): 5-tuple connection tracking with
//!   per-direction NAT bindings.
//! - **NAT** ([`nat`]): the iptables `nat` table — PREROUTING DNAT and
//!   POSTROUTING SNAT/MASQUERADE with a deterministic port allocator.
//! - **L7 policy** ([`l7`]): a bounded HTTP/1.x request-line parser and
//!   per-URL-prefix/method policy table with connection-verdict pinning.
//! - **Netlink** ([`netlink`]): typed dump requests plus multicast change
//!   notifications — the introspection surface the LinuxFP controller
//!   consumes.
//! - **The pipeline** ([`stack::Kernel`]): ties everything together and
//!   processes packets exactly once per stage, charging calibrated costs to
//!   a [`linuxfp_sim::CostTracker`] so that slow-path and fast-path
//!   processing are comparable (and so the flame-graph profile of paper
//!   Fig. 1 can be regenerated).
//!
//! State held here (FIB, FDB, neighbor table, rules, conntrack) is the
//! *single source of truth*: eBPF fast paths in `linuxfp-ebpf` access it
//! through helper functions rather than shadow maps, which is the paper's
//! central correctness mechanism ("Unifying State", §IV-B2).
//!
//! # Example
//!
//! ```
//! use linuxfp_netstack::stack::Kernel;
//! use linuxfp_packet::ipv4::Prefix;
//!
//! let mut k = Kernel::new(42);
//! let eth0 = k.add_physical("eth0").unwrap();
//! k.ip_addr_add(eth0, "10.0.1.1/24".parse().unwrap()).unwrap();
//! k.ip_link_set_up(eth0).unwrap();
//! k.sysctl_set("net.ipv4.ip_forward", 1).unwrap();
//! let routes = k.dump_routes();
//! assert_eq!(routes.len(), 1); // connected route for 10.0.1.0/24
//! assert_eq!(routes[0].prefix, "10.0.1.0/24".parse::<Prefix>().unwrap());
//! ```

pub mod bridge;
pub mod conntrack;
pub mod device;
pub mod error;
pub mod fib;
pub mod ipvs;
pub mod l7;
pub mod nat;
pub mod neigh;
pub mod netfilter;
pub mod netlink;
pub mod stack;

pub use device::{DeviceKind, IfIndex, NetDevice};
pub use error::NetError;
pub use stack::{Effect, HookVerdict, Kernel, RxOutcome};
