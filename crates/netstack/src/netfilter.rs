//! Netfilter: the `filter` table, iptables-style rules, and ipset.
//!
//! Rule evaluation is deliberately a **linear scan** charging a per-rule
//! cost, because that linear search is precisely the scalability problem
//! the paper measures in Fig. 8 and works around with ipset aggregation
//! (one hash lookup standing in for many rules). The same evaluation code
//! serves the slow path and the fast path's `bpf_ipt_lookup` helper, so
//! both paths always agree on verdicts.

use crate::device::IfIndex;
use linuxfp_packet::ipv4::{IpProto, Prefix};
use linuxfp_sim::{CostModel, CostTracker};
use linuxfp_telemetry::trace::{TraceCtx, TraceEvent};
use linuxfp_telemetry::Counter;
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

/// Hook points of the filter table we model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChainHook {
    /// Before routing.
    Prerouting,
    /// Destined to the local host.
    Input,
    /// Routed through the host — the hook the virtual gateway uses.
    Forward,
    /// Locally generated.
    Output,
    /// After routing, before transmission.
    Postrouting,
}

impl ChainHook {
    /// The iptables chain name.
    pub fn name(self) -> &'static str {
        match self {
            ChainHook::Prerouting => "PREROUTING",
            ChainHook::Input => "INPUT",
            ChainHook::Forward => "FORWARD",
            ChainHook::Output => "OUTPUT",
            ChainHook::Postrouting => "POSTROUTING",
        }
    }
}

/// Rule verdict / target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleTarget {
    /// Accept the packet (terminal).
    Accept,
    /// Drop the packet (terminal).
    Drop,
    /// Return to the calling chain.
    Return,
    /// Continue evaluation in a user-defined chain.
    Jump(String),
}

/// Which direction an ipset match applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetDir {
    /// Match the source address against the set.
    Src,
    /// Match the destination address against the set.
    Dst,
}

/// One iptables rule: a conjunction of matches and a target.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IptRule {
    /// Source prefix match (`-s`).
    pub src: Option<Prefix>,
    /// Destination prefix match (`-d`).
    pub dst: Option<Prefix>,
    /// Protocol match (`-p`).
    pub proto: Option<IpProto>,
    /// Destination port match (`--dport`).
    pub dport: Option<u16>,
    /// Source port match (`--sport`).
    pub sport: Option<u16>,
    /// Ingress interface match (`-i`).
    pub in_if: Option<IfIndex>,
    /// Egress interface match (`-o`).
    pub out_if: Option<IfIndex>,
    /// ipset match (`-m set --match-set NAME src|dst`).
    pub set_match: Option<(String, SetDir)>,
    /// The rule's target.
    pub target: RuleTargetField,
}

/// Wrapper so `IptRule` can derive `Default` (default target: Accept).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleTargetField(pub RuleTarget);

impl Default for RuleTargetField {
    fn default() -> Self {
        RuleTargetField(RuleTarget::Accept)
    }
}

impl IptRule {
    /// A rule dropping traffic to `dst` — the paper's gateway blacklist
    /// shape (`iptables -A FORWARD -d <prefix> -j DROP`).
    pub fn drop_dst(dst: Prefix) -> Self {
        IptRule {
            dst: Some(dst),
            target: RuleTargetField(RuleTarget::Drop),
            ..IptRule::default()
        }
    }

    /// A rule dropping traffic whose destination is in ipset `set`.
    pub fn drop_dst_set(set: impl Into<String>) -> Self {
        IptRule {
            set_match: Some((set.into(), SetDir::Dst)),
            target: RuleTargetField(RuleTarget::Drop),
            ..IptRule::default()
        }
    }

    /// The rule's target.
    pub fn target(&self) -> &RuleTarget {
        &self.target.0
    }
}

/// The L3/L4 metadata netfilter matches against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketMeta {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// IP protocol.
    pub proto: IpProto,
    /// Source port (0 when not applicable).
    pub sport: u16,
    /// Destination port (0 when not applicable).
    pub dport: u16,
    /// Ingress interface.
    pub in_if: IfIndex,
    /// Egress interface ([`IfIndex::NONE`] before routing).
    pub out_if: IfIndex,
}

/// Final verdict of a chain traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NfVerdict {
    /// Packet proceeds.
    Accept,
    /// Packet is discarded.
    Drop,
}

/// A chain: ordered rules plus a policy for fall-through.
#[derive(Debug, Clone)]
pub struct Chain {
    /// Rules in evaluation order.
    pub rules: Vec<IptRule>,
    /// Applied when no rule terminates evaluation (built-in chains only).
    pub policy: NfVerdict,
}

impl Chain {
    fn new() -> Self {
        Chain {
            rules: Vec::new(),
            policy: NfVerdict::Accept,
        }
    }
}

/// An ipset: a named set of addresses or prefixes with O(1)-ish lookup.
#[derive(Debug, Clone)]
pub enum IpSet {
    /// `hash:ip` — exact addresses.
    HashIp(std::collections::HashSet<Ipv4Addr>),
    /// `hash:net` — prefixes, looked up per distinct prefix length.
    HashNet(BTreeMap<u8, std::collections::HashSet<u32>>),
}

impl IpSet {
    /// Creates an empty set of the given kind.
    pub fn new_hash_ip() -> Self {
        IpSet::HashIp(Default::default())
    }

    /// Creates an empty `hash:net` set.
    pub fn new_hash_net() -> Self {
        IpSet::HashNet(Default::default())
    }

    /// Adds a member. For `hash:ip` sets the prefix must be a /32.
    ///
    /// Returns `false` (and does nothing) when a non-host prefix is added
    /// to a `hash:ip` set.
    pub fn add(&mut self, prefix: Prefix) -> bool {
        match self {
            IpSet::HashIp(set) => {
                if prefix.len() != 32 {
                    return false;
                }
                set.insert(prefix.network());
                true
            }
            IpSet::HashNet(by_len) => {
                by_len
                    .entry(prefix.len())
                    .or_default()
                    .insert(u32::from(prefix.network()));
                true
            }
        }
    }

    /// Membership test for an address.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        match self {
            IpSet::HashIp(set) => set.contains(&addr),
            IpSet::HashNet(by_len) => by_len.iter().any(|(len, nets)| {
                let p = Prefix::new(addr, *len);
                nets.contains(&u32::from(p.network()))
            }),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        match self {
            IpSet::HashIp(set) => set.len(),
            IpSet::HashNet(by_len) => by_len.values().map(|s| s.len()).sum(),
        }
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every member, keeping the set's kind.
    pub fn clear(&mut self) {
        match self {
            IpSet::HashIp(set) => set.clear(),
            IpSet::HashNet(by_len) => by_len.clear(),
        }
    }
}

/// The netfilter subsystem: built-in chains, user chains, and ipsets.
#[derive(Debug, Clone)]
pub struct Netfilter {
    builtin: BTreeMap<ChainHook, Chain>,
    user_chains: HashMap<String, Chain>,
    sets: HashMap<String, IpSet>,
    /// Monotonic generation counter bumped on every rule/set change; the
    /// controller uses it to detect configuration changes cheaply.
    pub generation: u64,
    evaluations: Option<Counter>,
}

impl Netfilter {
    /// Creates the subsystem with empty built-in chains (policy ACCEPT).
    pub fn new() -> Self {
        let mut builtin = BTreeMap::new();
        for hook in [
            ChainHook::Prerouting,
            ChainHook::Input,
            ChainHook::Forward,
            ChainHook::Output,
            ChainHook::Postrouting,
        ] {
            builtin.insert(hook, Chain::new());
        }
        Netfilter {
            builtin,
            user_chains: HashMap::new(),
            sets: HashMap::new(),
            generation: 0,
            evaluations: None,
        }
    }

    /// Counts every chain evaluation (fast-path helper and slow-path
    /// alike) into `counter`.
    pub fn set_evaluation_counter(&mut self, counter: Counter) {
        self.evaluations = Some(counter);
    }

    /// Appends a rule to a built-in chain (`iptables -A <CHAIN> ...`).
    pub fn append(&mut self, hook: ChainHook, rule: IptRule) {
        self.builtin
            .get_mut(&hook)
            .expect("builtin chain")
            .rules
            .push(rule);
        self.generation += 1;
    }

    /// Deletes the rule at `index` from a built-in chain
    /// (`iptables -D <CHAIN> <num>`); returns it if present.
    pub fn delete(&mut self, hook: ChainHook, index: usize) -> Option<IptRule> {
        let chain = self.builtin.get_mut(&hook).expect("builtin chain");
        if index < chain.rules.len() {
            self.generation += 1;
            Some(chain.rules.remove(index))
        } else {
            None
        }
    }

    /// Removes all rules from a built-in chain (`iptables -F <CHAIN>`).
    pub fn flush(&mut self, hook: ChainHook) {
        self.builtin
            .get_mut(&hook)
            .expect("builtin chain")
            .rules
            .clear();
        self.generation += 1;
    }

    /// Sets a built-in chain's policy (`iptables -P <CHAIN> <policy>`).
    pub fn set_policy(&mut self, hook: ChainHook, policy: NfVerdict) {
        self.builtin.get_mut(&hook).expect("builtin chain").policy = policy;
        self.generation += 1;
    }

    /// Creates a user chain (`iptables -N <name>`); returns `false` if it
    /// already exists.
    pub fn new_chain(&mut self, name: impl Into<String>) -> bool {
        let name = name.into();
        if self.user_chains.contains_key(&name) {
            return false;
        }
        self.user_chains.insert(name, Chain::new());
        self.generation += 1;
        true
    }

    /// Appends a rule to a user chain; returns `false` if the chain does
    /// not exist.
    pub fn append_user(&mut self, chain: &str, rule: IptRule) -> bool {
        match self.user_chains.get_mut(chain) {
            Some(c) => {
                c.rules.push(rule);
                self.generation += 1;
                true
            }
            None => false,
        }
    }

    /// Creates an ipset (`ipset create <name> hash:ip|hash:net`); returns
    /// `false` if it already exists.
    pub fn set_create(&mut self, name: impl Into<String>, set: IpSet) -> bool {
        let name = name.into();
        if self.sets.contains_key(&name) {
            return false;
        }
        self.sets.insert(name, set);
        self.generation += 1;
        true
    }

    /// Adds a member to an ipset (`ipset add <name> <prefix>`); returns
    /// `false` if the set does not exist or rejects the member.
    pub fn set_add(&mut self, name: &str, prefix: Prefix) -> bool {
        let ok = match self.sets.get_mut(name) {
            Some(s) => s.add(prefix),
            None => false,
        };
        if ok {
            self.generation += 1;
        }
        ok
    }

    /// Empties an ipset (`ipset flush <name>`); returns `false` if the
    /// set does not exist. Flushing an already-empty set still counts as
    /// a configuration change (real `ipset flush` emits a netlink event
    /// regardless), so the generation always advances.
    pub fn set_flush(&mut self, name: &str) -> bool {
        match self.sets.get_mut(name) {
            Some(s) => {
                s.clear();
                self.generation += 1;
                true
            }
            None => false,
        }
    }

    /// An ipset by name.
    pub fn set(&self, name: &str) -> Option<&IpSet> {
        self.sets.get(name)
    }

    /// The rules currently in a built-in chain.
    pub fn rules(&self, hook: ChainHook) -> &[IptRule] {
        &self.builtin[&hook].rules
    }

    /// The policy of a built-in chain.
    pub fn policy(&self, hook: ChainHook) -> NfVerdict {
        self.builtin[&hook].policy
    }

    /// Total rules across all chains (used by the controller to decide
    /// whether a filter FPM is needed at all).
    pub fn total_rules(&self) -> usize {
        self.builtin.values().map(|c| c.rules.len()).sum::<usize>()
            + self
                .user_chains
                .values()
                .map(|c| c.rules.len())
                .sum::<usize>()
    }

    /// Names of all ipsets.
    pub fn set_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.sets.keys().cloned().collect();
        names.sort();
        names
    }

    /// Evaluates the chain at `hook` against `meta`, charging match costs
    /// to `tracker` — a linear scan at `nf_rule_linear_ns` per rule plus
    /// `ipset_lookup_ns` per set probed, after a fixed `nf_hook_base_ns`.
    pub fn evaluate(
        &self,
        hook: ChainHook,
        meta: &PacketMeta,
        cost: &CostModel,
        tracker: &mut CostTracker,
    ) -> NfVerdict {
        tracker.charge("nf_hook", cost.nf_hook_base_ns);
        self.evaluate_with_rule_cost(hook, meta, cost, tracker, cost.nf_rule_linear_ns)
    }

    /// Like [`Netfilter::evaluate`], but appends a flight-recorder
    /// event carrying the chain, the verdict, and the virtual time the
    /// traversal charged. Costs are identical to [`Netfilter::evaluate`]
    /// — the trace context never charges time itself.
    pub fn evaluate_traced(
        &self,
        hook: ChainHook,
        meta: &PacketMeta,
        cost: &CostModel,
        tracker: &mut CostTracker,
        trace: &mut TraceCtx,
    ) -> NfVerdict {
        let before = tracker.total_ns();
        let verdict = self.evaluate(hook, meta, cost, tracker);
        let ns = tracker.total_ns() - before;
        trace.event(|| TraceEvent::Netfilter {
            chain: hook.name(),
            verdict: match verdict {
                NfVerdict::Accept => "accept",
                NfVerdict::Drop => "drop",
            },
            ns,
        });
        verdict
    }

    /// Like [`Netfilter::evaluate`], but charging a caller-chosen per-rule
    /// cost. The `bpf_ipt_lookup` helper uses this with its own (cheaper)
    /// per-rule price: it reimplements matching compactly instead of
    /// walking full xt entries, while still consulting the *same* rule
    /// table — semantics identical, constant factor different.
    pub fn evaluate_with_rule_cost(
        &self,
        hook: ChainHook,
        meta: &PacketMeta,
        cost: &CostModel,
        tracker: &mut CostTracker,
        rule_ns: f64,
    ) -> NfVerdict {
        if let Some(c) = &self.evaluations {
            c.inc();
        }
        let chain = &self.builtin[&hook];
        match self.eval_chain(chain, meta, cost, tracker, 0, rule_ns) {
            Some(v) => v,
            None => chain.policy,
        }
    }

    fn eval_chain(
        &self,
        chain: &Chain,
        meta: &PacketMeta,
        cost: &CostModel,
        tracker: &mut CostTracker,
        depth: usize,
        rule_ns: f64,
    ) -> Option<NfVerdict> {
        if depth > 16 {
            // Linux prevents chain loops at rule-insertion time; we bound
            // the recursion defensively instead.
            return Some(NfVerdict::Drop);
        }
        for rule in &chain.rules {
            tracker.charge("nf_rule_match", rule_ns);
            if !self.rule_matches(rule, meta, cost, tracker) {
                continue;
            }
            match rule.target() {
                RuleTarget::Accept => return Some(NfVerdict::Accept),
                RuleTarget::Drop => return Some(NfVerdict::Drop),
                RuleTarget::Return => return None,
                RuleTarget::Jump(name) => {
                    if let Some(sub) = self.user_chains.get(name) {
                        if let Some(v) =
                            self.eval_chain(sub, meta, cost, tracker, depth + 1, rule_ns)
                        {
                            return Some(v);
                        }
                    }
                }
            }
        }
        None
    }

    fn rule_matches(
        &self,
        rule: &IptRule,
        meta: &PacketMeta,
        cost: &CostModel,
        tracker: &mut CostTracker,
    ) -> bool {
        if let Some(p) = &rule.src {
            if !p.contains(meta.src) {
                return false;
            }
        }
        if let Some(p) = &rule.dst {
            if !p.contains(meta.dst) {
                return false;
            }
        }
        if let Some(proto) = rule.proto {
            if proto != meta.proto {
                return false;
            }
        }
        if let Some(dport) = rule.dport {
            if dport != meta.dport {
                return false;
            }
        }
        if let Some(sport) = rule.sport {
            if sport != meta.sport {
                return false;
            }
        }
        if let Some(in_if) = rule.in_if {
            if in_if != meta.in_if {
                return false;
            }
        }
        if let Some(out_if) = rule.out_if {
            if out_if != meta.out_if {
                return false;
            }
        }
        if let Some((name, dir)) = &rule.set_match {
            tracker.charge("ipset_lookup", cost.ipset_lookup_ns);
            let addr = match dir {
                SetDir::Src => meta.src,
                SetDir::Dst => meta.dst,
            };
            match self.sets.get(name) {
                Some(set) if set.contains(addr) => {}
                _ => return false,
            }
        }
        true
    }
}

impl Default for Netfilter {
    fn default() -> Self {
        Netfilter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(dst: [u8; 4]) -> PacketMeta {
        PacketMeta {
            src: Ipv4Addr::new(192, 168, 0, 1),
            dst: Ipv4Addr::from(dst),
            proto: IpProto::Udp,
            sport: 1000,
            dport: 2000,
            in_if: IfIndex(1),
            out_if: IfIndex(2),
        }
    }

    fn eval(nf: &Netfilter, hook: ChainHook, m: &PacketMeta) -> (NfVerdict, CostTracker) {
        let cost = CostModel::calibrated();
        let mut t = CostTracker::new();
        let v = nf.evaluate(hook, m, &cost, &mut t);
        (v, t)
    }

    #[test]
    fn empty_chain_applies_policy() {
        let nf = Netfilter::new();
        let (v, t) = eval(&nf, ChainHook::Forward, &meta([10, 10, 3, 1]));
        assert_eq!(v, NfVerdict::Accept);
        assert_eq!(t.stage_count("nf_rule_match"), 0);
        let mut nf = Netfilter::new();
        nf.set_policy(ChainHook::Forward, NfVerdict::Drop);
        let (v, _) = eval(&nf, ChainHook::Forward, &meta([10, 10, 3, 1]));
        assert_eq!(v, NfVerdict::Drop);
    }

    #[test]
    fn drop_rule_matches_destination() {
        let mut nf = Netfilter::new();
        nf.append(
            ChainHook::Forward,
            IptRule::drop_dst("10.10.3.0/24".parse().unwrap()),
        );
        let (v, _) = eval(&nf, ChainHook::Forward, &meta([10, 10, 3, 7]));
        assert_eq!(v, NfVerdict::Drop);
        let (v, _) = eval(&nf, ChainHook::Forward, &meta([10, 10, 4, 7]));
        assert_eq!(v, NfVerdict::Accept);
    }

    #[test]
    fn linear_cost_scales_with_rule_count() {
        let mut nf = Netfilter::new();
        for i in 0..100u32 {
            nf.append(
                ChainHook::Forward,
                IptRule::drop_dst(Prefix::new(Ipv4Addr::from(0xC0A8_0000 + (i << 8)), 24)),
            );
        }
        // A packet matching none of the 100 rules pays for all of them.
        let (v, t) = eval(&nf, ChainHook::Forward, &meta([10, 10, 3, 1]));
        assert_eq!(v, NfVerdict::Accept);
        assert_eq!(t.stage_count("nf_rule_match"), 100);
        // A packet matching rule 0 pays for one.
        let (v, t) = eval(&nf, ChainHook::Forward, &meta([192, 168, 0, 9]));
        assert_eq!(v, NfVerdict::Drop);
        assert_eq!(t.stage_count("nf_rule_match"), 1);
    }

    #[test]
    fn ipset_aggregation_replaces_linear_scan() {
        let mut nf = Netfilter::new();
        let mut set = IpSet::new_hash_net();
        for i in 0..100u32 {
            set.add(Prefix::new(Ipv4Addr::from(0xC0A8_0000 + (i << 8)), 24));
        }
        assert_eq!(set.len(), 100);
        nf.set_create("blacklist", set);
        nf.append(ChainHook::Forward, IptRule::drop_dst_set("blacklist"));
        // One rule + one set lookup regardless of member count.
        let (v, t) = eval(&nf, ChainHook::Forward, &meta([192, 168, 42, 1]));
        assert_eq!(v, NfVerdict::Drop);
        assert_eq!(t.stage_count("nf_rule_match"), 1);
        assert_eq!(t.stage_count("ipset_lookup"), 1);
        let (v, _) = eval(&nf, ChainHook::Forward, &meta([8, 8, 8, 8]));
        assert_eq!(v, NfVerdict::Accept);
    }

    #[test]
    fn hash_ip_set_requires_host_prefix() {
        let mut set = IpSet::new_hash_ip();
        assert!(!set.add("10.0.0.0/24".parse().unwrap()));
        assert!(set.add("10.0.0.5/32".parse().unwrap()));
        assert!(set.contains(Ipv4Addr::new(10, 0, 0, 5)));
        assert!(!set.contains(Ipv4Addr::new(10, 0, 0, 6)));
        assert!(!set.is_empty());
    }

    #[test]
    fn match_dimensions() {
        let mut nf = Netfilter::new();
        nf.append(
            ChainHook::Forward,
            IptRule {
                proto: Some(IpProto::Tcp),
                dport: Some(443),
                in_if: Some(IfIndex(1)),
                target: RuleTargetField(RuleTarget::Drop),
                ..IptRule::default()
            },
        );
        let mut m = meta([1, 1, 1, 1]);
        let (v, _) = eval(&nf, ChainHook::Forward, &m);
        assert_eq!(v, NfVerdict::Accept); // UDP doesn't match
        m.proto = IpProto::Tcp;
        m.dport = 443;
        let (v, _) = eval(&nf, ChainHook::Forward, &m);
        assert_eq!(v, NfVerdict::Drop);
        m.in_if = IfIndex(9);
        let (v, _) = eval(&nf, ChainHook::Forward, &m);
        assert_eq!(v, NfVerdict::Accept);
    }

    #[test]
    fn user_chain_jump_and_return() {
        let mut nf = Netfilter::new();
        assert!(nf.new_chain("CUSTOM"));
        assert!(!nf.new_chain("CUSTOM"));
        assert!(nf.append_user(
            "CUSTOM",
            IptRule {
                dst: Some("10.0.0.0/8".parse().unwrap()),
                target: RuleTargetField(RuleTarget::Drop),
                ..IptRule::default()
            }
        ));
        assert!(!nf.append_user("MISSING", IptRule::default()));
        nf.append(
            ChainHook::Forward,
            IptRule {
                target: RuleTargetField(RuleTarget::Jump("CUSTOM".into())),
                ..IptRule::default()
            },
        );
        nf.append(
            ChainHook::Forward,
            IptRule {
                target: RuleTargetField(RuleTarget::Drop),
                ..IptRule::default()
            },
        );
        // Matches in CUSTOM -> dropped there.
        let (v, _) = eval(&nf, ChainHook::Forward, &meta([10, 1, 1, 1]));
        assert_eq!(v, NfVerdict::Drop);
        // Falls through CUSTOM, returns, hits the second FORWARD rule.
        let (v, _) = eval(&nf, ChainHook::Forward, &meta([8, 8, 8, 8]));
        assert_eq!(v, NfVerdict::Drop);
    }

    #[test]
    fn return_target_stops_user_chain() {
        let mut nf = Netfilter::new();
        nf.new_chain("C");
        nf.append_user(
            "C",
            IptRule {
                target: RuleTargetField(RuleTarget::Return),
                ..IptRule::default()
            },
        );
        nf.append_user(
            "C",
            IptRule {
                target: RuleTargetField(RuleTarget::Drop),
                ..IptRule::default()
            },
        );
        nf.append(
            ChainHook::Forward,
            IptRule {
                target: RuleTargetField(RuleTarget::Jump("C".into())),
                ..IptRule::default()
            },
        );
        let (v, _) = eval(&nf, ChainHook::Forward, &meta([1, 2, 3, 4]));
        assert_eq!(v, NfVerdict::Accept); // policy, not the drop after Return
    }

    #[test]
    fn delete_and_flush() {
        let mut nf = Netfilter::new();
        nf.append(
            ChainHook::Forward,
            IptRule::drop_dst("10.0.0.0/8".parse().unwrap()),
        );
        nf.append(
            ChainHook::Forward,
            IptRule::drop_dst("11.0.0.0/8".parse().unwrap()),
        );
        assert_eq!(nf.total_rules(), 2);
        assert!(nf.delete(ChainHook::Forward, 0).is_some());
        assert!(nf.delete(ChainHook::Forward, 5).is_none());
        assert_eq!(nf.rules(ChainHook::Forward).len(), 1);
        nf.flush(ChainHook::Forward);
        assert_eq!(nf.total_rules(), 0);
    }

    #[test]
    fn generation_bumps_on_changes() {
        let mut nf = Netfilter::new();
        let g0 = nf.generation;
        nf.append(ChainHook::Forward, IptRule::default());
        assert!(nf.generation > g0);
        let g1 = nf.generation;
        nf.set_create("s", IpSet::new_hash_ip());
        nf.set_add("s", "1.2.3.4/32".parse().unwrap());
        assert!(nf.generation > g1);
        assert_eq!(nf.set_names(), vec!["s".to_string()]);
        assert!(nf.set("s").is_some());
        assert!(nf.set("t").is_none());
    }

    #[test]
    fn missing_set_never_matches() {
        let mut nf = Netfilter::new();
        nf.append(ChainHook::Forward, IptRule::drop_dst_set("ghost"));
        let (v, _) = eval(&nf, ChainHook::Forward, &meta([1, 2, 3, 4]));
        assert_eq!(v, NfVerdict::Accept);
    }
}
