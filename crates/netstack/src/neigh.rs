//! The neighbor (ARP) table.
//!
//! ARP processing is a slow-path responsibility in the LinuxFP split
//! (paper Table I): the kernel learns neighbor entries from ARP traffic
//! and the fast path merely *reads* them through `bpf_fib_lookup`. Entries
//! age from `Reachable` to `Stale` and are dropped after expiry.

use crate::device::IfIndex;
use linuxfp_packet::MacAddr;
use linuxfp_sim::Nanos;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Neighbor entry state (the subset of NUD states we model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeighState {
    /// Resolution in progress; packets are queued.
    Incomplete,
    /// Recently confirmed.
    Reachable,
    /// Past the reachable window but still usable.
    Stale,
}

/// One neighbor table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeighEntry {
    /// The neighbor's hardware address (meaningless while `Incomplete`).
    pub mac: MacAddr,
    /// Interface through which the neighbor is reached.
    pub dev: IfIndex,
    /// Entry state.
    pub state: NeighState,
    /// Last confirmation time.
    pub updated: Nanos,
}

/// The neighbor table with timer-based state transitions.
///
/// # Example
///
/// ```
/// use linuxfp_netstack::neigh::{NeighTable, NeighState};
/// use linuxfp_netstack::device::IfIndex;
/// use linuxfp_packet::MacAddr;
/// use linuxfp_sim::Nanos;
/// use std::net::Ipv4Addr;
///
/// let mut t = NeighTable::new();
/// let ip = Ipv4Addr::new(10, 0, 0, 2);
/// t.learn(ip, MacAddr::from_index(2), IfIndex(1), Nanos::ZERO);
/// assert_eq!(t.lookup(ip, Nanos::from_secs(1)).unwrap().state, NeighState::Reachable);
/// // After the reachable window the entry goes stale but stays usable:
/// assert_eq!(t.lookup(ip, Nanos::from_secs(60)).unwrap().state, NeighState::Stale);
/// ```
#[derive(Debug, Clone)]
pub struct NeighTable {
    entries: HashMap<Ipv4Addr, NeighEntry>,
    /// How long an entry stays `Reachable` after confirmation.
    pub reachable_time: Nanos,
    /// How long a `Stale` entry survives before garbage collection.
    pub gc_stale_time: Nanos,
    /// Monotonic generation, bumped on every resolution-relevant change:
    /// new entries, station moves (mac or dev changed), removals, and GC.
    /// Timer refreshes that re-learn the same `(mac, dev)` and the
    /// `Reachable` → `Stale` transition do not bump it — `resolved_mac`
    /// returns the same answer either way. Consumed by the microflow
    /// verdict cache's coherence check.
    generation: u64,
}

impl NeighTable {
    /// Creates a table with Linux-like defaults (30 s reachable, 60 s GC).
    pub fn new() -> Self {
        NeighTable {
            entries: HashMap::new(),
            reachable_time: Nanos::from_secs(30),
            gc_stale_time: Nanos::from_secs(60),
            generation: 0,
        }
    }

    /// The coherence generation (see the field docs).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Records a confirmed neighbor (from an ARP reply or learned from a
    /// request's sender fields).
    pub fn learn(&mut self, ip: Ipv4Addr, mac: MacAddr, dev: IfIndex, now: Nanos) {
        if self
            .entries
            .get(&ip)
            .map(|e| (e.mac, e.dev, e.state == NeighState::Incomplete))
            != Some((mac, dev, false))
        {
            self.generation = self.generation.wrapping_add(1);
        }
        self.entries.insert(
            ip,
            NeighEntry {
                mac,
                dev,
                state: NeighState::Reachable,
                updated: now,
            },
        );
    }

    /// Marks resolution in progress for `ip` (an ARP request was sent).
    /// Returns `false` if an entry (in any state) already exists.
    pub fn mark_incomplete(&mut self, ip: Ipv4Addr, dev: IfIndex, now: Nanos) -> bool {
        if self.entries.contains_key(&ip) {
            return false;
        }
        self.generation = self.generation.wrapping_add(1);
        self.entries.insert(
            ip,
            NeighEntry {
                mac: MacAddr::ZERO,
                dev,
                state: NeighState::Incomplete,
                updated: now,
            },
        );
        true
    }

    /// Looks up a neighbor, applying lazy state transitions at time `now`:
    /// `Reachable` entries past `reachable_time` become `Stale`; `Stale`
    /// entries past `gc_stale_time` are removed (returns `None`).
    pub fn lookup(&mut self, ip: Ipv4Addr, now: Nanos) -> Option<NeighEntry> {
        let entry = self.entries.get_mut(&ip)?;
        match entry.state {
            NeighState::Reachable => {
                if now.saturating_sub(entry.updated) > self.reachable_time {
                    entry.state = NeighState::Stale;
                    entry.updated = now;
                }
            }
            NeighState::Stale => {
                if now.saturating_sub(entry.updated) > self.gc_stale_time {
                    self.entries.remove(&ip);
                    self.generation = self.generation.wrapping_add(1);
                    return None;
                }
            }
            NeighState::Incomplete => {}
        }
        self.entries.get(&ip).copied()
    }

    /// A resolved (usable) hardware address for `ip`, if one exists.
    pub fn resolved_mac(&mut self, ip: Ipv4Addr, now: Nanos) -> Option<(MacAddr, IfIndex)> {
        match self.lookup(ip, now) {
            Some(e) if e.state != NeighState::Incomplete => Some((e.mac, e.dev)),
            _ => None,
        }
    }

    /// Removes an entry; returns whether it existed.
    pub fn remove(&mut self, ip: Ipv4Addr) -> bool {
        let existed = self.entries.remove(&ip).is_some();
        if existed {
            self.generation = self.generation.wrapping_add(1);
        }
        existed
    }

    /// Number of entries (all states).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Snapshot of all entries for netlink dumps.
    pub fn entries(&self) -> Vec<(Ipv4Addr, NeighEntry)> {
        self.entries.iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Eagerly collects entries past their lifetime (the periodic GC the
    /// neighbor subsystem runs); returns how many were removed.
    pub fn gc(&mut self, now: Nanos) -> usize {
        let reachable = self.reachable_time;
        let stale = self.gc_stale_time;
        let before = self.entries.len();
        self.entries.retain(|_, e| match e.state {
            NeighState::Reachable => now.saturating_sub(e.updated) <= reachable + stale,
            NeighState::Stale => now.saturating_sub(e.updated) <= stale,
            NeighState::Incomplete => now.saturating_sub(e.updated) <= reachable,
        });
        let removed = before - self.entries.len();
        if removed > 0 {
            self.generation = self.generation.wrapping_add(1);
        }
        removed
    }
}

impl Default for NeighTable {
    fn default() -> Self {
        NeighTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    #[test]
    fn learn_and_resolve() {
        let mut t = NeighTable::new();
        t.learn(ip(2), MacAddr::from_index(2), IfIndex(1), Nanos::ZERO);
        let (mac, dev) = t.resolved_mac(ip(2), Nanos::from_secs(1)).unwrap();
        assert_eq!(mac, MacAddr::from_index(2));
        assert_eq!(dev, IfIndex(1));
        assert!(t.resolved_mac(ip(3), Nanos::ZERO).is_none());
    }

    #[test]
    fn incomplete_entries_do_not_resolve() {
        let mut t = NeighTable::new();
        assert!(t.mark_incomplete(ip(2), IfIndex(1), Nanos::ZERO));
        assert!(!t.mark_incomplete(ip(2), IfIndex(1), Nanos::ZERO));
        assert!(t.resolved_mac(ip(2), Nanos::ZERO).is_none());
        // A reply upgrades the entry.
        t.learn(ip(2), MacAddr::from_index(2), IfIndex(1), Nanos::ZERO);
        assert!(t.resolved_mac(ip(2), Nanos::ZERO).is_some());
    }

    #[test]
    fn aging_reachable_to_stale_to_gone() {
        let mut t = NeighTable::new();
        t.learn(ip(2), MacAddr::from_index(2), IfIndex(1), Nanos::ZERO);
        // Within the window: reachable.
        assert_eq!(
            t.lookup(ip(2), Nanos::from_secs(10)).unwrap().state,
            NeighState::Reachable
        );
        // Past the window: stale but usable.
        let stale = t.lookup(ip(2), Nanos::from_secs(31)).unwrap();
        assert_eq!(stale.state, NeighState::Stale);
        assert!(t.resolved_mac(ip(2), Nanos::from_secs(32)).is_some());
        // Long past: garbage collected.
        assert!(t.lookup(ip(2), Nanos::from_secs(31 + 61)).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn remove_and_dump() {
        let mut t = NeighTable::new();
        t.learn(ip(2), MacAddr::from_index(2), IfIndex(1), Nanos::ZERO);
        t.learn(ip(3), MacAddr::from_index(3), IfIndex(1), Nanos::ZERO);
        assert_eq!(t.len(), 2);
        assert_eq!(t.entries().len(), 2);
        assert!(t.remove(ip(2)));
        assert!(!t.remove(ip(2)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn relearn_refreshes_timer() {
        let mut t = NeighTable::new();
        t.learn(ip(2), MacAddr::from_index(2), IfIndex(1), Nanos::ZERO);
        t.learn(
            ip(2),
            MacAddr::from_index(2),
            IfIndex(1),
            Nanos::from_secs(29),
        );
        // 31s after first learn but only 2s after refresh: still reachable.
        assert_eq!(
            t.lookup(ip(2), Nanos::from_secs(31)).unwrap().state,
            NeighState::Reachable
        );
    }
}
