//! The forwarding information base: a binary longest-prefix-match trie.
//!
//! This is the table behind both the kernel's slow-path route lookup and
//! the `bpf_fib_lookup` helper — one structure, two consumers, which is how
//! LinuxFP keeps the fast and slow paths coherent.

use crate::device::IfIndex;
use linuxfp_packet::ipv4::Prefix;
use linuxfp_telemetry::Counter;
use std::net::Ipv4Addr;

/// The scope of a route (mirrors the subset of `rtm_scope` we need).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteScope {
    /// Directly connected subnet: the destination is resolved by ARP on
    /// the egress link.
    Link,
    /// Reached through a gateway.
    Universe,
}

/// One routing table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Next-hop gateway; `None` for directly connected routes.
    pub via: Option<Ipv4Addr>,
    /// Egress interface.
    pub dev: IfIndex,
    /// Route metric; lower wins among equal-length prefixes.
    pub metric: u32,
    /// Route scope.
    pub scope: RouteScope,
}

impl Route {
    /// A directly connected route (what `ip addr add` implies).
    pub fn connected(prefix: Prefix, dev: IfIndex) -> Self {
        Route {
            prefix,
            via: None,
            dev,
            metric: 0,
            scope: RouteScope::Link,
        }
    }

    /// A gateway route (what `ip route add <prefix> via <gw>` creates).
    pub fn via_gateway(prefix: Prefix, gw: Ipv4Addr, dev: IfIndex) -> Self {
        Route {
            prefix,
            via: Some(gw),
            dev,
            metric: 0,
            scope: RouteScope::Universe,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct TrieNode {
    children: [Option<usize>; 2],
    routes: Vec<Route>,
}

/// A longest-prefix-match routing table.
///
/// # Example
///
/// ```
/// use linuxfp_netstack::fib::{Fib, Route};
/// use linuxfp_netstack::device::IfIndex;
/// use std::net::Ipv4Addr;
///
/// let mut fib = Fib::new();
/// fib.insert(Route::connected("10.0.0.0/8".parse().unwrap(), IfIndex(1)));
/// fib.insert(Route::connected("10.1.0.0/16".parse().unwrap(), IfIndex(2)));
/// let best = fib.lookup(Ipv4Addr::new(10, 1, 2, 3)).unwrap();
/// assert_eq!(best.dev, IfIndex(2)); // longest prefix wins
/// ```
#[derive(Debug, Clone)]
pub struct Fib {
    nodes: Vec<TrieNode>,
    len: usize,
    lookups: Option<Counter>,
    generation: u64,
}

impl Fib {
    /// Creates an empty table.
    pub fn new() -> Self {
        Fib {
            nodes: vec![TrieNode::default()],
            len: 0,
            lookups: None,
            generation: 0,
        }
    }

    /// Monotonic generation, bumped on every route mutation (consumed by
    /// the microflow verdict cache's coherence check).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Counts every [`Fib::lookup`] (fast-path helper and slow-path
    /// alike) into `counter`.
    pub fn set_lookup_counter(&mut self, counter: Counter) {
        self.lookups = Some(counter);
    }

    /// Number of routes installed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bit(addr: u32, depth: u8) -> usize {
        ((addr >> (31 - depth)) & 1) as usize
    }

    fn node_for_prefix(&mut self, prefix: &Prefix) -> usize {
        let addr = u32::from(prefix.network());
        let mut node = 0;
        for depth in 0..prefix.len() {
            let b = Self::bit(addr, depth);
            node = match self.nodes[node].children[b] {
                Some(next) => next,
                None => {
                    self.nodes.push(TrieNode::default());
                    let next = self.nodes.len() - 1;
                    self.nodes[node].children[b] = Some(next);
                    next
                }
            };
        }
        node
    }

    /// Inserts a route. If an identical `(prefix, via, dev)` route exists
    /// its metric is updated instead; returns `true` if a new route was
    /// added.
    pub fn insert(&mut self, route: Route) -> bool {
        self.generation = self.generation.wrapping_add(1);
        let node = self.node_for_prefix(&route.prefix);
        let routes = &mut self.nodes[node].routes;
        if let Some(existing) = routes
            .iter_mut()
            .find(|r| r.via == route.via && r.dev == route.dev)
        {
            existing.metric = route.metric;
            existing.scope = route.scope;
            return false;
        }
        routes.push(route);
        self.len += 1;
        true
    }

    /// Removes routes matching `prefix` (and `dev`, when given). Returns
    /// the number removed.
    pub fn remove(&mut self, prefix: &Prefix, dev: Option<IfIndex>) -> usize {
        let addr = u32::from(prefix.network());
        let mut node = 0;
        for depth in 0..prefix.len() {
            match self.nodes[node].children[Self::bit(addr, depth)] {
                Some(next) => node = next,
                None => return 0,
            }
        }
        let routes = &mut self.nodes[node].routes;
        let before = routes.len();
        routes.retain(|r| dev.is_some_and(|d| r.dev != d));
        let removed = before - routes.len();
        self.len -= removed;
        if removed > 0 {
            self.generation = self.generation.wrapping_add(1);
        }
        removed
    }

    /// Longest-prefix-match lookup; among routes on the winning prefix the
    /// lowest metric wins.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<&Route> {
        if let Some(c) = &self.lookups {
            c.inc();
        }
        let bits = u32::from(addr);
        let mut node = 0;
        let mut best: Option<&Route> = self.best_at(0);
        for depth in 0..32 {
            match self.nodes[node].children[Self::bit(bits, depth)] {
                Some(next) => {
                    node = next;
                    if let Some(r) = self.best_at(node) {
                        best = Some(r);
                    }
                }
                None => break,
            }
        }
        best
    }

    fn best_at(&self, node: usize) -> Option<&Route> {
        self.nodes[node].routes.iter().min_by_key(|r| r.metric)
    }

    /// All installed routes in unspecified order.
    pub fn routes(&self) -> Vec<Route> {
        self.nodes
            .iter()
            .flat_map(|n| n.routes.iter().copied())
            .collect()
    }
}

impl Default for Fib {
    fn default() -> Self {
        Fib::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn longest_prefix_wins() {
        let mut fib = Fib::new();
        fib.insert(Route::connected(p("0.0.0.0/0"), IfIndex(1)));
        fib.insert(Route::connected(p("10.0.0.0/8"), IfIndex(2)));
        fib.insert(Route::connected(p("10.1.0.0/16"), IfIndex(3)));
        fib.insert(Route::connected(p("10.1.2.0/24"), IfIndex(4)));
        assert_eq!(
            fib.lookup(Ipv4Addr::new(8, 8, 8, 8)).unwrap().dev,
            IfIndex(1)
        );
        assert_eq!(
            fib.lookup(Ipv4Addr::new(10, 9, 0, 1)).unwrap().dev,
            IfIndex(2)
        );
        assert_eq!(
            fib.lookup(Ipv4Addr::new(10, 1, 9, 1)).unwrap().dev,
            IfIndex(3)
        );
        assert_eq!(
            fib.lookup(Ipv4Addr::new(10, 1, 2, 9)).unwrap().dev,
            IfIndex(4)
        );
        assert_eq!(fib.len(), 4);
    }

    #[test]
    fn no_default_means_miss() {
        let mut fib = Fib::new();
        fib.insert(Route::connected(p("10.0.0.0/8"), IfIndex(1)));
        assert!(fib.lookup(Ipv4Addr::new(192, 168, 0, 1)).is_none());
    }

    #[test]
    fn metric_breaks_ties() {
        let mut fib = Fib::new();
        let mut a = Route::via_gateway(p("10.0.0.0/8"), Ipv4Addr::new(1, 1, 1, 1), IfIndex(1));
        a.metric = 100;
        let mut b = Route::via_gateway(p("10.0.0.0/8"), Ipv4Addr::new(2, 2, 2, 2), IfIndex(2));
        b.metric = 10;
        fib.insert(a);
        fib.insert(b);
        assert_eq!(
            fib.lookup(Ipv4Addr::new(10, 0, 0, 1)).unwrap().dev,
            IfIndex(2)
        );
    }

    #[test]
    fn reinsert_updates_metric() {
        let mut fib = Fib::new();
        assert!(fib.insert(Route::connected(p("10.0.0.0/8"), IfIndex(1))));
        let mut again = Route::connected(p("10.0.0.0/8"), IfIndex(1));
        again.metric = 50;
        assert!(!fib.insert(again));
        assert_eq!(fib.len(), 1);
        assert_eq!(fib.lookup(Ipv4Addr::new(10, 0, 0, 1)).unwrap().metric, 50);
    }

    #[test]
    fn remove_by_prefix_and_dev() {
        let mut fib = Fib::new();
        fib.insert(Route::connected(p("10.0.0.0/8"), IfIndex(1)));
        fib.insert(Route::via_gateway(
            p("10.0.0.0/8"),
            Ipv4Addr::new(9, 9, 9, 9),
            IfIndex(2),
        ));
        assert_eq!(fib.remove(&p("10.0.0.0/8"), Some(IfIndex(1))), 1);
        assert_eq!(fib.len(), 1);
        assert_eq!(
            fib.lookup(Ipv4Addr::new(10, 0, 0, 1)).unwrap().dev,
            IfIndex(2)
        );
        assert_eq!(fib.remove(&p("10.0.0.0/8"), None), 1);
        assert!(fib.is_empty());
        assert_eq!(fib.remove(&p("172.16.0.0/12"), None), 0);
    }

    #[test]
    fn default_route_matches_everything() {
        let mut fib = Fib::new();
        fib.insert(Route::via_gateway(
            p("0.0.0.0/0"),
            Ipv4Addr::new(10, 0, 0, 254),
            IfIndex(7),
        ));
        assert_eq!(
            fib.lookup(Ipv4Addr::new(1, 2, 3, 4)).unwrap().dev,
            IfIndex(7)
        );
        assert_eq!(
            fib.lookup(Ipv4Addr::new(255, 255, 255, 255)).unwrap().dev,
            IfIndex(7)
        );
    }

    #[test]
    fn routes_dump_contains_all() {
        let mut fib = Fib::new();
        fib.insert(Route::connected(p("10.0.0.0/24"), IfIndex(1)));
        fib.insert(Route::connected(p("10.0.1.0/24"), IfIndex(2)));
        let mut devs: Vec<u32> = fib.routes().iter().map(|r| r.dev.as_u32()).collect();
        devs.sort();
        assert_eq!(devs, vec![1, 2]);
    }

    #[test]
    fn host_routes() {
        let mut fib = Fib::new();
        fib.insert(Route::connected(p("10.0.0.5/32"), IfIndex(3)));
        assert_eq!(
            fib.lookup(Ipv4Addr::new(10, 0, 0, 5)).unwrap().dev,
            IfIndex(3)
        );
        assert!(fib.lookup(Ipv4Addr::new(10, 0, 0, 6)).is_none());
    }
}
