//! Receive-side entry points: frame injection (single and batched), hook
//! dispatch, the bridge input decision, and the punt up the stack.
use super::*;

/// Per-burst amortization state for [`Kernel::inject_batch`].
///
/// The cost model splits the driver-receive and hook-entry prices into a
/// per-burst-fixed part and a per-packet remainder (`rx_batch_fixed_ns`,
/// `hook_batch_fixed_ns`). In batched mode the first packet to reach each
/// stage charges the fixed part **once** into the shared batch tracker;
/// every packet then pays only the remainder. Single-packet injection
/// charges full prices, so a batch of one costs exactly the same total
/// as [`Kernel::receive`] — amortization changes cost accounting only,
/// never processing order or verdicts.
#[derive(Default)]
pub(super) struct BatchAmort {
    pub(super) batch_cost: CostTracker,
    rx_charged: bool,
    xdp_charged: bool,
    tc_charged: bool,
}

impl Kernel {
    /// Processes a frame received on `dev`, running hooks and the slow
    /// path, returning all externally visible effects and the cost.
    pub fn receive(&mut self, dev: IfIndex, frame: impl Into<PacketBuf>) -> RxOutcome {
        if let Some(t) = &self.telemetry {
            t.packets_injected.inc();
            t.batch_size.record(1);
        }
        self.packet_path_gc();
        let mut out = RxOutcome::default();
        self.run_to_completion(dev, frame.into(), &mut out, None);
        out
    }

    /// Processes a burst of frames received on `dev` as one unit,
    /// draining `batch`.
    ///
    /// Frames are processed strictly in order with full per-packet
    /// semantics (each gets its own [`RxOutcome`]); what batching changes
    /// is the accounting of per-burst fixed work — driver receive setup
    /// and hook dispatch are charged once into
    /// [`BatchOutcome::batch_cost`] instead of once per packet — and
    /// housekeeping (conntrack GC, telemetry) runs once per burst. Frames
    /// a packet re-queues internally (veth crossings, ARP replies) are
    /// charged full single-packet prices: they are new arrivals, not part
    /// of the received burst.
    pub fn inject_batch(&mut self, dev: IfIndex, batch: &mut Batch) -> BatchOutcome {
        let n = batch.len();
        if let Some(t) = &self.telemetry {
            t.batch_size.record(n as u64);
            t.packets_injected.add(n as u64);
        }
        self.packet_path_gc();
        // One amortizer per shard: a multi-queue NIC runs one NAPI poll
        // per queue with traffic, so each shard pays its own per-burst
        // fixed cost and amortizes it over its slice of the burst only.
        // With rss_shards=1 this is a single amortizer and the loop is
        // bit-identical to the pre-sharding path.
        let shards = self.rss_shards.max(1) as usize;
        let mut amorts: Vec<BatchAmort> = (0..shards).map(|_| BatchAmort::default()).collect();
        let mut shard_ns = vec![0.0f64; shards];
        let mut outcomes = Vec::with_capacity(n);
        for buf in batch.drain() {
            let shard = if shards > 1 {
                rss::shard_for(&buf, shards as u32) as usize
            } else {
                0
            };
            if shards > 1 {
                if let Some(t) = &self.telemetry {
                    t.registry
                        .counter(
                            "linuxfp_shard_packets_total",
                            &[("shard", shard.to_string().as_str())],
                        )
                        .inc();
                }
            }
            let mut out = RxOutcome::default();
            self.run_to_completion(dev, buf, &mut out, Some(&mut amorts[shard]));
            shard_ns[shard] += out.cost.total_ns();
            outcomes.push(out);
        }
        let mut batch_cost = CostTracker::new();
        for (shard, amort) in amorts.iter().enumerate() {
            shard_ns[shard] += amort.batch_cost.total_ns();
            batch_cost.merge(&amort.batch_cost);
        }
        BatchOutcome {
            outcomes,
            batch_cost,
            batch_size: n,
            shard_ns,
        }
    }

    /// Coarse-interval GC from the packet path: Linux ties conntrack
    /// expiry to timers and packet processing; without this, tables only
    /// shrink when callers remember to run housekeeping. Batched
    /// injection runs it once per burst — equivalent, since virtual time
    /// does not advance mid-burst.
    fn packet_path_gc(&mut self) {
        if self.now.saturating_sub(self.last_ct_gc) >= Nanos::from_secs(1) {
            self.last_ct_gc = self.now;
            let now = self.now;
            self.conntrack.gc(now);
            self.conntrack.nat_gc(now);
            for port in self.conntrack.take_freed_nat_ports() {
                self.nat.release_port(port);
            }
            for (addr, port) in self.conntrack.take_freed_backends() {
                self.ipvs.release_backend(addr, port);
            }
        }
    }

    /// Drives one injected frame and everything it re-queues (veth
    /// crossings, bridge floods, ARP replies) to completion.
    fn run_to_completion(
        &mut self,
        dev: IfIndex,
        frame: PacketBuf,
        out: &mut RxOutcome,
        mut amort: Option<&mut BatchAmort>,
    ) {
        // Flight recorder: decide up front whether this packet gets a
        // span. With sampling off (or no recorder) `out.trace` stays the
        // inert default — no allocation, no virtual-time charge.
        if let Some(recorder) = &mut self.recorder {
            if let Some(ctx) = recorder.sample(dev.as_u32(), self.now.as_nanos()) {
                out.trace = ctx;
            }
        }
        let mut queue: VecDeque<(IfIndex, PacketBuf)> = VecDeque::new();
        queue.push_back((dev, frame));
        let mut hops = 0;
        let mut injected = true;
        while let Some((dev, frame)) = queue.pop_front() {
            hops += 1;
            if hops > 64 {
                self.drop(out, DropReason::ForwardingLoop);
                break;
            }
            // Only the injected frame itself belongs to the burst;
            // anything re-queued is a fresh arrival at another device
            // and pays full single-packet prices.
            let pass = if injected { amort.as_deref_mut() } else { None };
            injected = false;
            self.receive_one(dev, frame, out, &mut queue, pass);
        }
        self.finish_trace(out);
    }

    /// Closes a sampled packet's span and lands it in the trace ring.
    /// No-op for unsampled packets.
    fn finish_trace(&mut self, out: &mut RxOutcome) {
        if !out.trace.enabled() {
            return;
        }
        // A packet can have several effects (bridge floods); summarize
        // by the strongest outcome: anything that left or reached a
        // socket beats an incidental drop, a drop beats nothing at all
        // (queued behind ARP resolution).
        let mut disposition = Disposition::Queued;
        for e in &out.effects {
            match e {
                Effect::Transmit { .. } => {
                    disposition = Disposition::Transmitted;
                    break;
                }
                Effect::Deliver { .. } => disposition = Disposition::Delivered,
                Effect::Drop { reason } => {
                    if disposition == Disposition::Queued {
                        disposition = Disposition::Dropped(*reason);
                    }
                }
            }
        }
        let span = std::mem::take(&mut out.trace).finish(&out.cost, disposition);
        if let Some(recorder) = &self.recorder {
            recorder.record(span);
        }
    }

    pub(super) fn drop(&mut self, out: &mut RxOutcome, reason: DropReason) {
        if let Some(t) = &self.telemetry {
            // Reasons are a small static set; get-or-create is off the
            // common path (drops only).
            t.registry
                .counter("linuxfp_drops_total", &[("reason", reason.as_str())])
                .inc();
            // The sharded datapath also attributes the drop to its
            // owning shard — a separate series so single-core runs keep
            // their exact label set.
            if self.rss_shards > 1 {
                let shard = self.current_shard.to_string();
                t.registry
                    .counter(
                        "linuxfp_shard_drops_total",
                        &[("reason", reason.as_str()), ("shard", shard.as_str())],
                    )
                    .inc();
            }
        }
        *self.drop_counts.entry(reason.as_str()).or_insert(0) += 1;
        out.trace.event(|| TraceEvent::Drop { reason });
        out.effects.push(Effect::Drop { reason });
    }

    pub(super) fn receive_one(
        &mut self,
        dev: IfIndex,
        frame: PacketBuf,
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, PacketBuf)>,
        mut amort: Option<&mut BatchAmort>,
    ) {
        let Some(device) = self.devices.get(&dev) else {
            self.drop(out, DropReason::NoSuchDevice);
            return;
        };
        if !device.up {
            self.drop(out, DropReason::DeviceDown);
            return;
        }
        match device.kind {
            DeviceKind::Physical => match amort.as_deref_mut() {
                Some(a) => {
                    if !a.rx_charged {
                        a.rx_charged = true;
                        a.batch_cost
                            .charge("driver_rx", self.cost.rx_batch_fixed_ns);
                    }
                    out.charge(
                        "driver_rx",
                        self.cost.driver_rx_ns - self.cost.rx_batch_fixed_ns,
                    );
                }
                None => out.charge("driver_rx", self.cost.driver_rx_ns),
            },
            DeviceKind::Veth { .. } => out.charge("veth_cross", self.cost.veth_cross_ns),
            DeviceKind::Bridge | DeviceKind::Vxlan { .. } => {}
        }
        {
            let c = self.counters.entry(dev).or_default();
            c.rx_packets += 1;
            c.rx_bytes += frame.len() as u64;
        }

        let mut pkt = Packet::new(frame, dev.as_u32());

        // RSS steering: the NIC's flow hash picks the receive queue (and
        // therefore the shard/core) before any software runs. The queue
        // index rides on the packet like `xdp_md.rx_queue_index`, so
        // hook programs can select their per-shard caches from it.
        // Skipped entirely at rss_shards=1 — bit-identical to the
        // unsharded path.
        if self.rss_shards > 1 {
            let shard = rss::shard_for(&pkt.data, self.rss_shards);
            pkt.rx_queue = shard;
            self.current_shard = shard;
            out.trace.set_shard(shard);
        }

        // XDP hook: before any sk_buff exists.
        if let Some(hook) = self.xdp_hooks.get(&dev).cloned() {
            match amort.as_deref_mut() {
                Some(a) => {
                    if !a.xdp_charged {
                        a.xdp_charged = true;
                        a.batch_cost
                            .charge("xdp_entry", self.cost.hook_batch_fixed_ns);
                    }
                    out.charge(
                        "xdp_entry",
                        self.cost.xdp_entry_ns - self.cost.hook_batch_fixed_ns,
                    );
                }
                None => out.charge("xdp_entry", self.cost.xdp_entry_ns),
            }
            match hook(self, &mut pkt, &mut out.cost, &mut out.trace) {
                HookVerdict::Pass => {}
                HookVerdict::Drop => {
                    self.drop(out, DropReason::XdpDrop);
                    return;
                }
                HookVerdict::Redirect(target) => {
                    self.transmit(target, pkt.data, out, queue);
                    return;
                }
                HookVerdict::DeliverUser => {
                    // Consumed onto an AF_XDP ring: user space owns it
                    // now, without any sk_buff ever existing.
                    out.effects.push(Effect::Deliver {
                        dev,
                        frame: pkt.data,
                    });
                    return;
                }
            }
        }

        // sk_buff allocation: the cost XDP avoids.
        out.charge("skb_alloc", self.cost.skb_alloc_ns);

        // TC ingress hook.
        if let Some(hook) = self.tc_hooks.get(&dev).cloned() {
            match amort {
                Some(a) => {
                    if !a.tc_charged {
                        a.tc_charged = true;
                        a.batch_cost
                            .charge("tc_entry", self.cost.hook_batch_fixed_ns);
                    }
                    out.charge(
                        "tc_entry",
                        self.cost.tc_entry_ns - self.cost.hook_batch_fixed_ns,
                    );
                }
                None => out.charge("tc_entry", self.cost.tc_entry_ns),
            }
            match hook(self, &mut pkt, &mut out.cost, &mut out.trace) {
                HookVerdict::Pass => {}
                HookVerdict::Drop => {
                    self.drop(out, DropReason::TcDrop);
                    return;
                }
                HookVerdict::Redirect(target) => {
                    self.transmit(target, pkt.data, out, queue);
                    return;
                }
                HookVerdict::DeliverUser => {
                    out.effects.push(Effect::Deliver {
                        dev,
                        frame: pkt.data,
                    });
                    return;
                }
            }
        }

        self.slow_path(dev, pkt.data, out, queue);
    }

    pub(super) fn slow_path(
        &mut self,
        dev: IfIndex,
        frame: PacketBuf,
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, PacketBuf)>,
    ) {
        let Ok(eth) = EthernetFrame::parse(&frame) else {
            self.drop(out, DropReason::MalformedEthernet);
            return;
        };
        let (master, dev_mac, endpoint) = {
            let device = self.devices.get(&dev).expect("checked in receive_one");
            (device.master, device.mac, device.endpoint)
        };

        // Endpoint devices (pod-side veths) hand frames to an external
        // stack: deliver anything addressed to them (or broadcast).
        if endpoint {
            if eth.dst == dev_mac || eth.dst.is_multicast() {
                out.charge("local_deliver", self.cost.local_deliver_ns);
                out.effects.push(Effect::Deliver { dev, frame });
            } else {
                self.drop(out, DropReason::WrongDestinationMac);
            }
            return;
        }

        // Bridge port: L2 processing first.
        if let Some(bridge_idx) = master {
            self.bridge_input(bridge_idx, dev, eth, frame, out, queue);
            return;
        }

        // Non-promiscuous check for ordinary devices.
        if eth.dst != dev_mac && eth.dst.is_unicast() {
            self.drop(out, DropReason::WrongDestinationMac);
            return;
        }

        self.up_stack(dev, eth, frame, out, queue);
    }

    pub(super) fn bridge_input(
        &mut self,
        bridge_idx: IfIndex,
        port: IfIndex,
        eth: EthernetFrame,
        frame: PacketBuf,
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, PacketBuf)>,
    ) {
        out.charge("bridge_stack", self.cost.bridge_stack_ns);
        if let Some(t) = &self.telemetry {
            t.slow_bridge.inc();
        }

        // STP BPDUs are consumed by slow-path protocol processing.
        if eth.dst == BPDU_MAC {
            let stp_on = self
                .bridges
                .get(&bridge_idx)
                .map(|b| b.stp_enabled)
                .unwrap_or(false);
            if stp_on {
                self.bpdus_processed += 1;
            }
            self.drop(out, DropReason::BpduConsumed);
            return;
        }

        let now = self.now;
        let vlan_tag = eth.vlan.map(|t| t.vid);
        // The FDB is shared state: touching it after another shard's
        // learn/age pays the coherence price; the decide below learns
        // (writes), so re-sync afterwards — a shard's own write is hot
        // in its cache.
        self.coherence(CoherentStruct::Fdb, out);
        let Some(bridge) = self.bridges.get_mut(&bridge_idx) else {
            self.drop(out, DropReason::MissingBridge);
            return;
        };
        let decision = bridge.decide(port, eth.src, eth.dst, vlan_tag, now);
        self.coherence_refresh(CoherentStruct::Fdb);

        // br_netfilter: bridged IPv4 frames about to be forwarded also
        // traverse the iptables FORWARD chain (and conntrack), exactly as
        // Kubernetes hosts configure via bridge-nf-call-iptables.
        if matches!(
            decision,
            BridgeDecision::Forward(_) | BridgeDecision::Flood(_)
        ) && eth.ethertype == EtherType::Ipv4
            && self.bridge_nf_enabled()
        {
            if let Ok(ip) = Ipv4Header::parse(&frame[eth.payload_offset..]) {
                let meta = self.packet_meta(port, &frame, eth.payload_offset, &ip);
                if self.conntrack_forward {
                    self.coherence(CoherentStruct::Conntrack, out);
                    out.charge("conntrack", self.cost.conntrack_lookup_ns);
                    let now = self.now;
                    self.conntrack
                        .track(ip.src, meta.sport, ip.dst, meta.dport, ip.proto, now);
                    self.coherence_refresh(CoherentStruct::Conntrack);
                }
                self.coherence(CoherentStruct::Netfilter, out);
                if let Some(t) = &self.telemetry {
                    t.slow_netfilter.inc();
                }
                let verdict = self.netfilter.evaluate_traced(
                    ChainHook::Forward,
                    &meta,
                    &self.cost,
                    &mut out.cost,
                    &mut out.trace,
                );
                if verdict == NfVerdict::Drop {
                    self.drop(out, DropReason::NfForwardDrop);
                    return;
                }
            }
        }

        match decision {
            BridgeDecision::Forward(egress) => {
                self.transmit(egress, frame, out, queue);
            }
            BridgeDecision::Flood(ports) => {
                for (i, egress) in ports.iter().enumerate() {
                    if i > 0 {
                        out.charge("bridge_flood", self.cost.bridge_flood_per_port_ns);
                    }
                    self.transmit(*egress, frame.clone(), out, queue);
                }
                // Broadcast (e.g. ARP) also goes up the bridge's own stack.
                if eth.dst.is_broadcast() || eth.dst.is_multicast() {
                    self.up_stack(bridge_idx, eth, frame, out, queue);
                }
            }
            BridgeDecision::Local => {
                self.up_stack(bridge_idx, eth, frame, out, queue);
            }
            BridgeDecision::Drop(reason) => {
                self.drop(out, reason);
            }
        }
    }

    pub(super) fn up_stack(
        &mut self,
        dev: IfIndex,
        eth: EthernetFrame,
        frame: PacketBuf,
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, PacketBuf)>,
    ) {
        match eth.ethertype {
            EtherType::Arp => self.arp_input(dev, &eth, &frame, out, queue),
            EtherType::Ipv4 => self.ip_input(dev, &eth, frame, out, queue),
            _ => self.drop(out, DropReason::UnhandledEthertype),
        }
    }
}
