//! Receive-side scaling: the multi-queue NIC's flow-to-queue hash.
//!
//! A multi-queue NIC computes a Toeplitz hash over the packet's 5-tuple
//! and indirects it into a receive queue; each queue is serviced by one
//! core. We model exactly that: [`shard_for`] is the hash + indirection,
//! and the queue index travels on `Packet::rx_queue` — the same field XDP
//! programs read via `xdp_md.rx_queue_index`.
//!
//! Two properties matter for correctness of the sharded datapath:
//!
//! - **Symmetry.** Both directions of a flow must land on the same shard
//!   so a connection's cached verdicts (flow cache, conntrack-driven NAT
//!   state) stay core-local. Real deployments get this by programming a
//!   symmetric Toeplitz key (the `0x6d5a` repeating key of Woo &
//!   Park); we get it by hashing the *canonically ordered* endpoint
//!   pair, which is symmetric under any key.
//! - **MAC independence.** The hash reads only L3/L4 fields, so two
//!   kernels that differ in interface MACs (the difftest harness) steer
//!   every flow identically.
//!
//! Non-IPv4 frames (ARP, BPDUs, unparseable runts) have no 5-tuple; real
//! NICs put them on queue 0, and so do we.

use linuxfp_packet::{EtherType, EthernetFrame, IpProto, Ipv4Header};

/// Hard cap on the shard count (`net.linuxfp.rss_shards` is clamped to
/// `1..=MAX_RSS_SHARDS`). Sixteen matches the widest core sweep in the
/// paper's Figure 5.
pub const MAX_RSS_SHARDS: u32 = 16;

/// The Microsoft RSS reference key. The symmetric property comes from
/// canonical endpoint ordering (see module docs), not from the key, so
/// the standard key's good bit-mixing can be kept.
const TOEPLITZ_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// The 32-bit window of the key starting at bit offset `off`.
fn key_window(off: usize) -> u32 {
    let byte = off / 8;
    let shift = off % 8;
    let mut w = 0u64;
    for k in 0..5 {
        w = (w << 8) | u64::from(TOEPLITZ_KEY[(byte + k) % TOEPLITZ_KEY.len()]);
    }
    ((w >> (8 - shift)) & 0xFFFF_FFFF) as u32
}

/// The Toeplitz hash of `data`: for every set input bit, XOR in the
/// 32-bit key window aligned at that bit.
fn toeplitz(data: &[u8]) -> u32 {
    let mut hash = 0u32;
    for (i, &byte) in data.iter().enumerate() {
        for bit in 0..8 {
            if byte & (0x80 >> bit) != 0 {
                hash ^= key_window(i * 8 + bit);
            }
        }
    }
    hash
}

/// The RSS flow hash of an IPv4 frame, or `None` when the frame has no
/// 5-tuple (non-IPv4, truncated). Symmetric: a flow and its reply hash
/// identically.
pub fn flow_hash(frame: &[u8]) -> Option<u32> {
    let eth = EthernetFrame::parse(frame).ok()?;
    if eth.ethertype != EtherType::Ipv4 {
        return None;
    }
    let l3 = eth.payload_offset;
    let ip = Ipv4Header::parse(frame.get(l3..)?).ok()?;
    let l4 = l3 + ip.header_len;
    // Ports sit in the first four bytes of both TCP and UDP headers.
    // Fragments past the first have no L4 header: hash ports as zero so
    // all fragments of a datagram still share a shard.
    let (sport, dport) = match ip.proto {
        IpProto::Tcp | IpProto::Udp if ip.fragment_offset == 0 => match frame.get(l4..l4 + 4) {
            Some(p) => (
                u16::from_be_bytes([p[0], p[1]]),
                u16::from_be_bytes([p[2], p[3]]),
            ),
            None => (0, 0),
        },
        _ => (0, 0),
    };
    // Canonical endpoint ordering makes the hash direction-agnostic.
    let a = (ip.src.octets(), sport);
    let b = (ip.dst.octets(), dport);
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let mut input = [0u8; 13];
    input[..4].copy_from_slice(&lo.0);
    input[4..6].copy_from_slice(&lo.1.to_be_bytes());
    input[6..10].copy_from_slice(&hi.0);
    input[10..12].copy_from_slice(&hi.1.to_be_bytes());
    input[12] = ip.proto.to_u8();
    Some(toeplitz(&input))
}

/// The shard (receive queue) for a frame under an `shards`-queue NIC:
/// the flow hash reduced by the indirection table, queue 0 for frames
/// with no 5-tuple. `shards <= 1` always steers to shard 0.
pub fn shard_for(frame: &[u8], shards: u32) -> u32 {
    if shards <= 1 {
        return 0;
    }
    match flow_hash(frame) {
        Some(h) => h % shards.min(MAX_RSS_SHARDS),
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linuxfp_packet::{builder, MacAddr};
    use std::net::Ipv4Addr;

    fn udp(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        sport: u16,
        dport: u16,
        src_mac: MacAddr,
        dst_mac: MacAddr,
    ) -> Vec<u8> {
        builder::udp_packet(src_mac, dst_mac, src, dst, sport, dport, b"x")
    }

    #[test]
    fn hash_is_symmetric_and_mac_independent() {
        let m1 = MacAddr::new([2, 0, 0, 0, 0, 1]);
        let m2 = MacAddr::new([2, 0, 0, 0, 0, 2]);
        let m3 = MacAddr::new([2, 0, 0, 0, 0, 3]);
        let a = Ipv4Addr::new(10, 0, 1, 7);
        let b = Ipv4Addr::new(10, 0, 2, 9);
        let fwd = udp(a, b, 5000, 53, m1, m2);
        let rev = udp(b, a, 53, 5000, m2, m1);
        let fwd_other_macs = udp(a, b, 5000, 53, m3, m1);
        let h = flow_hash(&fwd).unwrap();
        assert_eq!(h, flow_hash(&rev).unwrap(), "reply must share the shard");
        assert_eq!(h, flow_hash(&fwd_other_macs).unwrap(), "L2 must not matter");
        // A different flow should (for this tuple) hash differently.
        let other = udp(a, b, 5001, 53, m1, m2);
        assert_ne!(h, flow_hash(&other).unwrap());
    }

    #[test]
    fn non_ipv4_and_single_shard_steer_to_zero() {
        assert_eq!(shard_for(&[0u8; 9], 8), 0, "runt");
        let sender = MacAddr::new([2, 0, 0, 0, 0, 1]);
        let arp = builder::arp_frame(
            &linuxfp_packet::ArpPacket::request(
                sender,
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
            ),
            sender,
            MacAddr::BROADCAST,
        );
        assert_eq!(shard_for(&arp, 8), 0, "no 5-tuple");
        let m1 = MacAddr::new([2, 0, 0, 0, 0, 1]);
        let m2 = MacAddr::new([2, 0, 0, 0, 0, 2]);
        let f = udp(
            Ipv4Addr::new(10, 0, 1, 7),
            Ipv4Addr::new(10, 0, 2, 9),
            5000,
            53,
            m1,
            m2,
        );
        assert_eq!(shard_for(&f, 1), 0);
        assert!(shard_for(&f, 8) < 8);
    }

    #[test]
    fn hash_spreads_flows_across_shards() {
        // 64 distinct flows over 8 shards: every shard should see some
        // traffic and no shard should hog more than half.
        let m1 = MacAddr::new([2, 0, 0, 0, 0, 1]);
        let m2 = MacAddr::new([2, 0, 0, 0, 0, 2]);
        let mut counts = [0usize; 8];
        for i in 0..64u16 {
            let f = udp(
                Ipv4Addr::new(10, 0, 1, (i % 200) as u8 + 1),
                Ipv4Addr::new(10, 0, 2, 9),
                5000 + i,
                53,
                m1,
                m2,
            );
            counts[shard_for(&f, 8) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "dead shard: {counts:?}");
        assert!(counts.iter().all(|&c| c < 32), "hot shard: {counts:?}");
    }
}
