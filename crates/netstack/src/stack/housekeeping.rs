//! Periodic slow-path maintenance: the timer work Linux performs off
//! the datapath (FDB aging, conntrack/NAT expiry, neighbor GC).
use super::*;

impl Kernel {
    /// Runs the periodic slow-path housekeeping Linux timers perform:
    /// FDB aging, conntrack expiry, neighbor GC (paper Table I's
    /// "manage FDB (aging)" column).
    pub fn run_housekeeping(&mut self) -> HousekeepingReport {
        let now = self.now;
        let mut report = HousekeepingReport::default();
        for bridge in self.bridges.values_mut() {
            report.fdb_expired += bridge.fdb_gc(now);
        }
        report.conntrack_expired = self.conntrack.gc(now);
        report.nat_expired = self.conntrack.nat_gc(now);
        for port in self.conntrack.take_freed_nat_ports() {
            self.nat.release_port(port);
        }
        for (addr, port) in self.conntrack.take_freed_backends() {
            self.ipvs.release_backend(addr, port);
        }
        report.neigh_expired = self.neigh.gc(now);
        self.record_housekeeping_span(&report);
        report
    }

    /// Advances virtual time (drives FDB/neighbor/conntrack aging).
    ///
    /// Bumps the time generation: lookups that lazily expire entries
    /// (conntrack, neighbor, FDB) can change their answers whenever the
    /// clock moves, so everything the microflow verdict cache recorded
    /// before the advance is invalidated.
    pub fn advance(&mut self, delta: Nanos) {
        self.now += delta;
        self.time_generation = self.time_generation.wrapping_add(1);
    }
}
