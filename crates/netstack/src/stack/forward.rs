//! The L3 forwarding path: `ip_input` through netfilter/NAT/ipvs to
//! `transmit`/`ip_output`, plus ARP resolution queueing and ICMP errors.
use super::*;

impl Kernel {
    pub(super) fn ip_input(
        &mut self,
        dev: IfIndex,
        eth: &EthernetFrame,
        frame: PacketBuf,
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, PacketBuf)>,
    ) {
        out.charge("ip_rcv", self.cost.ip_rcv_ns);
        if let Some(t) = &self.telemetry {
            t.slow_ip.inc();
        }
        let l3 = eth.payload_offset;
        let Ok(ip) = Ipv4Header::parse(&frame[l3..]) else {
            self.drop(out, DropReason::MalformedIpv4);
            return;
        };
        if !ip.verify_checksum(&frame[l3..]) {
            self.drop(out, DropReason::BadIpv4Checksum);
            return;
        }

        let meta = self.packet_meta(dev, &frame, l3, &ip);

        // Conntrack (when enabled for this host).
        if self.conntrack_forward {
            self.coherence(CoherentStruct::Conntrack, out);
            out.charge("conntrack", self.cost.conntrack_lookup_ns);
            let now = self.now;
            self.conntrack
                .track(ip.src, meta.sport, ip.dst, meta.dport, ip.proto, now);
            // track() writes (entry create/refresh): a shard's own write
            // must not read as remote on its next packet.
            self.coherence_refresh(CoherentStruct::Conntrack);
        }

        // PREROUTING.
        self.coherence(CoherentStruct::Netfilter, out);
        if let Some(t) = &self.telemetry {
            t.slow_netfilter.inc();
        }
        let verdict = self.netfilter.evaluate_traced(
            ChainHook::Prerouting,
            &meta,
            &self.cost,
            &mut out.cost,
            &mut out.trace,
        );
        if verdict == NfVerdict::Drop {
            self.drop(out, DropReason::NfPreroutingDrop);
            return;
        }

        let mut frame = frame;
        let mut ip = ip;
        let mut meta = meta;

        // nat PREROUTING: an established binding or a DNAT rule rewrites
        // the destination before routing; the source half (SNAT /
        // masquerade) is applied at POSTROUTING. Rule evaluation and
        // binding management are slow-path work — the fast path reads
        // the resulting bindings through `bpf_nat_lookup`.
        let mut nat_ctx: Option<NatCtx> = None;
        let nat_active = self.nat.total_rules() > 0 || self.conntrack.nat_len() > 0;
        if nat_active && matches!(ip.proto, IpProto::Udp | IpProto::Tcp) {
            self.coherence(CoherentStruct::Nat, out);
            self.coherence(CoherentStruct::Conntrack, out);
            out.charge("nat_lookup", self.cost.conntrack_lookup_ns);
            let now = self.now;
            let tuple = NatTuple::new(ip.src, meta.sport, ip.dst, meta.dport, ip.proto.to_u8());
            nat_ctx = self.nat.prerouting(&mut self.conntrack, tuple, dev, now);
            self.coherence_refresh(CoherentStruct::Nat);
            self.coherence_refresh(CoherentStruct::Conntrack);
            let mut rewritten = false;
            if let Some(ctx) = &nat_ctx {
                if ctx.xlat.dst != tuple.dst || ctx.xlat.dport != tuple.dport {
                    if let Some(t) = &self.telemetry {
                        t.slow_nat.inc();
                    }
                    linuxfp_packet::rewrite_ipv4(
                        &mut frame,
                        l3,
                        &linuxfp_packet::FieldRewrite {
                            dst: Some(ctx.xlat.dst),
                            dport: Some(ctx.xlat.dport),
                            ..Default::default()
                        },
                    );
                    ip = Ipv4Header::parse(&frame[l3..]).expect("rewritten header valid");
                    meta = self.packet_meta(dev, &frame, l3, &ip);
                    rewritten = true;
                }
            }
            Nat::trace_hook(
                &mut out.trace,
                "prerouting",
                rewritten,
                self.cost.conntrack_lookup_ns,
            );
        }

        // ipvs NAT: traffic to a virtual service is rewritten toward a
        // backend — pinned flows reuse their backend; new flows are
        // scheduled here (slow-path work per paper Table I, row 4).
        if !self.ipvs.is_empty() && matches!(ip.proto, IpProto::Udp | IpProto::Tcp) {
            self.coherence(CoherentStruct::Ipvs, out);
            self.coherence(CoherentStruct::Conntrack, out);
            out.charge("conntrack", self.cost.conntrack_lookup_ns);
            let now = self.now;
            let selected = self.ipvs.select_backend(
                &mut self.conntrack,
                ip.src,
                meta.sport,
                ip.dst,
                meta.dport,
                ip.proto,
                now,
            );
            self.coherence_refresh(CoherentStruct::Ipvs);
            self.coherence_refresh(CoherentStruct::Conntrack);
            if let Some((backend_ip, backend_port)) = selected {
                if let Some(t) = &self.telemetry {
                    t.slow_ipvs.inc();
                }
                out.charge("ipvs_sched", self.cost.ipvs_sched_ns);
                Self::ipvs_nat_rewrite(&mut frame, l3, &ip, backend_ip, backend_port);
                ip = Ipv4Header::parse(&frame[l3..]).expect("rewritten header valid");
                meta = self.packet_meta(dev, &frame, l3, &ip);
            }
        }

        // Local delivery?
        let local =
            self.devices.values().any(|d| d.has_addr(ip.dst)) || ip.dst == Ipv4Addr::BROADCAST;
        if local {
            self.coherence(CoherentStruct::Netfilter, out);
            if let Some(t) = &self.telemetry {
                t.slow_netfilter.inc();
            }
            let verdict = self.netfilter.evaluate_traced(
                ChainHook::Input,
                &meta,
                &self.cost,
                &mut out.cost,
                &mut out.trace,
            );
            if verdict == NfVerdict::Drop {
                self.drop(out, DropReason::NfInputDrop);
                return;
            }
            self.local_deliver(dev, eth, frame, &ip, out, queue);
            return;
        }

        // Forwarding path.
        if !self.ip_forward_enabled() {
            self.drop(out, DropReason::ForwardingDisabled);
            return;
        }

        // L7 request policy: parse the HTTP/1.x request line (bounded)
        // and evaluate it against the per-URL-prefix/method table and
        // connection pins. Runs post-DNAT so pins key on the same tuple
        // the fast-path helper sees, and before the FIB so a deny
        // precedes any route-miss ICMP on both paths.
        if self.l7.is_active() && ip.proto == IpProto::Tcp {
            self.coherence(CoherentStruct::L7, out);
            out.charge("l7_policy", self.cost.conntrack_lookup_ns);
            if let Some(t) = &self.telemetry {
                t.slow_l7.inc();
            }
            let key = L7ConnKey {
                src: ip.src,
                sport: meta.sport,
                dst: ip.dst,
                dport: meta.dport,
            };
            let seg = &frame[l3 + ip.header_len..];
            let verdict = match TcpHeader::parse(seg).and_then(|tcp| tcp.payload(seg)) {
                Ok(payload) => self.l7.lookup(key, payload),
                // Truncated header or data offset past the segment end:
                // a typed punt — pinned connections keep their verdict,
                // unpinned ones count as unparseable and forward on.
                Err(_) => self.l7.lookup_hinted(key, b"\x00", Some(0)),
            };
            // lookup may have installed a connection pin (a write).
            self.coherence_refresh(CoherentStruct::L7);
            match verdict {
                L7LookupOutcome::Deny => {
                    self.drop(out, DropReason::L7PolicyDeny);
                    return;
                }
                L7LookupOutcome::Steer(steer_dev) => {
                    // Steered requests bypass FIB routing and exit the
                    // configured device directly (slow-path only: the
                    // fast path punts steer verdicts).
                    out.charge("qdisc_xmit", self.cost.qdisc_xmit_ns);
                    self.transmit(steer_dev, frame, out, queue);
                    return;
                }
                L7LookupOutcome::Allow
                | L7LookupOutcome::NoRequest
                | L7LookupOutcome::Unparseable => {}
            }
        }

        self.coherence(CoherentStruct::Fib, out);
        out.charge("fib_lookup", self.cost.fib_lookup_kernel_ns);
        let Some(route) = self.fib.lookup(ip.dst).copied() else {
            self.icmp_error(&frame, l3, &ip, IcmpType::DestUnreachable(0), out, queue);
            self.drop(out, DropReason::NoRoute);
            return;
        };
        let meta = PacketMeta {
            out_if: route.dev,
            ..meta
        };
        self.coherence(CoherentStruct::Netfilter, out);
        if let Some(t) = &self.telemetry {
            t.slow_netfilter.inc();
        }
        let verdict = self.netfilter.evaluate_traced(
            ChainHook::Forward,
            &meta,
            &self.cost,
            &mut out.cost,
            &mut out.trace,
        );
        if verdict == NfVerdict::Drop {
            self.drop(out, DropReason::NfForwardDrop);
            return;
        }

        out.charge("ip_forward", self.cost.ip_forward_finish_ns);
        if Ipv4Header::decrement_ttl(&mut frame[l3..]).is_none() {
            self.icmp_error(&frame, l3, &ip, IcmpType::TimeExceeded, out, queue);
            self.drop(out, DropReason::TtlExceeded);
            return;
        }

        // nat POSTROUTING: complete fresh translations (SNAT/MASQUERADE
        // rule evaluation, port allocation, binding install) and apply
        // the source half of established bindings. Done before neighbor
        // resolution so ARP-queued frames already carry the rewrite.
        // The POSTROUTING filter chain below still sees the pre-SNAT
        // source, as mangle/filter hooks do in Linux.
        if nat_active && matches!(ip.proto, IpProto::Udp | IpProto::Tcp) {
            self.coherence(CoherentStruct::Nat, out);
            self.coherence(CoherentStruct::Conntrack, out);
            let now = self.now;
            let cur = NatTuple::new(ip.src, meta.sport, ip.dst, meta.dport, ip.proto.to_u8());
            let egress_ip = self
                .devices
                .get(&route.dev)
                .and_then(|d| d.addrs.first().map(|(a, _)| *a));
            let bindings_before = self.conntrack.nat_len();
            let outcome = self.nat.postrouting(
                &mut self.conntrack,
                nat_ctx.take(),
                cur,
                route.dev,
                egress_ip,
                now,
            );
            self.coherence_refresh(CoherentStruct::Nat);
            self.coherence_refresh(CoherentStruct::Conntrack);
            let mut bind_ns = 0.0;
            if self.conntrack.nat_len() > bindings_before {
                // A fresh binding was installed (conntrack-entry-creation
                // class work).
                bind_ns = self.cost.conntrack_create_ns;
                out.charge("nat_bind", bind_ns);
            }
            match outcome {
                PostOutcome::Snat { src, sport } => {
                    if let Some(t) = &self.telemetry {
                        t.slow_nat.inc();
                    }
                    linuxfp_packet::rewrite_ipv4(
                        &mut frame,
                        l3,
                        &linuxfp_packet::FieldRewrite {
                            src: Some(src),
                            sport: Some(sport),
                            ..Default::default()
                        },
                    );
                    Nat::trace_hook(&mut out.trace, "postrouting", true, bind_ns);
                }
                PostOutcome::ExhaustedDrop => {
                    Nat::trace_hook(&mut out.trace, "postrouting", false, bind_ns);
                    self.drop(out, DropReason::NatPortExhaustion);
                    return;
                }
                PostOutcome::None => {
                    Nat::trace_hook(&mut out.trace, "postrouting", false, bind_ns);
                }
            }
        }

        // Neighbor resolution for the next hop.
        self.coherence(CoherentStruct::Neigh, out);
        out.charge("neigh_lookup", self.cost.neigh_lookup_ns);
        let next_hop = match route.scope {
            RouteScope::Link => ip.dst,
            RouteScope::Universe => route.via.unwrap_or(ip.dst),
        };
        let now = self.now;
        match self.neigh.resolved_mac(next_hop, now) {
            Some((dst_mac, _)) => {
                let src_mac = self
                    .devices
                    .get(&route.dev)
                    .map(|d| d.mac)
                    .unwrap_or(MacAddr::ZERO);
                EthernetFrame::rewrite_macs(&mut frame, dst_mac, src_mac);
                if let Some(t) = &self.telemetry {
                    t.slow_netfilter.inc();
                }
                let verdict = self.netfilter.evaluate_traced(
                    ChainHook::Postrouting,
                    &meta,
                    &self.cost,
                    &mut out.cost,
                    &mut out.trace,
                );
                if verdict == NfVerdict::Drop {
                    self.drop(out, DropReason::NfPostroutingDrop);
                    return;
                }
                out.charge("qdisc_xmit", self.cost.qdisc_xmit_ns);
                self.transmit(route.dev, frame, out, queue);
            }
            None => {
                self.arp_resolve_and_queue(route.dev, next_hop, frame, out, queue);
            }
        }
    }

    pub(super) fn arp_resolve_and_queue(
        &mut self,
        egress: IfIndex,
        next_hop: Ipv4Addr,
        frame: PacketBuf,
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, PacketBuf)>,
    ) {
        self.pending_arp
            .entry(next_hop)
            .or_default()
            .push((egress, frame));
        let now = self.now;
        let fresh = self.neigh.mark_incomplete(next_hop, egress, now);
        // mark_incomplete writes the neighbor table.
        self.coherence_refresh(CoherentStruct::Neigh);
        if fresh {
            let Some(egress_dev) = self.devices.get(&egress) else {
                return;
            };
            let our_mac = egress_dev.mac;
            let our_ip = egress_dev
                .connected_prefixes()
                .iter()
                .find(|p| p.contains(next_hop))
                .and_then(|p| egress_dev.addr_in(p))
                .or_else(|| egress_dev.addrs.first().map(|(a, _)| *a));
            let Some(our_ip) = our_ip else {
                self.drop(out, DropReason::NoArpSourceAddress);
                return;
            };
            let req = ArpPacket::request(our_mac, our_ip, next_hop);
            let req_frame = builder::arp_frame(&req, our_mac, MacAddr::BROADCAST);
            self.transmit(egress, req_frame.into(), out, queue);
        }
    }
    /// Generates an ICMP error about `frame` back toward its source —
    /// the slow-path corner-case handling the fast path always punts
    /// (paper Table I: "IP (de)fragmentation, ICMP" stay in Linux).
    /// Suppressed for ICMP originals (other than echo requests), per the
    /// never-error-about-an-error rule.
    pub(super) fn icmp_error(
        &mut self,
        frame: &[u8],
        l3: usize,
        ip: &Ipv4Header,
        kind: IcmpType,
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, PacketBuf)>,
    ) {
        if ip.proto == IpProto::Icmp {
            let is_echo_request = IcmpHeader::parse(&frame[l3 + ip.header_len..])
                .map(|h| h.icmp_type == IcmpType::EchoRequest)
                .unwrap_or(false);
            if !is_echo_request {
                return;
            }
        }
        // Source: an address on the device the packet came in through
        // (fall back to any local address).
        let Some(src_addr) = self
            .device_for_subnet(ip.src)
            .and_then(|d| self.devices.get(&d))
            .and_then(|d| d.addrs.first().map(|(a, _)| *a))
            .or_else(|| {
                self.devices
                    .values()
                    .find_map(|d| d.addrs.first().map(|(a, _)| *a))
            })
        else {
            return;
        };
        out.charge("icmp_error", self.cost.icmp_error_ns);
        // Payload: the offending IP header + first 8 bytes, per RFC 792.
        let quoted_len = (ip.header_len + 8).min(frame.len() - l3);
        let icmp = IcmpHeader::build(kind, 0, 0, &frame[l3..l3 + quoted_len]);
        let total_len = (linuxfp_packet::ipv4::IPV4_MIN_HLEN + icmp.len()) as u16;
        let mut error_frame =
            vec![0u8; linuxfp_packet::ETH_HLEN + linuxfp_packet::ipv4::IPV4_MIN_HLEN + icmp.len()];
        EthernetFrame::write(
            &mut error_frame,
            MacAddr::ZERO, // resolved by ip_output
            MacAddr::ZERO,
            EtherType::Ipv4,
        );
        Ipv4Header::write(
            &mut error_frame[linuxfp_packet::ETH_HLEN..],
            src_addr,
            ip.src,
            IpProto::Icmp,
            64,
            0,
            total_len,
            false,
        );
        error_frame[linuxfp_packet::ETH_HLEN + linuxfp_packet::ipv4::IPV4_MIN_HLEN..]
            .copy_from_slice(&icmp);
        self.ip_output(error_frame.into(), ip.src, out, queue);
    }

    /// Rewrites the destination of a frame to an ipvs backend through
    /// the shared incremental checksum-delta helper — the same audited
    /// implementation NAT and the synthesized fast paths use (UDP
    /// checksum cleared, TCP checksum delta-updated).
    pub(super) fn ipvs_nat_rewrite(
        frame: &mut [u8],
        l3: usize,
        _ip: &Ipv4Header,
        backend_ip: Ipv4Addr,
        backend_port: u16,
    ) {
        linuxfp_packet::rewrite_ipv4(
            frame,
            l3,
            &linuxfp_packet::FieldRewrite {
                dst: Some(backend_ip),
                dport: Some(backend_port),
                ..Default::default()
            },
        );
    }
    /// Transmits a frame out `dev`, following device semantics: physical
    /// NICs emit an [`Effect::Transmit`], veth re-enters the peer, bridge
    /// masters forward/flood, VXLAN devices encapsulate.
    pub fn transmit_frame(&mut self, dev: IfIndex, frame: impl Into<PacketBuf>) -> RxOutcome {
        let mut out = RxOutcome::default();
        let mut queue = VecDeque::new();
        self.transmit(dev, frame.into(), &mut out, &mut queue);
        while let Some((d, f)) = queue.pop_front() {
            self.receive_one(d, f, &mut out, &mut queue, None);
        }
        out
    }

    pub(super) fn transmit(
        &mut self,
        dev: IfIndex,
        frame: PacketBuf,
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, PacketBuf)>,
    ) {
        let Some(device) = self.devices.get(&dev) else {
            self.drop(out, DropReason::TransmitMissingDevice);
            return;
        };
        if !device.up {
            self.drop(out, DropReason::TransmitDownDevice);
            return;
        }
        match device.kind.clone() {
            DeviceKind::Physical => {
                out.charge("driver_tx", self.cost.driver_tx_ns);
                let c = self.counters.entry(dev).or_default();
                c.tx_packets += 1;
                c.tx_bytes += frame.len() as u64;
                out.effects.push(Effect::Transmit { dev, frame });
            }
            DeviceKind::Veth { peer } => {
                queue.push_back((peer, frame));
            }
            DeviceKind::Bridge => {
                // Transmit *on* the bridge device: forward by FDB.
                let Ok(eth) = EthernetFrame::parse(&frame) else {
                    self.drop(out, DropReason::MalformedEthernet);
                    return;
                };
                let now = self.now;
                let vlan = eth.vlan.map(|t| t.vid).unwrap_or(0);
                let lookup = match self.bridges.get_mut(&dev) {
                    Some(bridge) => bridge.fdb_lookup(eth.dst, vlan, now),
                    None => {
                        self.drop(out, DropReason::MissingBridge);
                        return;
                    }
                };
                match lookup {
                    Some(egress) => self.transmit(egress, frame, out, queue),
                    None => {
                        let ports = self
                            .bridges
                            .get(&dev)
                            .map(|b| b.flood_ports(IfIndex::NONE, vlan))
                            .unwrap_or_default();
                        for egress in ports {
                            out.charge("bridge_flood", self.cost.bridge_flood_per_port_ns);
                            self.transmit(egress, frame.clone(), out, queue);
                        }
                    }
                }
            }
            DeviceKind::Vxlan {
                vni,
                local,
                port: _,
            } => {
                out.charge("vxlan_encap", self.cost.vxlan_encap_ns);
                let Ok(eth) = EthernetFrame::parse(&frame) else {
                    self.drop(out, DropReason::MalformedEthernet);
                    return;
                };
                let remotes: Vec<Ipv4Addr> = if eth.dst.is_unicast() {
                    match self.vxlan_fdb.get(&dev).and_then(|m| m.get(&eth.dst)) {
                        Some(vtep) => vec![*vtep],
                        None => self.vxlan_defaults.get(&dev).cloned().unwrap_or_default(),
                    }
                } else {
                    self.vxlan_defaults.get(&dev).cloned().unwrap_or_default()
                };
                if remotes.is_empty() {
                    self.drop(out, DropReason::VxlanNoRemoteVtep);
                    return;
                }
                for vtep in remotes {
                    let outer = builder::vxlan_encapsulate(
                        &frame,
                        vni,
                        MacAddr::ZERO, // filled by ip_output below
                        MacAddr::ZERO,
                        local,
                        vtep,
                        49152,
                    );
                    self.ip_output(outer.into(), vtep, out, queue);
                }
            }
        }
    }

    /// Routes a locally generated IP frame (MACs unresolved) toward
    /// `next_ip` and transmits it.
    pub(super) fn ip_output(
        &mut self,
        mut frame: PacketBuf,
        next_ip: Ipv4Addr,
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, PacketBuf)>,
    ) {
        self.coherence(CoherentStruct::Fib, out);
        out.charge("fib_lookup", self.cost.fib_lookup_kernel_ns);
        let Some(route) = self.fib.lookup(next_ip).copied() else {
            self.drop(out, DropReason::NoRouteOutput);
            return;
        };
        let next_hop = match route.scope {
            RouteScope::Link => next_ip,
            RouteScope::Universe => route.via.unwrap_or(next_ip),
        };
        self.coherence(CoherentStruct::Neigh, out);
        out.charge("neigh_lookup", self.cost.neigh_lookup_ns);
        let now = self.now;
        match self.neigh.resolved_mac(next_hop, now) {
            Some((dst_mac, _)) => {
                let src_mac = self
                    .devices
                    .get(&route.dev)
                    .map(|d| d.mac)
                    .unwrap_or(MacAddr::ZERO);
                EthernetFrame::rewrite_macs(&mut frame, dst_mac, src_mac);
                out.charge("qdisc_xmit", self.cost.qdisc_xmit_ns);
                self.transmit(route.dev, frame, out, queue);
            }
            None => {
                self.arp_resolve_and_queue(route.dev, next_hop, frame, out, queue);
            }
        }
    }
}
