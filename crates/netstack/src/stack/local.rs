//! Local termination: ARP handling, local delivery (VXLAN decap, ICMP
//! echo), address ownership and packet metadata extraction.
use super::*;

impl Kernel {
    pub(super) fn arp_input(
        &mut self,
        dev: IfIndex,
        eth: &EthernetFrame,
        frame: &[u8],
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, PacketBuf)>,
    ) {
        if let Some(t) = &self.telemetry {
            t.slow_arp.inc();
        }
        let Ok(arp) = ArpPacket::parse(&frame[eth.payload_offset..]) else {
            self.drop(out, DropReason::MalformedArp);
            return;
        };
        let device = self.devices.get(&dev).expect("exists");
        let our_mac = device.mac;
        let target_is_ours = device.has_addr(arp.target_ip);

        // Learn the sender (Linux learns from both requests and replies
        // addressed to it).
        if target_is_ours || arp.op == ArpOp::Reply {
            let now = self.now;
            self.neigh.learn(arp.sender_ip, arp.sender_mac, dev, now);
            self.netlink.publish(NetlinkMessage::NewNeigh {
                addr: arp.sender_ip,
                mac: arp.sender_mac,
                dev,
            });
            self.flush_pending_arp(arp.sender_ip, out, queue);
        }

        if arp.op == ArpOp::Request && target_is_ours {
            let reply = arp.reply_to(our_mac);
            let reply_frame = builder::arp_frame(&reply, our_mac, arp.sender_mac);
            self.transmit(dev, reply_frame.into(), out, queue);
        } else {
            // Consumed by the ARP state machine: recorded as an effect
            // (but intentionally not counted as a datapath drop).
            out.trace.event(|| TraceEvent::Drop {
                reason: DropReason::ArpConsumed,
            });
            out.effects.push(Effect::Drop {
                reason: DropReason::ArpConsumed,
            });
        }
    }

    pub(super) fn flush_pending_arp(
        &mut self,
        resolved: Ipv4Addr,
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, PacketBuf)>,
    ) {
        let Some(waiting) = self.pending_arp.remove(&resolved) else {
            return;
        };
        let now = self.now;
        let Some((mac, _)) = self.neigh.resolved_mac(resolved, now) else {
            return;
        };
        for (egress, mut frame) in waiting {
            if let Some(egress_dev) = self.devices.get(&egress) {
                let src = egress_dev.mac;
                EthernetFrame::rewrite_macs(&mut frame, mac, src);
                self.transmit(egress, frame, out, queue);
            }
        }
    }
    pub(super) fn local_deliver(
        &mut self,
        dev: IfIndex,
        eth: &EthernetFrame,
        frame: PacketBuf,
        ip: &Ipv4Header,
        out: &mut RxOutcome,
        queue: &mut VecDeque<(IfIndex, PacketBuf)>,
    ) {
        if let Some(t) = &self.telemetry {
            t.slow_local.inc();
        }
        out.charge("local_deliver", self.cost.local_deliver_ns);
        let l3 = eth.payload_offset;
        let l4 = l3 + ip.header_len;

        // VXLAN termination: UDP to the VXLAN port of a local VXLAN
        // device decapsulates and re-enters as a frame on that device's
        // bridge context.
        if ip.proto == IpProto::Udp {
            if let Ok(udp) = UdpHeader::parse(&frame[l4..]) {
                if let Some(vxlan_dev) = self.vxlan_device_for(ip.dst, udp.dst_port) {
                    out.charge("vxlan_decap", self.cost.vxlan_decap_ns);
                    if let Ok((_vni, inner)) = builder::vxlan_decapsulate(&frame) {
                        // The inner frame appears as if received on the
                        // VXLAN device, which is typically a bridge port.
                        queue.push_back((vxlan_dev, inner.into()));
                        return;
                    }
                    self.drop(out, DropReason::MalformedVxlan);
                    return;
                }
            }
        }

        // ICMP echo responder.
        if ip.proto == IpProto::Icmp {
            if let Ok(icmp) = IcmpHeader::parse(&frame[l4..]) {
                if icmp.icmp_type == IcmpType::EchoRequest {
                    let payload = &frame[l4 + 8..];
                    let reply = IcmpHeader::build(IcmpType::EchoReply, icmp.id, icmp.seq, payload);
                    let total_len = (ip.header_len + reply.len()) as u16;
                    let mut reply_frame =
                        vec![0u8; linuxfp_packet::ETH_HLEN + ip.header_len + reply.len()];
                    EthernetFrame::write(&mut reply_frame, eth.src, eth.dst, EtherType::Ipv4);
                    Ipv4Header::write(
                        &mut reply_frame[linuxfp_packet::ETH_HLEN..],
                        ip.dst,
                        ip.src,
                        IpProto::Icmp,
                        64,
                        ip.id,
                        total_len,
                        true,
                    );
                    reply_frame[linuxfp_packet::ETH_HLEN + ip.header_len..].copy_from_slice(&reply);
                    self.transmit(dev, reply_frame.into(), out, queue);
                    return;
                }
            }
        }

        out.effects.push(Effect::Deliver { dev, frame });
    }
    pub(super) fn vxlan_device_for(&self, dst: Ipv4Addr, port: u16) -> Option<IfIndex> {
        self.devices
            .values()
            .find(|d| match d.kind {
                DeviceKind::Vxlan {
                    local, port: vport, ..
                } => vport == port && (local == dst || self.owns_addr(dst)),
                _ => false,
            })
            .map(|d| d.index)
    }

    pub(super) fn owns_addr(&self, addr: Ipv4Addr) -> bool {
        self.devices.values().any(|d| d.has_addr(addr))
    }

    pub(super) fn packet_meta(
        &self,
        dev: IfIndex,
        frame: &[u8],
        l3: usize,
        ip: &Ipv4Header,
    ) -> PacketMeta {
        let l4 = l3 + ip.header_len;
        let (sport, dport) = match ip.proto {
            IpProto::Udp => UdpHeader::parse(&frame[l4..])
                .map(|u| (u.src_port, u.dst_port))
                .unwrap_or((0, 0)),
            IpProto::Tcp => linuxfp_packet::TcpHeader::parse(&frame[l4..])
                .map(|t| (t.src_port, t.dst_port))
                .unwrap_or((0, 0)),
            _ => (0, 0),
        };
        PacketMeta {
            src: ip.src,
            dst: ip.dst,
            proto: ip.proto,
            sport,
            dport,
            in_if: dev,
            out_if: IfIndex::NONE,
        }
    }
}
