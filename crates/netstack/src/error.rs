//! Error type for kernel configuration operations.

use std::fmt;

/// Errors returned by configuration operations on the simulated kernel —
/// the analogue of `errno` results from netlink requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No interface with the given index or name exists (`ENODEV`).
    NoSuchDevice(String),
    /// An interface with the given name already exists (`EEXIST`).
    DeviceExists(String),
    /// The referenced route, rule, chain or set does not exist (`ENOENT`).
    NotFound(String),
    /// The entity being created already exists (`EEXIST`).
    AlreadyExists(String),
    /// The operation is invalid for the device kind or current state
    /// (`EINVAL`).
    Invalid(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NoSuchDevice(name) => write!(f, "no such device: {name}"),
            NetError::DeviceExists(name) => write!(f, "device already exists: {name}"),
            NetError::NotFound(what) => write!(f, "not found: {what}"),
            NetError::AlreadyExists(what) => write!(f, "already exists: {what}"),
            NetError::Invalid(what) => write!(f, "invalid operation: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            NetError::NoSuchDevice("eth9".into()).to_string(),
            "no such device: eth9"
        );
        assert!(NetError::Invalid("x".into())
            .to_string()
            .contains("invalid"));
        assert!(NetError::NotFound("r".into())
            .to_string()
            .contains("not found"));
        assert!(NetError::AlreadyExists("r".into())
            .to_string()
            .contains("already"));
        assert!(NetError::DeviceExists("e".into())
            .to_string()
            .contains("exists"));
    }
}
