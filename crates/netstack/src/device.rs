//! Network devices: physical NICs, veth pairs, bridges, VXLAN tunnels.
//!
//! Devices carry the attachment points for fast-path programs: an XDP slot
//! (run before any `sk_buff` exists) and a TC ingress slot (run after
//! `sk_buff` allocation). The slots hold opaque callbacks so that this
//! crate stays independent of the eBPF runtime that fills them.

use linuxfp_packet::ipv4::Prefix;
use linuxfp_packet::MacAddr;
use std::fmt;
use std::net::Ipv4Addr;

/// A kernel interface index. Index 0 is reserved ("no interface").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct IfIndex(pub u32);

impl IfIndex {
    /// The reserved null index.
    pub const NONE: IfIndex = IfIndex(0);

    /// The raw index value.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for IfIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "if{}", self.0)
    }
}

impl From<u32> for IfIndex {
    fn from(v: u32) -> Self {
        IfIndex(v)
    }
}

/// What kind of device this is, with kind-specific wiring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceKind {
    /// A physical NIC; transmissions leave the simulated host.
    Physical,
    /// One end of a veth pair; transmissions arrive at the peer.
    Veth {
        /// The other end of the pair.
        peer: IfIndex,
    },
    /// A bridge master device (the `br0` in `brctl addbr br0`).
    Bridge,
    /// A VXLAN tunnel device: frames sent here are encapsulated in
    /// UDP/VXLAN toward a remote VTEP resolved per destination.
    Vxlan {
        /// VXLAN network identifier.
        vni: u32,
        /// Local tunnel endpoint address.
        local: Ipv4Addr,
        /// UDP source port used for encapsulated traffic.
        port: u16,
    },
}

impl DeviceKind {
    /// Short name used in dumps (mirrors `ip link` TYPE output).
    pub fn kind_name(&self) -> &'static str {
        match self {
            DeviceKind::Physical => "physical",
            DeviceKind::Veth { .. } => "veth",
            DeviceKind::Bridge => "bridge",
            DeviceKind::Vxlan { .. } => "vxlan",
        }
    }
}

/// A network interface and its configuration state.
#[derive(Debug, Clone)]
pub struct NetDevice {
    /// Kernel-assigned index.
    pub index: IfIndex,
    /// Interface name (`eth0`, `br0`, `veth11`, ...).
    pub name: String,
    /// Device kind and kind-specific wiring.
    pub kind: DeviceKind,
    /// Hardware address.
    pub mac: MacAddr,
    /// Assigned IPv4 addresses as `(address, prefix length)` pairs.
    pub addrs: Vec<(Ipv4Addr, u8)>,
    /// Administrative and operational up state.
    pub up: bool,
    /// Maximum transmission unit.
    pub mtu: u32,
    /// Bridge this device is enslaved to, if any.
    pub master: Option<IfIndex>,
    /// Whether an XDP program is attached (the callback itself lives in
    /// [`crate::stack::Kernel`]).
    pub has_xdp: bool,
    /// Whether a TC ingress program is attached.
    pub has_tc_ingress: bool,
    /// Whether this device terminates traffic in an external stack (a
    /// pod's network namespace): frames addressed to it are delivered
    /// without entering this kernel's IP processing.
    pub endpoint: bool,
}

impl NetDevice {
    /// Creates a device in the down state with no addresses.
    pub fn new(index: IfIndex, name: impl Into<String>, kind: DeviceKind, mac: MacAddr) -> Self {
        NetDevice {
            index,
            name: name.into(),
            kind,
            mac,
            addrs: Vec::new(),
            up: false,
            mtu: 1500,
            master: None,
            has_xdp: false,
            has_tc_ingress: false,
            endpoint: false,
        }
    }

    /// Whether `addr` is exactly one of this device's assigned addresses.
    pub fn has_addr(&self, addr: Ipv4Addr) -> bool {
        self.addrs.iter().any(|(a, _)| *a == addr)
    }

    /// The connected subnets implied by the assigned addresses.
    pub fn connected_prefixes(&self) -> Vec<Prefix> {
        self.addrs
            .iter()
            .map(|(a, l)| Prefix::new(*a, *l))
            .collect()
    }

    /// The first assigned address inside `subnet`, used as the source for
    /// locally generated packets (ARP, ICMP errors).
    pub fn addr_in(&self, subnet: &Prefix) -> Option<Ipv4Addr> {
        self.addrs
            .iter()
            .map(|(a, _)| *a)
            .find(|a| subnet.contains(*a))
    }

    /// Whether the device is a bridge member port.
    pub fn is_bridge_port(&self) -> bool {
        self.master.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ifindex_basics() {
        assert_eq!(IfIndex::NONE.as_u32(), 0);
        assert_eq!(IfIndex::from(3), IfIndex(3));
        assert_eq!(IfIndex(7).to_string(), "if7");
    }

    #[test]
    fn kind_names() {
        assert_eq!(DeviceKind::Physical.kind_name(), "physical");
        assert_eq!(DeviceKind::Bridge.kind_name(), "bridge");
        assert_eq!(DeviceKind::Veth { peer: IfIndex(2) }.kind_name(), "veth");
        assert_eq!(
            DeviceKind::Vxlan {
                vni: 1,
                local: Ipv4Addr::UNSPECIFIED,
                port: 4789
            }
            .kind_name(),
            "vxlan"
        );
    }

    #[test]
    fn address_queries() {
        let mut dev = NetDevice::new(
            IfIndex(1),
            "eth0",
            DeviceKind::Physical,
            MacAddr::from_index(1),
        );
        dev.addrs.push((Ipv4Addr::new(10, 0, 0, 1), 24));
        assert!(dev.has_addr(Ipv4Addr::new(10, 0, 0, 1)));
        assert!(!dev.has_addr(Ipv4Addr::new(10, 0, 0, 2)));
        let prefixes = dev.connected_prefixes();
        assert_eq!(prefixes, vec!["10.0.0.0/24".parse().unwrap()]);
        assert_eq!(
            dev.addr_in(&"10.0.0.0/8".parse().unwrap()),
            Some(Ipv4Addr::new(10, 0, 0, 1))
        );
        assert_eq!(dev.addr_in(&"192.168.0.0/16".parse().unwrap()), None);
        assert!(!dev.is_bridge_port());
    }
}
