//! ipvs-style load balancing: virtual services, backend scheduling, and
//! NAT rewriting, with flow affinity pinned in conntrack.
//!
//! The paper's Table I includes load balancing (ipvs) in the acceleration
//! model and §VIII reports initial prototyping: the split gives the fast
//! path parsing, rewriting and conntrack *lookup*, while the slow path
//! keeps conntrack entry handling and the **scheduling algorithms**. This
//! module is the slow-path side: the first packet of a flow is scheduled
//! onto a backend here and pinned in the conntrack table; every later
//! packet — on either path — finds the pinned backend there.

use crate::conntrack::{Conntrack, FlowKey};
use linuxfp_packet::ipv4::IpProto;
use linuxfp_sim::Nanos;
use linuxfp_telemetry::Counter;
use std::net::Ipv4Addr;

/// Backend selection algorithms (`ipvsadm -s rr|lc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// Round robin.
    RoundRobin,
    /// Least connections (by live pinned flows).
    LeastConn,
}

/// One real server behind a virtual service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backend {
    /// Real server address.
    pub addr: Ipv4Addr,
    /// Real server port.
    pub port: u16,
    /// Live connections pinned to this backend (for `LeastConn`).
    pub active: u64,
}

/// A virtual service (`ipvsadm -A -u <vip>:<port>`).
#[derive(Debug, Clone)]
pub struct VirtualService {
    /// The service address clients target.
    pub vip: Ipv4Addr,
    /// The service port.
    pub port: u16,
    /// Service protocol (the fast path accelerates UDP; TCP flows are
    /// slow-path only in this prototype).
    pub proto: IpProto,
    /// The scheduler in use.
    pub scheduler: Scheduler,
    backends: Vec<Backend>,
    rr_next: usize,
}

impl VirtualService {
    /// The configured backends.
    pub fn backends(&self) -> &[Backend] {
        &self.backends
    }
}

/// The ipvs subsystem state.
#[derive(Debug, Clone, Default)]
pub struct Ipvs {
    services: Vec<VirtualService>,
    /// Monotonic generation, bumped on configuration changes (consumed by
    /// the LinuxFP controller like the netfilter generation).
    pub generation: u64,
    selections: Option<Counter>,
}

impl Ipvs {
    /// Creates an empty subsystem.
    pub fn new() -> Self {
        Ipvs::default()
    }

    /// Counts every backend-selection attempt into `counter`.
    pub fn set_selection_counter(&mut self, counter: Counter) {
        self.selections = Some(counter);
    }

    /// Adds a virtual service; returns `false` if `(vip, port, proto)`
    /// already exists.
    pub fn add_service(
        &mut self,
        vip: Ipv4Addr,
        port: u16,
        proto: IpProto,
        scheduler: Scheduler,
    ) -> bool {
        if self.find(vip, port, proto).is_some() {
            return false;
        }
        self.services.push(VirtualService {
            vip,
            port,
            proto,
            scheduler,
            backends: Vec::new(),
            rr_next: 0,
        });
        self.generation += 1;
        true
    }

    /// Adds a backend to a service; returns `false` if the service does
    /// not exist or the backend is already registered.
    pub fn add_backend(
        &mut self,
        vip: Ipv4Addr,
        port: u16,
        proto: IpProto,
        addr: Ipv4Addr,
        backend_port: u16,
    ) -> bool {
        let Some(idx) = self.find(vip, port, proto) else {
            return false;
        };
        let svc = &mut self.services[idx];
        if svc
            .backends
            .iter()
            .any(|b| b.addr == addr && b.port == backend_port)
        {
            return false;
        }
        svc.backends.push(Backend {
            addr,
            port: backend_port,
            active: 0,
        });
        self.generation += 1;
        true
    }

    fn find(&self, vip: Ipv4Addr, port: u16, proto: IpProto) -> Option<usize> {
        self.services
            .iter()
            .position(|s| s.vip == vip && s.port == port && s.proto == proto)
    }

    /// Releases one pinned connection from a backend (saturating): called
    /// when conntrack evicts a flow whose entry carried a backend pin, so
    /// `LeastConn` scheduling stops counting the forgotten flow.
    pub fn release_backend(&mut self, addr: Ipv4Addr, port: u16) {
        for svc in &mut self.services {
            for b in &mut svc.backends {
                if b.addr == addr && b.port == port {
                    b.active = b.active.saturating_sub(1);
                    return;
                }
            }
        }
    }

    /// The configured services.
    pub fn services(&self) -> &[VirtualService] {
        &self.services
    }

    /// Whether any service is configured.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// Slow-path packet handling: if `(dst, dport, proto)` is a virtual
    /// service, return the backend for this flow — the pinned one if the
    /// flow is known, otherwise freshly scheduled and pinned in
    /// `conntrack`. Returns `None` for non-service traffic or services
    /// with no backends.
    #[allow(clippy::too_many_arguments)]
    pub fn select_backend(
        &mut self,
        conntrack: &mut Conntrack,
        src: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        proto: IpProto,
        now: Nanos,
    ) -> Option<(Ipv4Addr, u16)> {
        if let Some(c) = &self.selections {
            c.inc();
        }
        let idx = self.find(dst, dport, proto)?;
        let key = FlowKey::new(src, sport, dst, dport, proto);
        // Affinity: a pinned flow keeps its backend (fast path does the
        // same through bpf_ct_lookup).
        if let Some(entry) = conntrack.lookup(&key, now) {
            if let Some(backend) = entry.backend {
                return Some(backend);
            }
        }
        let svc = &mut self.services[idx];
        if svc.backends.is_empty() {
            return None;
        }
        let chosen = match svc.scheduler {
            Scheduler::RoundRobin => {
                let i = svc.rr_next % svc.backends.len();
                svc.rr_next = svc.rr_next.wrapping_add(1);
                i
            }
            Scheduler::LeastConn => svc
                .backends
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.active)
                .map(|(i, _)| i)
                .expect("non-empty"),
        };
        svc.backends[chosen].active += 1;
        let backend = (svc.backends[chosen].addr, svc.backends[chosen].port);
        conntrack.track(src, sport, dst, dport, proto, now);
        conntrack.set_backend(&key, backend);
        Some(backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vip() -> Ipv4Addr {
        Ipv4Addr::new(10, 96, 0, 10)
    }

    fn setup(sched: Scheduler) -> (Ipvs, Conntrack) {
        let mut ipvs = Ipvs::new();
        assert!(ipvs.add_service(vip(), 53, IpProto::Udp, sched));
        assert!(!ipvs.add_service(vip(), 53, IpProto::Udp, sched));
        for i in 0..3u8 {
            assert!(ipvs.add_backend(
                vip(),
                53,
                IpProto::Udp,
                Ipv4Addr::new(10, 0, 2, 10 + i),
                5300 + u16::from(i)
            ));
        }
        (ipvs, Conntrack::new())
    }

    #[test]
    fn round_robin_spreads_new_flows() {
        let (mut ipvs, mut ct) = setup(Scheduler::RoundRobin);
        let mut seen = Vec::new();
        for sport in 0..6u16 {
            let b = ipvs
                .select_backend(
                    &mut ct,
                    Ipv4Addr::new(10, 0, 1, 100),
                    40000 + sport,
                    vip(),
                    53,
                    IpProto::Udp,
                    Nanos::ZERO,
                )
                .unwrap();
            seen.push(b.0.octets()[3]);
        }
        assert_eq!(seen, vec![10, 11, 12, 10, 11, 12]);
    }

    #[test]
    fn flows_are_pinned() {
        let (mut ipvs, mut ct) = setup(Scheduler::RoundRobin);
        let first = ipvs
            .select_backend(
                &mut ct,
                Ipv4Addr::new(10, 0, 1, 100),
                40000,
                vip(),
                53,
                IpProto::Udp,
                Nanos::ZERO,
            )
            .unwrap();
        for _ in 0..5 {
            let again = ipvs
                .select_backend(
                    &mut ct,
                    Ipv4Addr::new(10, 0, 1, 100),
                    40000,
                    vip(),
                    53,
                    IpProto::Udp,
                    Nanos::from_millis(1),
                )
                .unwrap();
            assert_eq!(again, first, "affinity broken");
        }
        // A different flow advances the scheduler.
        let other = ipvs
            .select_backend(
                &mut ct,
                Ipv4Addr::new(10, 0, 1, 100),
                40001,
                vip(),
                53,
                IpProto::Udp,
                Nanos::ZERO,
            )
            .unwrap();
        assert_ne!(other, first);
    }

    #[test]
    fn least_conn_prefers_idle_backends() {
        let (mut ipvs, mut ct) = setup(Scheduler::LeastConn);
        // Three new flows land on three distinct backends.
        let mut seen = std::collections::HashSet::new();
        for sport in 0..3u16 {
            let b = ipvs
                .select_backend(
                    &mut ct,
                    Ipv4Addr::new(10, 0, 1, 100),
                    41000 + sport,
                    vip(),
                    53,
                    IpProto::Udp,
                    Nanos::ZERO,
                )
                .unwrap();
            seen.insert(b);
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn release_backend_decrements_and_saturates() {
        let (mut ipvs, mut ct) = setup(Scheduler::LeastConn);
        let first = ipvs
            .select_backend(
                &mut ct,
                Ipv4Addr::new(10, 0, 1, 100),
                41000,
                vip(),
                53,
                IpProto::Udp,
                Nanos::ZERO,
            )
            .unwrap();
        let active = |ipvs: &Ipvs, b: (Ipv4Addr, u16)| {
            ipvs.services()[0]
                .backends()
                .iter()
                .find(|x| (x.addr, x.port) == b)
                .unwrap()
                .active
        };
        assert_eq!(active(&ipvs, first), 1);
        ipvs.release_backend(first.0, first.1);
        assert_eq!(active(&ipvs, first), 0);
        // Saturates instead of underflowing; unknown backends are no-ops.
        ipvs.release_backend(first.0, first.1);
        assert_eq!(active(&ipvs, first), 0);
        ipvs.release_backend(Ipv4Addr::new(9, 9, 9, 9), 1);
    }

    #[test]
    fn non_service_traffic_ignored() {
        let (mut ipvs, mut ct) = setup(Scheduler::RoundRobin);
        assert!(ipvs
            .select_backend(
                &mut ct,
                Ipv4Addr::new(10, 0, 1, 100),
                1,
                Ipv4Addr::new(8, 8, 8, 8),
                53,
                IpProto::Udp,
                Nanos::ZERO
            )
            .is_none());
        // Wrong port.
        assert!(ipvs
            .select_backend(
                &mut ct,
                Ipv4Addr::new(10, 0, 1, 100),
                1,
                vip(),
                54,
                IpProto::Udp,
                Nanos::ZERO
            )
            .is_none());
        // Wrong proto.
        assert!(ipvs
            .select_backend(
                &mut ct,
                Ipv4Addr::new(10, 0, 1, 100),
                1,
                vip(),
                53,
                IpProto::Tcp,
                Nanos::ZERO
            )
            .is_none());
    }

    #[test]
    fn service_without_backends_yields_none() {
        let mut ipvs = Ipvs::new();
        ipvs.add_service(vip(), 80, IpProto::Udp, Scheduler::RoundRobin);
        let mut ct = Conntrack::new();
        assert!(ipvs
            .select_backend(
                &mut ct,
                Ipv4Addr::new(1, 1, 1, 1),
                1,
                vip(),
                80,
                IpProto::Udp,
                Nanos::ZERO
            )
            .is_none());
        assert!(ipvs.services()[0].backends().is_empty());
        assert!(!ipvs.is_empty());
    }

    #[test]
    fn duplicate_backend_rejected_and_generation_bumps() {
        let mut ipvs = Ipvs::new();
        let g0 = ipvs.generation;
        ipvs.add_service(vip(), 53, IpProto::Udp, Scheduler::RoundRobin);
        assert!(ipvs.generation > g0);
        assert!(ipvs.add_backend(vip(), 53, IpProto::Udp, Ipv4Addr::new(10, 0, 2, 10), 53));
        assert!(!ipvs.add_backend(vip(), 53, IpProto::Udp, Ipv4Addr::new(10, 0, 2, 10), 53));
        assert!(!ipvs.add_backend(vip(), 99, IpProto::Udp, Ipv4Addr::new(10, 0, 2, 10), 53));
    }
}
