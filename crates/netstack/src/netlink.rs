//! Netlink: the kernel's configuration notification bus.
//!
//! The LinuxFP controller "continuously introspects the Linux kernel" by
//! (1) dumping current state at startup and (2) joining netlink multicast
//! groups to hear about changes (paper §IV-C1). This module provides the
//! simulated equivalent: typed messages, multicast groups, and per-
//! subscriber queues. Dump requests are methods on
//! [`crate::stack::Kernel`] (`dump_links`, `dump_routes`, ...), matching
//! how `RTM_GETLINK`-style requests work.

use crate::device::IfIndex;
use linuxfp_packet::ipv4::Prefix;
use linuxfp_packet::MacAddr;
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// Multicast groups a subscriber can join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NlGroup {
    /// Link add/remove/up/down/master changes (`RTNLGRP_LINK`).
    Link,
    /// Address changes (`RTNLGRP_IPV4_IFADDR`).
    Addr,
    /// Route changes (`RTNLGRP_IPV4_ROUTE`).
    Route,
    /// Neighbor table changes (`RTNLGRP_NEIGH`).
    Neigh,
    /// Netfilter rule/set changes (in real Linux these arrive via
    /// `NFNL`/iptables polling — the paper uses libipte for this part).
    Netfilter,
    /// Sysctl changes (not a real netlink group; the controller in the
    /// paper polls procfs — modeled as a group for uniformity).
    Sysctl,
}

/// Summary of a link for dumps and notifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkInfo {
    /// Interface index.
    pub index: IfIndex,
    /// Interface name.
    pub name: String,
    /// Device kind name (`physical`, `veth`, `bridge`, `vxlan`).
    pub kind: String,
    /// Hardware address.
    pub mac: MacAddr,
    /// Up/down state.
    pub up: bool,
    /// Enslaving bridge, if any.
    pub master: Option<IfIndex>,
    /// Assigned addresses.
    pub addrs: Vec<(Ipv4Addr, u8)>,
    /// Bridge-specific: STP enabled (None for non-bridges).
    pub stp_enabled: Option<bool>,
    /// Bridge-specific: VLAN filtering enabled.
    pub vlan_filtering: Option<bool>,
}

/// Summary of a route for dumps and notifications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteInfo {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Gateway, if any.
    pub via: Option<Ipv4Addr>,
    /// Egress device.
    pub dev: IfIndex,
    /// Metric.
    pub metric: u32,
}

/// A netlink notification message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlinkMessage {
    /// A link appeared or changed (up/down, master, addresses).
    NewLink(LinkInfo),
    /// A link was removed.
    DelLink(IfIndex),
    /// An address was added.
    NewAddr {
        /// Interface the address was added to.
        index: IfIndex,
        /// The address and prefix length.
        addr: Ipv4Addr,
        /// Prefix length.
        prefix_len: u8,
    },
    /// An address was removed.
    DelAddr {
        /// Interface the address was removed from.
        index: IfIndex,
        /// The removed address.
        addr: Ipv4Addr,
    },
    /// A route was added.
    NewRoute(RouteInfo),
    /// A route was removed.
    DelRoute {
        /// The removed prefix.
        prefix: Prefix,
    },
    /// A neighbor entry was confirmed.
    NewNeigh {
        /// Neighbor address.
        addr: Ipv4Addr,
        /// Neighbor MAC.
        mac: MacAddr,
        /// Interface.
        dev: IfIndex,
    },
    /// A neighbor entry was removed.
    DelNeigh {
        /// Neighbor address.
        addr: Ipv4Addr,
    },
    /// The netfilter configuration changed (rules or sets); carries the
    /// new generation counter.
    NetfilterChanged {
        /// Generation after the change.
        generation: u64,
    },
    /// The ipvs configuration changed (services or backends).
    IpvsChanged {
        /// Generation after the change.
        generation: u64,
    },
    /// The iptables `nat` table changed (rules appended or flushed).
    NatChanged {
        /// Generation after the change.
        generation: u64,
    },
    /// The L7 request-policy table changed (policies appended, flushed,
    /// or a connection pin evicted).
    L7Changed {
        /// Generation after the change.
        generation: u64,
    },
    /// A sysctl changed.
    SysctlChanged {
        /// Sysctl name (e.g. `net.ipv4.ip_forward`).
        name: String,
        /// New value.
        value: i64,
    },
}

impl NetlinkMessage {
    /// The multicast group this message is delivered to.
    pub fn group(&self) -> NlGroup {
        match self {
            NetlinkMessage::NewLink(_) | NetlinkMessage::DelLink(_) => NlGroup::Link,
            NetlinkMessage::NewAddr { .. } | NetlinkMessage::DelAddr { .. } => NlGroup::Addr,
            NetlinkMessage::NewRoute(_) | NetlinkMessage::DelRoute { .. } => NlGroup::Route,
            NetlinkMessage::NewNeigh { .. } | NetlinkMessage::DelNeigh { .. } => NlGroup::Neigh,
            NetlinkMessage::NetfilterChanged { .. }
            | NetlinkMessage::IpvsChanged { .. }
            | NetlinkMessage::NatChanged { .. }
            | NetlinkMessage::L7Changed { .. } => NlGroup::Netfilter,
            NetlinkMessage::SysctlChanged { .. } => NlGroup::Sysctl,
        }
    }
}

/// Handle identifying a subscriber on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubscriberId(usize);

/// The notification bus: publishes messages to subscribers that joined
/// the message's group.
#[derive(Debug, Default)]
pub struct NetlinkBus {
    subscribers: Vec<Subscriber>,
    generation: u64,
}

#[derive(Debug)]
struct Subscriber {
    groups: Vec<NlGroup>,
    queue: VecDeque<NetlinkMessage>,
}

impl NetlinkBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        NetlinkBus::default()
    }

    /// Joins the given multicast groups; returns the subscriber handle.
    pub fn subscribe(&mut self, groups: &[NlGroup]) -> SubscriberId {
        self.subscribers.push(Subscriber {
            groups: groups.to_vec(),
            queue: VecDeque::new(),
        });
        SubscriberId(self.subscribers.len() - 1)
    }

    /// Publishes a message to every subscriber of its group.
    ///
    /// Every publish also bumps the bus generation: netlink is the one
    /// funnel every configuration mutation announces itself through, so
    /// the generation is a complete summary of "has any netlink-visible
    /// state changed" — the coherence signal the microflow verdict cache
    /// keys on.
    pub fn publish(&mut self, msg: NetlinkMessage) {
        self.generation = self.generation.wrapping_add(1);
        let group = msg.group();
        for sub in &mut self.subscribers {
            if sub.groups.contains(&group) {
                sub.queue.push_back(msg.clone());
            }
        }
    }

    /// Monotonic count of messages ever published on this bus.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Drains all pending messages for a subscriber.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`NetlinkBus::subscribe`] on
    /// this bus.
    pub fn poll(&mut self, id: SubscriberId) -> Vec<NetlinkMessage> {
        self.subscribers[id.0].queue.drain(..).collect()
    }

    /// Number of messages pending for a subscriber.
    pub fn pending(&self, id: SubscriberId) -> usize {
        self.subscribers[id.0].queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link_msg(index: u32) -> NetlinkMessage {
        NetlinkMessage::NewLink(LinkInfo {
            index: IfIndex(index),
            name: format!("eth{index}"),
            kind: "physical".into(),
            mac: MacAddr::from_index(index as u64),
            up: true,
            master: None,
            addrs: vec![],
            stp_enabled: None,
            vlan_filtering: None,
        })
    }

    #[test]
    fn group_routing() {
        let mut bus = NetlinkBus::new();
        let links = bus.subscribe(&[NlGroup::Link]);
        let routes = bus.subscribe(&[NlGroup::Route]);
        let all = bus.subscribe(&[
            NlGroup::Link,
            NlGroup::Route,
            NlGroup::Addr,
            NlGroup::Neigh,
            NlGroup::Netfilter,
            NlGroup::Sysctl,
        ]);
        bus.publish(link_msg(1));
        bus.publish(NetlinkMessage::NetfilterChanged { generation: 3 });
        assert_eq!(bus.pending(links), 1);
        assert_eq!(bus.pending(routes), 0);
        assert_eq!(bus.pending(all), 2);
        assert_eq!(bus.poll(links).len(), 1);
        assert_eq!(bus.pending(links), 0);
        assert_eq!(bus.poll(all).len(), 2);
    }

    #[test]
    fn messages_know_their_groups() {
        assert_eq!(link_msg(1).group(), NlGroup::Link);
        assert_eq!(NetlinkMessage::DelLink(IfIndex(1)).group(), NlGroup::Link);
        assert_eq!(
            NetlinkMessage::NewAddr {
                index: IfIndex(1),
                addr: Ipv4Addr::new(10, 0, 0, 1),
                prefix_len: 24
            }
            .group(),
            NlGroup::Addr
        );
        assert_eq!(
            NetlinkMessage::NewRoute(RouteInfo {
                prefix: "10.0.0.0/8".parse().unwrap(),
                via: None,
                dev: IfIndex(1),
                metric: 0
            })
            .group(),
            NlGroup::Route
        );
        assert_eq!(
            NetlinkMessage::NewNeigh {
                addr: Ipv4Addr::new(10, 0, 0, 1),
                mac: MacAddr::ZERO,
                dev: IfIndex(1)
            }
            .group(),
            NlGroup::Neigh
        );
        assert_eq!(
            NetlinkMessage::SysctlChanged {
                name: "net.ipv4.ip_forward".into(),
                value: 1
            }
            .group(),
            NlGroup::Sysctl
        );
        assert_eq!(
            NetlinkMessage::DelRoute {
                prefix: "10.0.0.0/8".parse().unwrap()
            }
            .group(),
            NlGroup::Route
        );
        assert_eq!(
            NetlinkMessage::DelNeigh {
                addr: Ipv4Addr::new(1, 1, 1, 1)
            }
            .group(),
            NlGroup::Neigh
        );
        assert_eq!(
            NetlinkMessage::DelAddr {
                index: IfIndex(1),
                addr: Ipv4Addr::new(1, 1, 1, 1)
            }
            .group(),
            NlGroup::Addr
        );
        assert_eq!(
            NetlinkMessage::NatChanged { generation: 1 }.group(),
            NlGroup::Netfilter
        );
        assert_eq!(
            NetlinkMessage::L7Changed { generation: 1 }.group(),
            NlGroup::Netfilter
        );
    }

    #[test]
    fn queues_are_independent() {
        let mut bus = NetlinkBus::new();
        let a = bus.subscribe(&[NlGroup::Link]);
        let b = bus.subscribe(&[NlGroup::Link]);
        bus.publish(link_msg(1));
        assert_eq!(bus.poll(a).len(), 1);
        assert_eq!(bus.poll(b).len(), 1); // both got a copy
        assert!(bus.poll(a).is_empty());
    }
}
