//! End-to-end tests of the simulated kernel's slow-path pipeline:
//! forwarding, ARP, ICMP, netfilter, bridging, veth, VXLAN, and hooks.

use linuxfp_netstack::device::IfIndex;
use linuxfp_netstack::netfilter::{ChainHook, IpSet, IptRule, PacketMeta};
use linuxfp_netstack::netlink::{NetlinkMessage, NlGroup};
use linuxfp_netstack::stack::{
    DropReason, Effect, FdbLookupOutcome, HookVerdict, IfAddr, Kernel, BPDU_MAC,
};
use linuxfp_packet::ipv4::{IpProto, Prefix};
use linuxfp_packet::{builder, EthernetFrame, Ipv4Header, MacAddr};
use linuxfp_sim::Nanos;
use std::net::Ipv4Addr;
use std::sync::Arc;

fn addr(s: &str) -> IfAddr {
    s.parse().unwrap()
}

fn prefix(s: &str) -> Prefix {
    s.parse().unwrap()
}

/// A router with eth0 (10.0.1.1/24) and eth1 (10.0.2.1/24), forwarding
/// enabled, with the next hop 10.0.2.2 pre-resolved.
fn router() -> (Kernel, IfIndex, IfIndex) {
    let mut k = Kernel::new(1);
    let eth0 = k.add_physical("eth0").unwrap();
    let eth1 = k.add_physical("eth1").unwrap();
    k.ip_addr_add(eth0, addr("10.0.1.1/24")).unwrap();
    k.ip_addr_add(eth1, addr("10.0.2.1/24")).unwrap();
    k.ip_link_set_up(eth0).unwrap();
    k.ip_link_set_up(eth1).unwrap();
    k.sysctl_set("net.ipv4.ip_forward", 1).unwrap();
    // Destination network behind 10.0.2.2.
    k.ip_route_add(
        prefix("10.10.0.0/16"),
        Some(Ipv4Addr::new(10, 0, 2, 2)),
        None,
    )
    .unwrap();
    let now = k.now();
    k.neigh.learn(
        Ipv4Addr::new(10, 0, 2, 2),
        MacAddr::from_index(0xBEEF),
        eth1,
        now,
    );
    (k, eth0, eth1)
}

fn forward_test_frame(k: &Kernel, ingress: IfIndex) -> Vec<u8> {
    let router_mac = k.device(ingress).unwrap().mac;
    builder::udp_packet(
        MacAddr::from_index(0xAAAA),
        router_mac,
        Ipv4Addr::new(10, 0, 1, 100),
        Ipv4Addr::new(10, 10, 3, 7),
        1000,
        2000,
        b"payload",
    )
}

#[test]
fn forwards_with_rewrite_and_ttl_decrement() {
    let (mut k, eth0, eth1) = router();
    let frame = forward_test_frame(&k, eth0);
    let out = k.receive(eth0, frame);
    let tx = out.transmissions();
    assert_eq!(tx.len(), 1);
    assert_eq!(tx[0].0, eth1);
    let eth = EthernetFrame::parse(tx[0].1).unwrap();
    assert_eq!(eth.dst, MacAddr::from_index(0xBEEF));
    assert_eq!(eth.src, k.device(eth1).unwrap().mac);
    let ip = Ipv4Header::parse(&tx[0].1[eth.payload_offset..]).unwrap();
    assert_eq!(ip.ttl, 63);
    assert!(ip.verify_checksum(&tx[0].1[eth.payload_offset..]));
}

#[test]
fn forwarding_charges_expected_stages() {
    let (mut k, eth0, _) = router();
    let frame = forward_test_frame(&k, eth0);
    let out = k.receive(eth0, frame);
    for stage in [
        "driver_rx",
        "skb_alloc",
        "ip_rcv",
        "fib_lookup",
        "ip_forward",
        "neigh_lookup",
        "qdisc_xmit",
        "driver_tx",
    ] {
        assert_eq!(out.cost.stage_count(stage), 1, "missing stage {stage}");
    }
    // Plain Linux forwarding of a min-size packet costs ~1 microsecond in
    // the calibrated model (the paper-implied number).
    let total = out.cost.total_ns();
    assert!((900.0..1300.0).contains(&total), "total {total}");
}

#[test]
fn forwarding_disabled_drops() {
    let (mut k, eth0, _) = router();
    k.sysctl_set("net.ipv4.ip_forward", 0).unwrap();
    let frame = forward_test_frame(&k, eth0);
    let out = k.receive(eth0, frame);
    assert_eq!(out.drops(), vec!["forwarding disabled"]);
}

#[test]
fn no_route_drops() {
    let (mut k, eth0, _) = router();
    let router_mac = k.device(eth0).unwrap().mac;
    let frame = builder::udp_packet(
        MacAddr::from_index(1),
        router_mac,
        Ipv4Addr::new(10, 0, 1, 100),
        Ipv4Addr::new(172, 16, 0, 1), // no route
        1,
        2,
        b"",
    );
    let out = k.receive(eth0, frame);
    assert_eq!(out.drops(), vec!["no route"]);
}

#[test]
fn ttl_expiry_drops() {
    let (mut k, eth0, _) = router();
    let mut frame = forward_test_frame(&k, eth0);
    // Set TTL to 1 and fix the checksum by rewriting the header.
    let eth = EthernetFrame::parse(&frame).unwrap();
    let off = eth.payload_offset;
    let ip = Ipv4Header::parse(&frame[off..]).unwrap();
    Ipv4Header::write(
        &mut frame[off..],
        ip.src,
        ip.dst,
        ip.proto,
        1,
        ip.id,
        ip.total_len,
        ip.dont_fragment,
    );
    let out = k.receive(eth0, frame);
    assert_eq!(out.drops(), vec!["ttl exceeded"]);
}

#[test]
fn bad_checksum_drops() {
    let (mut k, eth0, _) = router();
    let mut frame = forward_test_frame(&k, eth0);
    frame[20] ^= 0xFF; // corrupt an IP header byte
    let out = k.receive(eth0, frame);
    assert_eq!(out.drops(), vec!["bad ipv4 checksum"]);
}

#[test]
fn unresolved_next_hop_triggers_arp_and_queues() {
    let (mut k, eth0, eth1) = router();
    k.neigh.remove(Ipv4Addr::new(10, 0, 2, 2));
    let frame = forward_test_frame(&k, eth0);
    let out = k.receive(eth0, frame);
    // The only transmission is the ARP request out eth1.
    let tx = out.transmissions();
    assert_eq!(tx.len(), 1);
    assert_eq!(tx[0].0, eth1);
    let eth = EthernetFrame::parse(tx[0].1).unwrap();
    assert!(eth.dst.is_broadcast());
    let arp = linuxfp_packet::ArpPacket::parse(&tx[0].1[eth.payload_offset..]).unwrap();
    assert_eq!(arp.target_ip, Ipv4Addr::new(10, 0, 2, 2));
    assert_eq!(arp.sender_ip, Ipv4Addr::new(10, 0, 2, 1));

    // The ARP reply releases the queued packet.
    let reply = arp.reply_to(MacAddr::from_index(0xBEEF));
    let reply_frame = builder::arp_frame(&reply, MacAddr::from_index(0xBEEF), arp.sender_mac);
    let out = k.receive(eth1, reply_frame);
    let tx = out.transmissions();
    assert_eq!(tx.len(), 1, "queued packet should flush");
    assert_eq!(tx[0].0, eth1);
    let eth = EthernetFrame::parse(tx[0].1).unwrap();
    assert_eq!(eth.dst, MacAddr::from_index(0xBEEF));
}

#[test]
fn second_packet_to_unresolved_hop_does_not_rearp() {
    let (mut k, eth0, _) = router();
    k.neigh.remove(Ipv4Addr::new(10, 0, 2, 2));
    let out1 = k.receive(eth0, forward_test_frame(&k, eth0));
    assert_eq!(out1.transmissions().len(), 1); // the ARP request
    let out2 = k.receive(eth0, forward_test_frame(&k, eth0));
    assert_eq!(out2.transmissions().len(), 0, "no duplicate ARP");
}

#[test]
fn icmp_echo_to_local_address_is_answered() {
    let (mut k, eth0, _) = router();
    let router_mac = k.device(eth0).unwrap().mac;
    let src_mac = MacAddr::from_index(0xAAAA);
    let frame = builder::icmp_echo_request(
        src_mac,
        router_mac,
        Ipv4Addr::new(10, 0, 1, 100),
        Ipv4Addr::new(10, 0, 1, 1),
        7,
        1,
    );
    let out = k.receive(eth0, frame);
    let tx = out.transmissions();
    assert_eq!(tx.len(), 1);
    let eth = EthernetFrame::parse(tx[0].1).unwrap();
    assert_eq!(eth.dst, src_mac);
    let ip = Ipv4Header::parse(&tx[0].1[eth.payload_offset..]).unwrap();
    assert_eq!(ip.src, Ipv4Addr::new(10, 0, 1, 1));
    assert_eq!(ip.dst, Ipv4Addr::new(10, 0, 1, 100));
    let icmp =
        linuxfp_packet::IcmpHeader::parse(&tx[0].1[eth.payload_offset + ip.header_len..]).unwrap();
    assert_eq!(icmp.icmp_type, linuxfp_packet::IcmpType::EchoReply);
    assert_eq!(icmp.seq, 1);
}

#[test]
fn udp_to_local_address_is_delivered() {
    let (mut k, eth0, _) = router();
    let router_mac = k.device(eth0).unwrap().mac;
    let frame = builder::udp_packet(
        MacAddr::from_index(1),
        router_mac,
        Ipv4Addr::new(10, 0, 1, 100),
        Ipv4Addr::new(10, 0, 1, 1),
        5000,
        53,
        b"query",
    );
    let out = k.receive(eth0, frame);
    assert_eq!(out.deliveries().len(), 1);
    assert_eq!(out.deliveries()[0].0, eth0);
}

#[test]
fn netfilter_forward_drop_blocks_blacklisted() {
    let (mut k, eth0, _) = router();
    k.iptables_append(
        ChainHook::Forward,
        IptRule::drop_dst(prefix("10.10.3.0/24")),
    );
    let out = k.receive(eth0, forward_test_frame(&k, eth0)); // dst 10.10.3.7
    assert_eq!(out.drops(), vec!["nf forward drop"]);
    // A destination outside the blacklist still forwards.
    let router_mac = k.device(eth0).unwrap().mac;
    let ok_frame = builder::udp_packet(
        MacAddr::from_index(1),
        router_mac,
        Ipv4Addr::new(10, 0, 1, 100),
        Ipv4Addr::new(10, 10, 4, 7),
        1,
        2,
        b"",
    );
    let out = k.receive(eth0, ok_frame);
    assert_eq!(out.transmissions().len(), 1);
}

#[test]
fn netfilter_cost_scales_with_rules_but_not_with_ipset() {
    let (mut k, eth0, _) = router();
    // 100 non-matching rules: pay the full linear scan.
    for i in 0..100u32 {
        k.iptables_append(
            ChainHook::Forward,
            IptRule::drop_dst(Prefix::new(Ipv4Addr::from(0xC0A8_0000 + (i << 8)), 24)),
        );
    }
    let out = k.receive(eth0, forward_test_frame(&k, eth0));
    assert_eq!(out.cost.stage_count("nf_rule_match"), 100);
    assert_eq!(out.transmissions().len(), 1);

    // Same blacklist as one ipset rule: one match + one set lookup.
    k.iptables_flush(ChainHook::Forward);
    let mut set = IpSet::new_hash_net();
    for i in 0..100u32 {
        set.add(Prefix::new(Ipv4Addr::from(0xC0A8_0000 + (i << 8)), 24));
    }
    assert!(k.ipset_create("blacklist", set));
    k.iptables_append(ChainHook::Forward, IptRule::drop_dst_set("blacklist"));
    let out = k.receive(eth0, forward_test_frame(&k, eth0));
    assert_eq!(out.cost.stage_count("nf_rule_match"), 1);
    assert_eq!(out.cost.stage_count("ipset_lookup"), 1);
}

#[test]
fn bridge_learns_and_forwards() {
    let mut k = Kernel::new(2);
    let p1 = k.add_physical("p1").unwrap();
    let p2 = k.add_physical("p2").unwrap();
    let br = k.add_bridge("br0").unwrap();
    k.brctl_addif(br, p1).unwrap();
    k.brctl_addif(br, p2).unwrap();
    for d in [p1, p2, br] {
        k.ip_link_set_up(d).unwrap();
    }
    let host_a = MacAddr::from_index(0xA);
    let host_b = MacAddr::from_index(0xB);
    // A -> B unknown: flooded out p2.
    let f = builder::udp_packet(
        host_a,
        host_b,
        Ipv4Addr::new(192, 168, 0, 1),
        Ipv4Addr::new(192, 168, 0, 2),
        1,
        2,
        b"hi",
    );
    let out = k.receive(p1, f.clone());
    assert_eq!(out.transmissions().len(), 1);
    assert_eq!(out.transmissions()[0].0, p2);
    // B -> A: unicast (A was learned).
    let f_back = builder::udp_packet(
        host_b,
        host_a,
        Ipv4Addr::new(192, 168, 0, 2),
        Ipv4Addr::new(192, 168, 0, 1),
        2,
        1,
        b"yo",
    );
    let out = k.receive(p2, f_back);
    assert_eq!(out.transmissions().len(), 1);
    assert_eq!(out.transmissions()[0].0, p1);
    // FDB helper agrees.
    assert_eq!(
        k.helper_fdb_lookup(p1, host_a, host_b, 0),
        FdbLookupOutcome::Hit(p2)
    );
    // Unknown source: helper refuses (slow path must learn first).
    assert_eq!(
        k.helper_fdb_lookup(p1, MacAddr::from_index(0xF), host_b, 0),
        FdbLookupOutcome::SrcUnknown
    );
    // Hairpin (destination learned on the ingress port) reads as a miss:
    // the slow path then drops it.
    assert_eq!(
        k.helper_fdb_lookup(p1, host_a, host_a, 0),
        FdbLookupOutcome::DstMiss
    );
    // Non-bridge-port ingress: always punted.
    let lone = k.ifindex("p1").unwrap();
    let _ = lone;
}

#[test]
fn bpdus_are_consumed_by_stp() {
    let mut k = Kernel::new(3);
    let p1 = k.add_physical("p1").unwrap();
    let br = k.add_bridge("br0").unwrap();
    k.brctl_addif(br, p1).unwrap();
    k.bridge_set_stp(br, true).unwrap();
    k.ip_link_set_up(p1).unwrap();
    k.ip_link_set_up(br).unwrap();
    let mut bpdu = vec![0u8; 60];
    EthernetFrame::write(
        &mut bpdu,
        BPDU_MAC,
        MacAddr::from_index(9),
        linuxfp_packet::EtherType::Other(0x0027),
    );
    let out = k.receive(p1, bpdu);
    assert_eq!(out.drops(), vec!["bpdu consumed"]);
    assert_eq!(k.bpdus_processed, 1);
}

#[test]
fn veth_pair_carries_frames_between_ends() {
    let mut k = Kernel::new(4);
    let (va, vb) = k.add_veth_pair("va", "vb").unwrap();
    let br = k.add_bridge("br0").unwrap();
    let p1 = k.add_physical("p1").unwrap();
    k.brctl_addif(br, vb).unwrap();
    k.brctl_addif(br, p1).unwrap();
    for d in [va, vb, br, p1] {
        k.ip_link_set_up(d).unwrap();
    }
    // A frame transmitted into va pops out at vb (a bridge port) and is
    // flooded to p1.
    let f = builder::udp_packet(
        MacAddr::from_index(0xA),
        MacAddr::from_index(0xB),
        Ipv4Addr::new(10, 244, 0, 2),
        Ipv4Addr::new(10, 244, 0, 3),
        1,
        2,
        b"pod",
    );
    let out = k.transmit_frame(va, f);
    assert_eq!(out.transmissions().len(), 1);
    assert_eq!(out.transmissions()[0].0, p1);
    assert_eq!(out.cost.stage_count("veth_cross"), 1);
}

#[test]
fn xdp_hook_runs_before_skb_alloc() {
    let (mut k, eth0, _) = router();
    k.attach_xdp(eth0, Arc::new(|_k, _p, _t, _tr| HookVerdict::Drop))
        .unwrap();
    let out = k.receive(eth0, forward_test_frame(&k, eth0));
    assert_eq!(out.drops(), vec!["xdp drop"]);
    assert_eq!(out.cost.stage_count("xdp_entry"), 1);
    assert_eq!(out.cost.stage_count("skb_alloc"), 0, "XDP avoids the skb");
}

#[test]
fn xdp_redirect_bypasses_slow_path() {
    let (mut k, eth0, eth1) = router();
    k.attach_xdp(
        eth0,
        Arc::new(move |_k, _p, _t, _tr| HookVerdict::Redirect(eth1)),
    )
    .unwrap();
    let out = k.receive(eth0, forward_test_frame(&k, eth0));
    assert_eq!(out.transmissions().len(), 1);
    assert_eq!(out.transmissions()[0].0, eth1);
    assert_eq!(out.cost.stage_count("skb_alloc"), 0);
    assert_eq!(out.cost.stage_count("fib_lookup"), 0);
}

#[test]
fn tc_hook_runs_after_skb_alloc() {
    let (mut k, eth0, _) = router();
    k.attach_tc_ingress(eth0, Arc::new(|_k, _p, _t, _tr| HookVerdict::Drop))
        .unwrap();
    let out = k.receive(eth0, forward_test_frame(&k, eth0));
    assert_eq!(out.drops(), vec!["tc drop"]);
    assert_eq!(out.cost.stage_count("skb_alloc"), 1, "TC pays for the skb");
    assert_eq!(out.cost.stage_count("tc_entry"), 1);
}

#[test]
fn hook_pass_falls_through_to_slow_path() {
    let (mut k, eth0, eth1) = router();
    k.attach_xdp(eth0, Arc::new(|_k, _p, _t, _tr| HookVerdict::Pass))
        .unwrap();
    let out = k.receive(eth0, forward_test_frame(&k, eth0));
    assert_eq!(out.transmissions().len(), 1);
    assert_eq!(out.transmissions()[0].0, eth1);
    assert_eq!(out.cost.stage_count("skb_alloc"), 1);
}

#[test]
fn detached_hooks_no_longer_run() {
    let (mut k, eth0, _) = router();
    k.attach_xdp(eth0, Arc::new(|_k, _p, _t, _tr| HookVerdict::Drop))
        .unwrap();
    k.detach_xdp(eth0);
    let out = k.receive(eth0, forward_test_frame(&k, eth0));
    assert_eq!(out.transmissions().len(), 1);
    assert!(!k.device(eth0).unwrap().has_xdp);
}

#[test]
fn helper_fib_lookup_matches_slow_path() {
    let (mut k, _eth0, eth1) = router();
    let r = k.helper_fib_lookup(Ipv4Addr::new(10, 10, 3, 7)).unwrap();
    assert_eq!(r.ifindex, eth1);
    assert_eq!(r.dst_mac, MacAddr::from_index(0xBEEF));
    assert_eq!(r.src_mac, k.device(eth1).unwrap().mac);
    // Unresolved hop -> None (fast path punts).
    k.neigh.remove(Ipv4Addr::new(10, 0, 2, 2));
    assert!(k.helper_fib_lookup(Ipv4Addr::new(10, 10, 3, 7)).is_none());
    // No route -> None.
    assert!(k.helper_fib_lookup(Ipv4Addr::new(172, 16, 0, 1)).is_none());
}

#[test]
fn helper_ipt_lookup_uses_kernel_rules() {
    let (mut k, eth0, eth1) = router();
    k.iptables_append(
        ChainHook::Forward,
        IptRule::drop_dst(prefix("10.10.3.0/24")),
    );
    let meta = PacketMeta {
        src: Ipv4Addr::new(10, 0, 1, 100),
        dst: Ipv4Addr::new(10, 10, 3, 7),
        proto: IpProto::Udp,
        sport: 1,
        dport: 2,
        in_if: eth0,
        out_if: eth1,
    };
    let mut t = linuxfp_sim::CostTracker::new();
    assert_eq!(
        k.helper_ipt_lookup(&meta, &mut t),
        linuxfp_netstack::netfilter::NfVerdict::Drop
    );
}

#[test]
fn netlink_notifications_flow() {
    let mut k = Kernel::new(5);
    let sub = k.netlink_subscribe(&[
        NlGroup::Link,
        NlGroup::Addr,
        NlGroup::Route,
        NlGroup::Netfilter,
        NlGroup::Sysctl,
    ]);
    let eth0 = k.add_physical("eth0").unwrap();
    k.ip_addr_add(eth0, addr("10.0.0.1/24")).unwrap();
    k.sysctl_set("net.ipv4.ip_forward", 1).unwrap();
    k.iptables_append(ChainHook::Forward, IptRule::default());
    let msgs = k.netlink_poll(sub);
    assert!(msgs
        .iter()
        .any(|m| matches!(m, NetlinkMessage::NewLink(l) if l.name == "eth0")));
    assert!(msgs
        .iter()
        .any(|m| matches!(m, NetlinkMessage::NewAddr { prefix_len: 24, .. })));
    assert!(msgs
        .iter()
        .any(|m| matches!(m, NetlinkMessage::NewRoute(_))));
    assert!(msgs
        .iter()
        .any(|m| matches!(m, NetlinkMessage::SysctlChanged { value: 1, .. })));
    assert!(msgs
        .iter()
        .any(|m| matches!(m, NetlinkMessage::NetfilterChanged { .. })));
    assert!(k.netlink_poll(sub).is_empty());
}

#[test]
fn dumps_reflect_configuration() {
    let (k, eth0, eth1) = router();
    let links = k.dump_links();
    assert_eq!(links.len(), 2);
    assert!(links.iter().all(|l| l.up));
    let routes = k.dump_routes();
    // Two connected + one static.
    assert_eq!(routes.len(), 3);
    assert!(routes
        .iter()
        .any(|r| r.via == Some(Ipv4Addr::new(10, 0, 2, 2))));
    assert_eq!(k.ifindex("eth0"), Some(eth0));
    assert_eq!(k.ifindex("eth1"), Some(eth1));
    assert_eq!(k.ifindex("nope"), None);
}

#[test]
fn vxlan_encapsulates_toward_remote_vtep() {
    let mut k = Kernel::new(6);
    let eth0 = k.add_physical("eth0").unwrap();
    k.ip_addr_add(eth0, addr("192.168.0.1/24")).unwrap();
    k.ip_link_set_up(eth0).unwrap();
    let vx = k
        .add_vxlan("flannel.1", 1, Ipv4Addr::new(192, 168, 0, 1), 4789)
        .unwrap();
    k.ip_link_set_up(vx).unwrap();
    let inner_dst = MacAddr::from_index(0x22);
    k.vxlan_fdb_add(vx, inner_dst, Ipv4Addr::new(192, 168, 0, 2))
        .unwrap();
    let now = k.now();
    k.neigh.learn(
        Ipv4Addr::new(192, 168, 0, 2),
        MacAddr::from_index(0x99),
        eth0,
        now,
    );

    let inner = builder::udp_packet(
        MacAddr::from_index(0x11),
        inner_dst,
        Ipv4Addr::new(10, 244, 1, 2),
        Ipv4Addr::new(10, 244, 2, 2),
        1,
        2,
        b"pod",
    );
    let out = k.transmit_frame(vx, inner.clone());
    let tx = out.transmissions();
    assert_eq!(tx.len(), 1);
    assert_eq!(tx[0].0, eth0);
    let (vni, got) = builder::vxlan_decapsulate(tx[0].1).unwrap();
    assert_eq!(vni, 1);
    assert_eq!(got, inner);
    assert_eq!(out.cost.stage_count("vxlan_encap"), 1);
}

#[test]
fn vxlan_receive_decapsulates_into_bridge() {
    let mut k = Kernel::new(7);
    let eth0 = k.add_physical("eth0").unwrap();
    k.ip_addr_add(eth0, addr("192.168.0.2/24")).unwrap();
    let vx = k
        .add_vxlan("flannel.1", 1, Ipv4Addr::new(192, 168, 0, 2), 4789)
        .unwrap();
    let br = k.add_bridge("cni0").unwrap();
    let p1 = k.add_physical("pod-port").unwrap();
    k.brctl_addif(br, vx).unwrap();
    k.brctl_addif(br, p1).unwrap();
    for d in [eth0, vx, br, p1] {
        k.ip_link_set_up(d).unwrap();
    }
    let inner = builder::udp_packet(
        MacAddr::from_index(0x11),
        MacAddr::from_index(0x22),
        Ipv4Addr::new(10, 244, 1, 2),
        Ipv4Addr::new(10, 244, 2, 2),
        1,
        2,
        b"pod",
    );
    let outer = builder::vxlan_encapsulate(
        &inner,
        1,
        MacAddr::from_index(0x99),
        k.device(eth0).unwrap().mac,
        Ipv4Addr::new(192, 168, 0, 1),
        Ipv4Addr::new(192, 168, 0, 2),
        49152,
    );
    let out = k.receive(eth0, outer);
    // Inner frame floods out the other bridge port.
    let tx = out.transmissions();
    assert_eq!(tx.len(), 1);
    assert_eq!(tx[0].0, p1);
    assert_eq!(tx[0].1, inner.as_slice());
    assert_eq!(out.cost.stage_count("vxlan_decap"), 1);
}

#[test]
fn config_errors_are_reported() {
    let mut k = Kernel::new(8);
    let eth0 = k.add_physical("eth0").unwrap();
    assert!(k.add_physical("eth0").is_err());
    assert!(k.ip_link_set_up(IfIndex(99)).is_err());
    assert!(k.ip_addr_add(IfIndex(99), addr("1.1.1.1/24")).is_err());
    k.ip_addr_add(eth0, addr("1.1.1.1/24")).unwrap();
    assert!(k.ip_addr_add(eth0, addr("1.1.1.1/24")).is_err());
    assert!(k.ip_route_add(prefix("9.9.9.0/24"), None, None).is_err());
    assert!(k
        .ip_route_add(prefix("9.9.9.0/24"), Some(Ipv4Addr::new(8, 8, 8, 8)), None)
        .is_err());
    assert!(k.ip_route_del(prefix("9.9.9.0/24"), None).is_err());
    assert!(k.sysctl_set("net.ipv4.nonsense", 1).is_err());
    assert!(k.brctl_addif(eth0, eth0).is_err());
    assert!(k.brctl_delif(eth0, eth0).is_err());
    assert!("10.0.0.1".parse::<IfAddr>().is_err());
    assert!("10.0.0.1/33".parse::<IfAddr>().is_err());
    assert!("x/24".parse::<IfAddr>().is_err());
}

#[test]
fn down_device_drops_everything() {
    let (mut k, eth0, _) = router();
    k.ip_link_set_down(eth0).unwrap();
    let out = k.receive(eth0, forward_test_frame(&k, eth0));
    assert_eq!(out.drops(), vec!["device down"]);
}

#[test]
fn addr_del_removes_connected_route() {
    let mut k = Kernel::new(9);
    let eth0 = k.add_physical("eth0").unwrap();
    k.ip_addr_add(eth0, addr("10.0.0.1/24")).unwrap();
    assert_eq!(k.dump_routes().len(), 1);
    k.ip_addr_del(eth0, addr("10.0.0.1/24")).unwrap();
    assert_eq!(k.dump_routes().len(), 0);
    assert!(k.ip_addr_del(eth0, addr("10.0.0.1/24")).is_err());
}

#[test]
fn conntrack_tracks_forwarded_flows_when_enabled() {
    let (mut k, eth0, _) = router();
    k.conntrack_forward = true;
    k.receive(eth0, forward_test_frame(&k, eth0));
    assert_eq!(k.conntrack.len(), 1);
    let out = k.receive(eth0, forward_test_frame(&k, eth0));
    assert_eq!(out.cost.stage_count("conntrack"), 1);
    assert_eq!(k.conntrack.len(), 1); // same flow
}

#[test]
fn aging_after_advance_expires_fdb() {
    let mut k = Kernel::new(10);
    let p1 = k.add_physical("p1").unwrap();
    let p2 = k.add_physical("p2").unwrap();
    let br = k.add_bridge("br0").unwrap();
    k.brctl_addif(br, p1).unwrap();
    k.brctl_addif(br, p2).unwrap();
    for d in [p1, p2, br] {
        k.ip_link_set_up(d).unwrap();
    }
    let a = MacAddr::from_index(0xA);
    let b = MacAddr::from_index(0xB);
    let f = builder::udp_packet(
        a,
        b,
        Ipv4Addr::new(1, 1, 1, 1),
        Ipv4Addr::new(1, 1, 1, 2),
        1,
        2,
        b"",
    );
    k.receive(p1, f); // learn a@p1
    assert_eq!(
        k.helper_fdb_lookup(p2, b, a, 0),
        FdbLookupOutcome::SrcUnknown
    ); // b unknown yet
    let f_back = builder::udp_packet(
        b,
        a,
        Ipv4Addr::new(1, 1, 1, 2),
        Ipv4Addr::new(1, 1, 1, 1),
        2,
        1,
        b"",
    );
    k.receive(p2, f_back); // learn b@p2
    assert_eq!(k.helper_fdb_lookup(p1, a, b, 0), FdbLookupOutcome::Hit(p2));
    // After 301 simulated seconds both entries age out.
    k.advance(Nanos::from_secs(301));
    assert_eq!(
        k.helper_fdb_lookup(p1, a, b, 0),
        FdbLookupOutcome::SrcUnknown
    );
}

#[test]
fn effects_and_outcome_accessors() {
    let e = Effect::Drop {
        reason: DropReason::NoRoute,
    };
    assert!(format!("{e:?}").contains("Drop"));
    let (mut k, eth0, _) = router();
    let out = k.receive(eth0, forward_test_frame(&k, eth0));
    assert!(out.drops().is_empty());
    assert!(out.deliveries().is_empty());
    assert_eq!(out.transmissions().len(), 1);
}

#[test]
fn neigh_dump_reflects_learned_entries() {
    let (k, _, _) = router();
    let neigh = k.dump_neigh();
    assert_eq!(neigh.len(), 1);
    assert_eq!(neigh[0].0, Ipv4Addr::new(10, 0, 2, 2));
    assert_eq!(neigh[0].1.mac, MacAddr::from_index(0xBEEF));
}

#[test]
fn device_counters_track_traffic() {
    let (mut k, eth0, eth1) = router();
    let before = k.dev_counters(eth0);
    assert_eq!(before.rx_packets, 0);
    let frame = forward_test_frame(&k, eth0);
    let len = frame.len() as u64;
    k.receive(eth0, frame);
    let rx = k.dev_counters(eth0);
    assert_eq!(rx.rx_packets, 1);
    assert_eq!(rx.rx_bytes, len);
    let tx = k.dev_counters(eth1);
    assert_eq!(tx.tx_packets, 1);
    assert_eq!(tx.tx_bytes, len);
}

#[test]
fn housekeeping_collects_expired_state() {
    let mut k = Kernel::new(44);
    let p1 = k.add_physical("p1").unwrap();
    let p2 = k.add_physical("p2").unwrap();
    let br = k.add_bridge("br0").unwrap();
    k.brctl_addif(br, p1).unwrap();
    k.brctl_addif(br, p2).unwrap();
    for d in [p1, p2, br] {
        k.ip_link_set_up(d).unwrap();
    }
    k.conntrack_forward = true;
    // Populate FDB + conntrack + neighbors, then jump far into the future.
    let f = builder::udp_packet(
        MacAddr::from_index(0xA),
        MacAddr::from_index(0xB),
        Ipv4Addr::new(1, 1, 1, 1),
        Ipv4Addr::new(1, 1, 1, 2),
        1,
        2,
        b"x",
    );
    k.receive(p1, f);
    let now = k.now();
    k.neigh
        .learn(Ipv4Addr::new(9, 9, 9, 9), MacAddr::from_index(9), p1, now);
    k.advance(Nanos::from_secs(3600));
    let report = k.run_housekeeping();
    assert!(report.fdb_expired >= 1, "{report:?}");
    assert!(report.neigh_expired >= 1, "{report:?}");
    assert_eq!(k.bridge(br).unwrap().fdb_len(), 0);
    // Nothing left to collect on a second pass.
    let again = k.run_housekeeping();
    assert_eq!(
        again,
        linuxfp_netstack::stack::HousekeepingReport::default()
    );
}
