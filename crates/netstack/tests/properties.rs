//! Property-based tests for the kernel data structures: each structure is
//! checked against a brute-force oracle over random operation sequences.
//!
//! Inputs come from the workspace's seeded [`SimRng`] (the build is fully
//! offline, so no external property-testing framework); every law is
//! checked across 128 deterministic cases.

use linuxfp_netstack::bridge::{Bridge, BridgeDecision, StpState};
use linuxfp_netstack::conntrack::{Conntrack, FlowKey};
use linuxfp_netstack::device::IfIndex;
use linuxfp_netstack::fib::{Fib, Route};
use linuxfp_netstack::netfilter::{ChainHook, IptRule, Netfilter, NfVerdict, PacketMeta};
use linuxfp_packet::ipv4::{IpProto, Prefix};
use linuxfp_packet::MacAddr;
use linuxfp_sim::{CostModel, CostTracker, Nanos, SimRng};
use std::net::Ipv4Addr;

/// Brute-force longest-prefix match over a plain route list.
fn naive_lpm(routes: &[Route], addr: Ipv4Addr) -> Option<Route> {
    routes
        .iter()
        .filter(|r| r.prefix.contains(addr))
        .max_by_key(|r| (r.prefix.len(), std::cmp::Reverse(r.metric)))
        .copied()
}

fn rand_u32(rng: &mut SimRng) -> u32 {
    rng.uniform_u64(1 << 32) as u32
}

/// The LPM trie agrees with a brute-force oracle for arbitrary route sets
/// and probe addresses.
#[test]
fn fib_matches_naive_lpm() {
    let mut rng = SimRng::seed(0x0E57_0001);
    for _ in 0..128 {
        let mut fib = Fib::new();
        let mut list: Vec<Route> = Vec::new();
        for _ in 0..rng.uniform_u64(48) {
            let addr = rand_u32(&mut rng);
            let len = rng.uniform_u64(33) as u8;
            let dev = 1 + rng.uniform_u64(4) as u32;
            let route = Route::connected(Prefix::new(Ipv4Addr::from(addr), len), IfIndex(dev));
            // The trie deduplicates (prefix, via, dev); mirror that in
            // the oracle list.
            if fib.insert(route) {
                list.push(route);
            }
        }
        for _ in 0..1 + rng.uniform_u64(31) {
            let addr = Ipv4Addr::from(rand_u32(&mut rng));
            let got = fib.lookup(addr).map(|r| r.prefix);
            let want = naive_lpm(&list, addr).map(|r| r.prefix);
            // Among equal-length prefixes the same one wins (they are
            // identical prefixes by construction of LPM), so comparing
            // the matched prefix is exact.
            assert_eq!(got, want, "probe {addr}");
        }
    }
}

/// FDB model check: learning then looking up any learned address yields
/// the port of its most recent learn, unless it aged out.
#[test]
fn fdb_matches_last_write_model() {
    let mut rng = SimRng::seed(0x0E57_0002);
    for _ in 0..128 {
        let mut br = Bridge::new(IfIndex(100), MacAddr::from_index(0xFFFF));
        for p in 1..5 {
            br.add_port(IfIndex(p));
        }
        let mut model: std::collections::HashMap<u64, (u32, u64)> = Default::default();
        let mut ops: Vec<(u64, u32, u64)> = (0..1 + rng.uniform_u64(63))
            .map(|_| {
                (
                    rng.uniform_u64(12),
                    1 + rng.uniform_u64(4) as u32,
                    rng.uniform_u64(600),
                )
            })
            .collect();
        // Learns must be time-ordered like real traffic.
        ops.sort_by_key(|(_, _, t)| *t);
        for (mac, port, t) in &ops {
            br.fdb_learn(
                MacAddr::from_index(*mac),
                0,
                IfIndex(*port),
                Nanos::from_secs(*t),
            );
            model.insert(*mac, (*port, *t));
        }
        let probe = rng.uniform_u64(12);
        let probe_time = rng.uniform_u64(1200);
        let got = br.fdb_lookup(MacAddr::from_index(probe), 0, Nanos::from_secs(probe_time));
        let want = model
            .get(&probe)
            .and_then(|(port, t)| (probe_time.saturating_sub(*t) <= 300).then_some(IfIndex(*port)));
        assert_eq!(got, want);
    }
}

/// Bridge decisions never forward out the ingress port, never include
/// non-forwarding ports in a flood, and forward only to member ports.
#[test]
fn bridge_decisions_respect_port_invariants() {
    let mut rng = SimRng::seed(0x0E57_0003);
    for _ in 0..128 {
        let mut br = Bridge::new(IfIndex(100), MacAddr::from_index(0xFFFF));
        for p in 1..5 {
            br.add_port(IfIndex(p));
        }
        let blocked_port = 1 + rng.uniform_u64(4) as u32;
        br.port_mut(IfIndex(blocked_port)).unwrap().stp_state = StpState::Blocking;
        for _ in 0..1 + rng.uniform_u64(47) {
            let ingress = 1 + rng.uniform_u64(4) as u32;
            let src = rng.uniform_u64(8);
            let dst = rng.uniform_u64(8);
            let decision = br.decide(
                IfIndex(ingress),
                MacAddr::from_index(src),
                MacAddr::from_index(dst),
                None,
                Nanos::ZERO,
            );
            match decision {
                BridgeDecision::Forward(egress) => {
                    assert_ne!(egress, IfIndex(ingress), "hairpin");
                    assert_ne!(egress, IfIndex(blocked_port), "blocked egress");
                    assert!(br.port(egress).is_some());
                }
                BridgeDecision::Flood(ports) => {
                    assert!(!ports.contains(&IfIndex(ingress)));
                    assert!(!ports.contains(&IfIndex(blocked_port)));
                }
                BridgeDecision::Local | BridgeDecision::Drop(_) => {}
            }
        }
    }
}

/// Netfilter's evaluation equals a direct functional interpretation of
/// the rule list (first match wins, policy on fall-through).
#[test]
fn netfilter_matches_functional_model() {
    let mut rng = SimRng::seed(0x0E57_0004);
    for _ in 0..128 {
        let rules: Vec<(u32, u8, bool)> = (0..rng.uniform_u64(24))
            .map(|_| {
                (
                    rand_u32(&mut rng),
                    8 + rng.uniform_u64(25) as u8,
                    rng.chance(0.5),
                )
            })
            .collect();
        let mut nf = Netfilter::new();
        for (addr, len, is_drop) in &rules {
            let mut rule = IptRule::drop_dst(Prefix::new(Ipv4Addr::from(*addr), *len));
            if !*is_drop {
                rule.target = linuxfp_netstack::netfilter::RuleTargetField(
                    linuxfp_netstack::netfilter::RuleTarget::Accept,
                );
            }
            nf.append(ChainHook::Forward, rule);
        }
        let meta = PacketMeta {
            src: Ipv4Addr::new(1, 2, 3, 4),
            dst: Ipv4Addr::from(rand_u32(&mut rng)),
            proto: IpProto::Udp,
            sport: 1,
            dport: 2,
            in_if: IfIndex(1),
            out_if: IfIndex(2),
        };
        let cost = CostModel::calibrated();
        let mut t = CostTracker::new();
        let got = nf.evaluate(ChainHook::Forward, &meta, &cost, &mut t);
        let want = rules
            .iter()
            .find(|(addr, len, _)| Prefix::new(Ipv4Addr::from(*addr), *len).contains(meta.dst))
            .map(|(_, _, is_drop)| {
                if *is_drop {
                    NfVerdict::Drop
                } else {
                    NfVerdict::Accept
                }
            })
            .unwrap_or(NfVerdict::Accept);
        assert_eq!(got, want);
        // Cost is linear in rules examined: never more than the rule count.
        assert!(t.stage_count("nf_rule_match") <= rules.len() as u64);
    }
}

/// Conntrack: direction normalization means both directions always map to
/// one entry, and entries never outlive their timeouts.
#[test]
fn conntrack_direction_and_expiry_laws() {
    let mut rng = SimRng::seed(0x0E57_0005);
    for _ in 0..128 {
        let flows: Vec<(u32, u16, u32, u16)> = (0..1 + rng.uniform_u64(23))
            .map(|_| {
                (
                    rand_u32(&mut rng),
                    rng.uniform_u64(1 << 16) as u16,
                    rand_u32(&mut rng),
                    rng.uniform_u64(1 << 16) as u16,
                )
            })
            .collect();
        let probe_gap = rng.uniform_u64(1200);
        let mut ct = Conntrack::new();
        for (a, ap, b, bp) in &flows {
            ct.track(
                Ipv4Addr::from(*a),
                *ap,
                Ipv4Addr::from(*b),
                *bp,
                IpProto::Udp,
                Nanos::ZERO,
            );
            // Reply direction maps onto the same entry.
            let before = ct.len();
            ct.track(
                Ipv4Addr::from(*b),
                *bp,
                Ipv4Addr::from(*a),
                *ap,
                IpProto::Udp,
                Nanos::ZERO,
            );
            assert_eq!(ct.len(), before);
        }
        let (a, ap, b, bp) = flows[0];
        let key = FlowKey::new(Ipv4Addr::from(a), ap, Ipv4Addr::from(b), bp, IpProto::Udp);
        let entry = ct.lookup(&key, Nanos::from_secs(probe_gap));
        // Symmetric flows are Established unless (a, ap) == (b, bp), in
        // which case the "reply" is indistinguishable and it stays New.
        let timeout = if (a, ap) == (b, bp) { 60 } else { 600 };
        assert_eq!(entry.is_some(), probe_gap <= timeout);
    }
}
