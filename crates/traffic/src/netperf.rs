//! Closed-loop request/response latency measurement (the netperf TCP_RR
//! role), as a discrete-event simulation.
//!
//! Topology (paper §VI-A): traffic source and sink each connected to the
//! DUT by one link; N parallel sessions each run an unending
//! request/response ping-pong. Every transaction crosses the DUT twice
//! (request and response). The DUT is a single-core FIFO server whose
//! per-crossing service time comes from the platform measurement; on top
//! of the queueing delay, interrupt-driven platforms add softirq
//! scheduling jitter (exponentially distributed delivery delay that does
//! *not* consume server capacity — NAPI processes other packets
//! meanwhile), which is why Linux's tail latencies are so much worse
//! than its mean service time alone would suggest.

use linuxfp_platforms::Scheduling;
use linuxfp_sim::{CostModel, EventQueue, Nanos, SimRng, Summary};

/// Configuration of one RR latency experiment.
#[derive(Debug, Clone)]
pub struct RrConfig {
    /// Parallel sessions (128 in the paper).
    pub sessions: u32,
    /// Per-crossing DUT service time (ns) — from the platform
    /// measurement.
    pub service_ns: f64,
    /// The platform's scheduling class (jitter model).
    pub scheduling: Scheduling,
    /// Simulated measurement duration.
    pub duration: Nanos,
    /// Initial fraction of the duration to discard as warm-up.
    pub warmup_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RrConfig {
    /// The paper's single-core latency setup: 128 sessions.
    pub fn paper_default(service_ns: f64, scheduling: Scheduling) -> Self {
        RrConfig {
            sessions: 128,
            service_ns,
            scheduling,
            duration: Nanos::from_millis(200),
            warmup_fraction: 0.25,
            seed: 7,
        }
    }
}

/// Result of an RR experiment.
#[derive(Debug, Clone)]
pub struct RrResult {
    /// Transaction RTT statistics in microseconds.
    pub rtt_us: Summary,
    /// Completed transactions per second across all sessions.
    pub transactions_per_sec: f64,
}

#[derive(Debug, Clone, Copy)]
#[allow(clippy::enum_variant_names)]
enum Event {
    /// A crossing job (request or response leg) arrives at the DUT.
    ArriveDut {
        session: u32,
        txn_start: Nanos,
        is_response: bool,
    },
    /// The request reached the server; it answers after its app time.
    ArriveServer { session: u32, txn_start: Nanos },
    /// The response reached the client; the transaction completes and the
    /// session immediately issues the next request.
    ArriveClient { session: u32, txn_start: Nanos },
}

/// Runs the closed-loop RR simulation.
pub fn run_rr(cfg: &RrConfig) -> RrResult {
    let cost = CostModel::calibrated();
    let mut rng = SimRng::seed(cfg.seed);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let wire = Nanos::from_nanos_f64(cost.wire_ns);
    let (jitter_mean, irq_overhead) = match cfg.scheduling {
        Scheduling::InterruptFullStack => (
            cost.softirq_jitter_linux_ns,
            cost.irq_service_overhead_linux_ns,
        ),
        Scheduling::XdpResident => (cost.softirq_jitter_xdp_ns, cost.irq_service_overhead_xdp_ns),
        Scheduling::BusyPoll => (0.0, 0.0),
    };
    let crossing_ns = cfg.service_ns + irq_overhead;
    let warmup = Nanos::from_nanos_f64(cfg.duration.as_nanos() as f64 * cfg.warmup_fraction);

    // Stagger session starts across one service period to avoid phase
    // artifacts.
    for s in 0..cfg.sessions {
        let jiggle = Nanos::from_nanos_f64(rng.uniform_f64() * cfg.service_ns);
        queue.schedule(
            jiggle,
            Event::ArriveClient {
                session: s,
                txn_start: Nanos::ZERO, // sentinel: first txn starts fresh
            },
        );
    }

    let mut dut_free_at = Nanos::ZERO;
    let mut rtt_us = Summary::new();
    let mut completed_after_warmup: u64 = 0;

    while let Some((now, event)) = queue.pop() {
        if now > cfg.duration {
            break;
        }
        match event {
            Event::ArriveClient { session, txn_start } => {
                if txn_start > Nanos::ZERO && now >= warmup {
                    rtt_us.record(now.saturating_sub(txn_start).as_micros_f64());
                    completed_after_warmup += 1;
                }
                // Issue the next request immediately (TCP_RR keeps one
                // transaction in flight per session).
                queue.schedule(
                    now + wire,
                    Event::ArriveDut {
                        session,
                        txn_start: now,
                        is_response: false,
                    },
                );
            }
            Event::ArriveDut {
                session,
                txn_start,
                is_response,
            } => {
                let service = Nanos::from_nanos_f64(
                    crossing_ns * rng.lognormal_factor(cost.service_jitter_sigma),
                );
                let start = now.max(dut_free_at);
                let done = start + service;
                dut_free_at = done;
                // Scheduling jitter delays delivery without holding the
                // DUT core.
                let delivered = done + Nanos::from_nanos_f64(rng.exponential(jitter_mean));
                if is_response {
                    queue.schedule(delivered + wire, Event::ArriveClient { session, txn_start });
                } else {
                    queue.schedule(delivered + wire, Event::ArriveServer { session, txn_start });
                }
            }
            Event::ArriveServer { session, txn_start } => {
                // The endpoints are ordinary Linux hosts in every
                // configuration; occasional scheduler hiccups there are
                // what all platforms' p99 tails share (cf. Table III,
                // where even VPP's p99 is ~95 us above its mean).
                let hiccup = if rng.chance(cost.endpoint_hiccup_prob) {
                    rng.exponential(cost.endpoint_hiccup_ns)
                } else {
                    0.0
                };
                let app = Nanos::from_nanos_f64(cost.server_app_ns + hiccup);
                queue.schedule(
                    now + app + wire,
                    Event::ArriveDut {
                        session,
                        txn_start,
                        is_response: true,
                    },
                );
            }
        }
    }

    let measured_span = cfg.duration.saturating_sub(warmup).as_secs_f64();
    RrResult {
        rtt_us,
        transactions_per_sec: if measured_span > 0.0 {
            completed_after_warmup as f64 / measured_span
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturated_rtt_approximates_little_law() {
        // With N sessions, 2 crossings each, the closed loop saturates
        // the DUT: RTT ≈ N * 2 * service (+ mean jitter).
        let mut cfg = RrConfig::paper_default(1000.0, Scheduling::BusyPoll);
        cfg.seed = 1;
        let r = run_rr(&cfg);
        let expected = 128.0 * 2.0 * 1.0; // µs
        let mean = r.rtt_us.mean();
        assert!(
            (mean - expected).abs() / expected < 0.08,
            "mean {mean:.1} vs expected {expected:.1}"
        );
        assert!(r.rtt_us.count() > 1000);
        assert!(r.transactions_per_sec > 100_000.0);
    }

    #[test]
    fn linux_jitter_matches_paper_table3_shape() {
        // Linux virtual router: ~1.0 µs/crossing, interrupt jitter.
        let cfg = RrConfig::paper_default(1001.0, Scheduling::InterruptFullStack);
        let r = run_rr(&cfg);
        let mean = r.rtt_us.mean();
        let p99 = r.rtt_us.p99();
        // Paper Table III Linux: avg 326.9, p99 512.4, stddev 109.3.
        assert!((290.0..370.0).contains(&mean), "mean {mean:.1}");
        assert!((450.0..650.0).contains(&p99), "p99 {p99:.1}");
        let sd = r.rtt_us.stddev();
        assert!((45.0..160.0).contains(&sd), "stddev {sd:.1}");
    }

    #[test]
    fn xdp_platform_latency_shape() {
        // LinuxFP: ~0.565 µs/crossing, small jitter.
        let cfg = RrConfig::paper_default(565.0, Scheduling::XdpResident);
        let r = run_rr(&cfg);
        let mean = r.rtt_us.mean();
        // Paper Table III LinuxFP: avg 151.7, p99 279.4.
        assert!((135.0..175.0).contains(&mean), "mean {mean:.1}");
        assert!(r.rtt_us.p99() < 320.0, "p99 {}", r.rtt_us.p99());
    }

    #[test]
    fn faster_service_means_lower_latency_and_more_txns() {
        let slow = run_rr(&RrConfig::paper_default(1000.0, Scheduling::XdpResident));
        let fast = run_rr(&RrConfig::paper_default(500.0, Scheduling::XdpResident));
        let s = slow.rtt_us.clone();
        let f = fast.rtt_us.clone();
        assert!(f.percentile(50.0) < s.percentile(50.0));
        assert!(fast.transactions_per_sec > slow.transactions_per_sec * 1.8);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = RrConfig::paper_default(700.0, Scheduling::InterruptFullStack);
        let a = run_rr(&cfg);
        let b = run_rr(&cfg);
        assert_eq!(a.rtt_us.count(), b.rtt_us.count());
        assert!((a.rtt_us.mean() - b.rtt_us.mean()).abs() < 1e-12);
    }
}
