//! Workload generation and measurement harnesses.
//!
//! Two instruments, mirroring the paper's §VI-A methodology:
//!
//! - [`pktgen`]: DPDK-Pktgen-style open-loop throughput measurement —
//!   saturate the device under test with (minimum-size or swept-size)
//!   packets, measure the sustained packet rate for 1–N cores, capped at
//!   the 25 Gbps line rate.
//! - [`netperf`]: netperf-TCP_RR-style closed-loop latency measurement —
//!   128 parallel request/response sessions through the DUT, reporting
//!   average, 99th-percentile and standard deviation of the transaction
//!   RTT (the columns of paper Tables III/IV/V).

pub mod netperf;
pub mod pktgen;

pub use netperf::{run_rr, RrConfig, RrResult};
pub use pktgen::{sweep_cores, sweep_packet_sizes, throughput_pps, ThroughputPoint};
