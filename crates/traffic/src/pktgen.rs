//! Open-loop throughput measurement (the DPDK-Pktgen role).
//!
//! Measures a platform's steady-state per-packet service time on a
//! representative workload (after warm-up, as the paper lets Pktgen warm
//! up for 10 seconds), then converts it to sustained packets-per-second
//! for a given core count via the calibrated multi-core model, capped at
//! the NIC line rate.

use linuxfp_platforms::{Platform, Scenario};
use linuxfp_sim::rate::gbps_from_pps;
use linuxfp_sim::{CoreModel, CostModel};

/// One measured throughput point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputPoint {
    /// Cores used.
    pub cores: u32,
    /// Frame length including FCS.
    pub frame_len: u32,
    /// Sustained packets per second.
    pub pps: f64,
    /// The same in Gbps of L2 payload.
    pub gbps: f64,
    /// Measured per-packet service time (ns).
    pub service_ns: f64,
}

/// Measures sustained throughput for `cores` cores at the given frame
/// length (`frame_len` includes the 4-byte FCS; the frame handed to the
/// platform is 4 bytes shorter, like real NICs strip it).
pub fn throughput_pps(
    platform: &mut dyn Platform,
    scenario: Scenario,
    dut_mac: linuxfp_packet::MacAddr,
    cores: u32,
    frame_len: u32,
) -> ThroughputPoint {
    throughput_pps_burst(platform, scenario, dut_mac, cores, frame_len, 1)
}

/// Like [`throughput_pps`] but handing the platform bursts of `burst`
/// frames, the way a NAPI poll drains several frames per interrupt —
/// per-burst fixed costs amortize and the per-packet service time drops.
pub fn throughput_pps_burst(
    platform: &mut dyn Platform,
    scenario: Scenario,
    dut_mac: linuxfp_packet::MacAddr,
    cores: u32,
    frame_len: u32,
    burst: usize,
) -> ThroughputPoint {
    throughput_pps_burst_from(platform, scenario, dut_mac, cores, frame_len, burst, &mut 0)
}

/// The sweep-aware measurement primitive: generates flows starting at
/// `*flow_base` and advances it past the flows consumed. Sweeps that
/// revisit the *same* platform must thread one counter through every
/// point, the way a real Pktgen run keeps one monotone flow sequence —
/// restarting at zero would replay flows from earlier points and measure
/// LinuxFP's microflow verdict cache instead of the datapath under test.
fn throughput_pps_burst_from(
    platform: &mut dyn Platform,
    scenario: Scenario,
    dut_mac: linuxfp_packet::MacAddr,
    cores: u32,
    frame_len: u32,
    burst: usize,
    flow_base: &mut u64,
) -> ThroughputPoint {
    let on_wire_len = frame_len.max(64);
    let handed_len = (on_wire_len - 4) as usize;
    let base = *flow_base;
    let mut used = 0u64;
    let service_ns = platform.service_time_ns_batched(
        &mut |i, buf| {
            used = used.max(i + 1);
            scenario.fill_frame(dut_mac, base + i, handed_len, buf)
        },
        burst,
    );
    *flow_base = base + used;
    let cost = CostModel::calibrated();
    let model = CoreModel::new(&cost);
    let pps = model.throughput_pps_capped(service_ns, cores, on_wire_len);
    ThroughputPoint {
        cores,
        frame_len: on_wire_len,
        pps,
        gbps: gbps_from_pps(pps, on_wire_len),
        service_ns,
    }
}

/// Sweeps core counts at minimum frame size (paper Figs. 5 and 7). One
/// monotone flow sequence spans the whole sweep (see
/// [`throughput_pps_burst_from`]).
pub fn sweep_cores(
    platform: &mut dyn Platform,
    scenario: Scenario,
    dut_mac: linuxfp_packet::MacAddr,
    max_cores: u32,
) -> Vec<ThroughputPoint> {
    let mut flow_base = 0u64;
    (1..=max_cores)
        .map(|c| throughput_pps_burst_from(platform, scenario, dut_mac, c, 64, 1, &mut flow_base))
        .collect()
}

/// Sweeps frame sizes on one core (paper Fig. 6), one monotone flow
/// sequence across the sizes.
pub fn sweep_packet_sizes(
    platform: &mut dyn Platform,
    scenario: Scenario,
    dut_mac: linuxfp_packet::MacAddr,
    sizes: &[u32],
) -> Vec<ThroughputPoint> {
    let mut flow_base = 0u64;
    sizes
        .iter()
        .map(|s| throughput_pps_burst_from(platform, scenario, dut_mac, 1, *s, 1, &mut flow_base))
        .collect()
}

/// Sweeps NAPI burst sizes at minimum frame size on one core: the
/// batch-size dimension of the evaluation. Returns `(burst, point)`
/// pairs in the order given. One monotone flow sequence spans the whole
/// sweep.
pub fn sweep_batch_sizes(
    platform: &mut dyn Platform,
    scenario: Scenario,
    dut_mac: linuxfp_packet::MacAddr,
    bursts: &[usize],
) -> Vec<(usize, ThroughputPoint)> {
    let mut flow_base = 0u64;
    bursts
        .iter()
        .map(|&b| {
            (
                b,
                throughput_pps_burst_from(platform, scenario, dut_mac, 1, 64, b, &mut flow_base),
            )
        })
        .collect()
}

/// One measured point of the RSS shard-scaling sweep: aggregate
/// throughput when the same steady flow workload is spread over
/// `shards` receive queues, each serviced by its own core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardScalingPoint {
    /// RSS shard (receive queue / core) count.
    pub shards: u32,
    /// Aggregate sustained packets per second: packets divided by
    /// wall-clock time, where each burst's wall time is the *maximum*
    /// over its shards' virtual time (shards run in parallel).
    pub pps: f64,
    /// Wall-clock ns per packet (the parallel view).
    pub wall_ns_per_pkt: f64,
    /// Total CPU ns per packet summed over every shard (the work view;
    /// grows with shard count as per-queue fixed costs replicate).
    pub cpu_ns_per_pkt: f64,
}

/// Measures aggregate throughput of the sharded datapath for each shard
/// count in `shard_counts`, on a steady-flow minimum-size workload.
///
/// Methodology (mirroring how a multi-queue pktgen run exercises RSS):
///
/// - Each point gets a **fresh platform** (identically seeded), with
///   `net.linuxfp.rss_shards` set through the standard sysctl surface.
/// - The flow set is **RSS-balanced**: candidate 5-tuples are bucketed
///   by [`linuxfp_netstack::stack::rss::shard_for`] until every shard
///   owns `burst / shards` flows, so each burst splits evenly — the
///   open-loop generator's equivalent of a well-spread hash.
/// - Flows repeat across bursts (steady flows, warm caches), so the
///   sweep measures the sharded steady state rather than cold misses.
/// - Per-burst wall time is `BatchOutcome::wall_ns()` — the slowest
///   shard — and aggregate pps is packets over summed wall time.
///
/// # Panics
///
/// Panics if any shard count does not divide `burst` (the sweep needs
/// exactly balanced bursts to isolate scaling from load imbalance).
pub fn sweep_rss_shards(
    scenario: Scenario,
    shard_counts: &[u32],
    burst: usize,
) -> Vec<ShardScalingPoint> {
    use linuxfp_netstack::stack::rss;
    use linuxfp_packet::Batch;
    use linuxfp_platforms::LinuxFpPlatform;

    const WARMUP_BURSTS: usize = 8;
    const MEASURE_BURSTS: usize = 64;

    shard_counts
        .iter()
        .map(|&shards| {
            assert!(
                shards >= 1 && burst.is_multiple_of(shards as usize),
                "burst {burst} must divide evenly over {shards} shards"
            );
            let mut platform = LinuxFpPlatform::new(scenario);
            let mac = platform.dut_mac();
            platform
                .kernel_mut()
                .sysctl_set("net.linuxfp.rss_shards", i64::from(shards))
                .expect("rss_shards sysctl exists");

            // Balanced flow selection: walk the scenario's flow sequence
            // and keep the first `burst / shards` flows that RSS steers
            // to each shard, interleaved round-robin so every burst
            // carries each shard's share.
            let per_shard = burst / shards as usize;
            let mut buckets: Vec<Vec<Vec<u8>>> = vec![Vec::new(); shards as usize];
            let mut i = 0u64;
            while buckets.iter().any(|b| b.len() < per_shard) {
                let frame = scenario.frame(mac, i, 60);
                let shard = rss::shard_for(&frame, shards) as usize;
                if buckets[shard].len() < per_shard {
                    buckets[shard].push(frame);
                }
                i += 1;
                assert!(i < 1_000_000, "RSS never filled every shard bucket");
            }
            let flows: Vec<Vec<u8>> = (0..per_shard)
                .flat_map(|f| buckets.iter().map(move |b| b[f].clone()))
                .collect();

            let inject = |platform: &mut LinuxFpPlatform| {
                let mut batch = Batch::new();
                for frame in &flows {
                    batch.push(frame.clone());
                }
                platform.process_batch(&mut batch)
            };
            for _ in 0..WARMUP_BURSTS {
                inject(&mut platform);
            }
            let mut wall_ns = 0.0f64;
            let mut cpu_ns = 0.0f64;
            let mut packets = 0usize;
            for _ in 0..MEASURE_BURSTS {
                let out = inject(&mut platform);
                wall_ns += out.wall_ns();
                cpu_ns += out.total_ns();
                packets += out.batch_size;
            }
            ShardScalingPoint {
                shards,
                pps: packets as f64 / wall_ns * 1e9,
                wall_ns_per_pkt: wall_ns / packets as f64,
                cpu_ns_per_pkt: cpu_ns / packets as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use linuxfp_platforms::{LinuxFpPlatform, LinuxPlatform};

    #[test]
    fn min_size_throughput_matches_calibration() {
        let s = Scenario::router();
        let mut linux = LinuxPlatform::new(s);
        let mac = linux.dut_mac();
        let p = throughput_pps(&mut linux, s, mac, 1, 64);
        // Plain Linux forwarding ~1 Mpps single core.
        assert!((0.85e6..1.15e6).contains(&p.pps), "pps {}", p.pps);
        assert_eq!(p.cores, 1);
        assert_eq!(p.frame_len, 64);

        let mut lfp = LinuxFpPlatform::new(s);
        let mac = lfp.dut_mac();
        let p = throughput_pps(&mut lfp, s, mac, 1, 64);
        // LinuxFP ~1.77 Mpps single core (paper Table VII: 1,768,221).
        assert!((1.5e6..2.0e6).contains(&p.pps), "pps {}", p.pps);
    }

    #[test]
    fn core_sweep_is_monotonic() {
        let s = Scenario::router();
        let mut lfp = LinuxFpPlatform::new(s);
        let mac = lfp.dut_mac();
        let points = sweep_cores(&mut lfp, s, mac, 6);
        assert_eq!(points.len(), 6);
        for w in points.windows(2) {
            assert!(w[1].pps > w[0].pps, "sweep not monotonic");
        }
        // Roughly linear: 6 cores within [5x, 6x] of 1 core.
        let ratio = points[5].pps / points[0].pps;
        assert!((5.0..6.01).contains(&ratio), "scaling ratio {ratio}");
    }

    #[test]
    fn batch_sweep_amortizes_fixed_costs() {
        let s = Scenario::router();
        let mut lfp = LinuxFpPlatform::new(s);
        let mac = lfp.dut_mac();
        let points = sweep_batch_sizes(&mut lfp, s, mac, &[1, 8, 32, 64]);
        assert_eq!(points.len(), 4);
        for w in points.windows(2) {
            assert!(
                w[1].1.service_ns < w[0].1.service_ns,
                "burst {} ({:.1} ns) not cheaper than burst {} ({:.1} ns)",
                w[1].0,
                w[1].1.service_ns,
                w[0].0,
                w[0].1.service_ns
            );
        }
        // Burst of one is the historical per-packet measurement — on a
        // fresh (identically seeded) platform, since re-measuring the
        // swept one would replay flows its verdict cache already holds.
        let mut fresh = LinuxFpPlatform::new(s);
        let single = throughput_pps(&mut fresh, s, mac, 1, 64);
        assert!((points[0].1.service_ns - single.service_ns).abs() < 1e-9);
    }

    #[test]
    fn shard_sweep_scales_near_linearly() {
        let points = sweep_rss_shards(Scenario::router(), &[1, 2, 4, 8], 16);
        assert_eq!(points.len(), 4);
        for w in points.windows(2) {
            assert!(
                w[1].pps > w[0].pps,
                "{} shards ({:.0} pps) not faster than {} ({:.0} pps)",
                w[1].shards,
                w[1].pps,
                w[0].shards,
                w[0].pps
            );
        }
        // The ISSUE gate: 8 shards sustain at least 5x one shard; the
        // per-queue fixed costs keep it under perfectly linear 8x.
        let ratio = points[3].pps / points[0].pps;
        assert!((5.0..8.0).contains(&ratio), "8-shard scaling {ratio:.2}x");
        // CPU time per packet must *rise* with shards (replicated fixed
        // costs) even as wall time falls — work and wall views differ.
        assert!(points[3].cpu_ns_per_pkt > points[0].cpu_ns_per_pkt);
        assert!(points[3].wall_ns_per_pkt < points[0].wall_ns_per_pkt);
    }

    #[test]
    fn size_sweep_hits_line_rate_at_mtu() {
        let s = Scenario::router();
        let mut lfp = LinuxFpPlatform::new(s);
        let mac = lfp.dut_mac();
        let points = sweep_packet_sizes(&mut lfp, s, mac, &[64, 128, 256, 512, 1024, 1518]);
        // pps falls with size once line-rate limited; gbps rises.
        assert!(points.last().unwrap().gbps > 20.0, "near line rate at MTU");
        assert!(points[0].gbps < 2.0);
        // Service time is ~size independent (no payload copies on XDP).
        let spread = points
            .iter()
            .map(|p| p.service_ns)
            .fold((f64::MAX, f64::MIN), |(lo, hi), v| (lo.min(v), hi.max(v)));
        assert!(spread.1 - spread.0 < 50.0, "service spread {spread:?}");
    }
}
