//! `cargo bench` target that regenerates every paper table and figure.
//!
//! Not a statistical benchmark (the numbers come from deterministic
//! virtual-time simulation); `harness = false` lets this run as part of
//! `cargo bench --workspace` so the full artifact set lands in the bench
//! log.

use linuxfp_bench::{run_experiment, ALL_EXPERIMENTS};

fn main() {
    // Under `cargo bench -- --list`-style probing, still behave sanely.
    println!("Regenerating all LinuxFP paper artifacts (deterministic virtual-time results)\n");
    for id in ALL_EXPERIMENTS {
        let start = std::time::Instant::now();
        let table = run_experiment(id).expect("registered experiment");
        println!("{table}");
        println!("  [{id} regenerated in {:.2?}]\n", start.elapsed());
    }
}
