//! Criterion micro-benchmarks of the substrate: real wall-clock cost of
//! the operations the simulation charges virtual time for. These keep
//! the reproduction honest (the harness itself must be fast enough to
//! sweep the paper's parameter spaces) and act as performance regression
//! guards for the core data structures.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use linuxfp_core::capability::Capabilities;
use linuxfp_core::graph::build_graph;
use linuxfp_core::objects::ObjectStore;
use linuxfp_core::synth::{synthesize, trivial_chain_inline};
use linuxfp_ebpf::helpers::NullEnv;
use linuxfp_ebpf::maps::MapStore;
use linuxfp_ebpf::program::{LoadedProgram, Program};
use linuxfp_ebpf::verifier::verify;
use linuxfp_ebpf::vm::{self, VmCtx};
use linuxfp_netstack::bridge::Bridge;
use linuxfp_netstack::device::IfIndex;
use linuxfp_netstack::fib::{Fib, Route};
use linuxfp_netstack::netfilter::{ChainHook, IptRule, Netfilter, PacketMeta};
use linuxfp_packet::ipv4::{IpProto, Prefix};
use linuxfp_packet::{builder, MacAddr};
use linuxfp_platforms::{LinuxFpPlatform, LinuxPlatform, Platform, Scenario};
use linuxfp_sim::{CostModel, CostTracker, Nanos};
use std::net::Ipv4Addr;

fn bench_vm(c: &mut Criterion) {
    let program = trivial_chain_inline(8, 2);
    let loaded = LoadedProgram::load(program).unwrap();
    let maps = MapStore::new();
    let cost = CostModel::calibrated();
    c.bench_function("vm_interpret_chain8", |b| {
        b.iter_batched(
            || vec![0u8; 64],
            |mut pkt| {
                pkt[22] = 64; // TTL
                let mut tracker = CostTracker::new();
                let ctx = VmCtx::xdp(&mut pkt, 1, 0);
                vm::run(&loaded, ctx, &mut NullEnv, &maps, &cost, &mut tracker)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_verifier(c: &mut Criterion) {
    let program = trivial_chain_inline(16, 2);
    c.bench_function("verifier_chain16", |b| b.iter(|| verify(&program.insns)));
}

fn bench_synthesis(c: &mut Criterion) {
    let mut k = linuxfp_netstack::stack::Kernel::new(1);
    Scenario::gateway().configure_kernel(&mut k);
    let store = ObjectStore::snapshot(&k);
    let caps = Capabilities::full();
    c.bench_function("graph_plus_synthesis_gateway", |b| {
        b.iter(|| {
            let graph = build_graph(&store, &caps);
            synthesize(&graph).unwrap()
        })
    });
}

fn bench_fib(c: &mut Criterion) {
    let mut fib = Fib::new();
    for i in 0..1024u32 {
        fib.insert(Route::connected(
            Prefix::new(Ipv4Addr::from(0x0A00_0000 | (i << 8)), 24),
            IfIndex(1 + (i % 4)),
        ));
    }
    c.bench_function("fib_lpm_lookup_1k_routes", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            fib.lookup(Ipv4Addr::from(0x0A00_0000 | ((i % 1024) << 8) | 7))
        })
    });
}

fn bench_fdb(c: &mut Criterion) {
    let mut br = Bridge::new(IfIndex(10), MacAddr::from_index(10));
    for p in 1..=8 {
        br.add_port(IfIndex(p));
    }
    for i in 0..1024u64 {
        br.fdb_learn(MacAddr::from_index(i), 0, IfIndex(1 + (i % 8) as u32), Nanos::ZERO);
    }
    c.bench_function("bridge_fdb_lookup_1k_entries", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            br.fdb_lookup(MacAddr::from_index(i % 1024), 0, Nanos::from_nanos(1))
        })
    });
}

fn bench_netfilter(c: &mut Criterion) {
    let mut nf = Netfilter::new();
    for i in 0..100u32 {
        nf.append(
            ChainHook::Forward,
            IptRule::drop_dst(Prefix::new(Ipv4Addr::from(0xC0A8_0000 + (i << 8)), 24)),
        );
    }
    let meta = PacketMeta {
        src: Ipv4Addr::new(10, 0, 1, 100),
        dst: Ipv4Addr::new(10, 10, 3, 7),
        proto: IpProto::Udp,
        sport: 1,
        dport: 2,
        in_if: IfIndex(1),
        out_if: IfIndex(2),
    };
    let cost = CostModel::calibrated();
    c.bench_function("netfilter_eval_100_rules", |b| {
        b.iter(|| {
            let mut t = CostTracker::new();
            nf.evaluate(ChainHook::Forward, &meta, &cost, &mut t)
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let s = Scenario::router();
    let mut linux = LinuxPlatform::new(s);
    let mac = linux.dut_mac();
    let frame = s.frame(mac, 1, 60);
    c.bench_function("slowpath_forward_64b", |b| {
        b.iter_batched(
            || frame.clone(),
            |f| linux.process(f),
            BatchSize::SmallInput,
        )
    });
    let mut lfp = LinuxFpPlatform::new(s);
    let mac = lfp.dut_mac();
    let frame = s.frame(mac, 1, 60);
    c.bench_function("fastpath_forward_64b", |b| {
        b.iter_batched(|| frame.clone(), |f| lfp.process(f), BatchSize::SmallInput)
    });
}

fn bench_checksum(c: &mut Criterion) {
    let frame = builder::udp_packet(
        MacAddr::from_index(1),
        MacAddr::from_index(2),
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        1,
        2,
        &[0u8; 1024],
    );
    c.bench_function("internet_checksum_1k", |b| {
        b.iter(|| linuxfp_packet::checksum::checksum(&frame))
    });
    c.bench_function("program_load_router", |b| {
        let fp = linuxfp_core::synth::synthesize_pipeline(
            IfIndex(1),
            "bench",
            &[linuxfp_core::fpm::FpmInstance::Router],
        )
        .unwrap();
        b.iter(|| LoadedProgram::load(Program::new("bench", fp.program.insns.clone())).unwrap())
    });
}

fn fast_config() -> Criterion {
    // Keep the full `cargo bench --workspace` sweep quick; these are
    // regression guards, not publication numbers.
    Criterion::default()
        .sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700))
}

criterion_group!(
    name = benches;
    config = fast_config();
    targets = bench_vm,
    bench_verifier,
    bench_synthesis,
    bench_fib,
    bench_fdb,
    bench_netfilter,
    bench_end_to_end,
    bench_checksum
);
criterion_main!(benches);
