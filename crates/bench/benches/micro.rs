//! Micro-benchmarks of the substrate: real wall-clock cost of the
//! operations the simulation charges virtual time for. These keep the
//! reproduction honest (the harness itself must be fast enough to sweep
//! the paper's parameter spaces) and act as performance regression
//! guards for the core data structures.
//!
//! Hand-rolled harness — the build is offline, so no criterion. Each
//! benchmark warms up, then grows the iteration count until a run takes
//! long enough to time reliably, and reports ns/iter.
//!
//! The final comparison measures the observability tax: fast-path
//! forwarding with the telemetry registry wired in versus without. The
//! budget is 5% — per-packet instrumentation is a handful of relaxed
//! atomic increments on pre-resolved counters, so the delta should be
//! noise.

use linuxfp_core::capability::Capabilities;
use linuxfp_core::graph::build_graph;
use linuxfp_core::objects::ObjectStore;
use linuxfp_core::synth::{synthesize, trivial_chain_inline};
use linuxfp_ebpf::helpers::NullEnv;
use linuxfp_ebpf::hook::HookPoint;
use linuxfp_ebpf::maps::MapStore;
use linuxfp_ebpf::program::{LoadedProgram, Program};
use linuxfp_ebpf::verifier::verify;
use linuxfp_ebpf::vm::{self, VmCtx};
use linuxfp_netstack::bridge::Bridge;
use linuxfp_netstack::device::IfIndex;
use linuxfp_netstack::fib::{Fib, Route};
use linuxfp_netstack::netfilter::{ChainHook, IptRule, Netfilter, PacketMeta};
use linuxfp_packet::ipv4::{IpProto, Prefix};
use linuxfp_packet::{builder, MacAddr};
use linuxfp_platforms::{LinuxFpPlatform, LinuxPlatform, Platform, Scenario};
use linuxfp_sim::{CostModel, CostTracker, Nanos};
use linuxfp_telemetry::Registry;
use std::hint::black_box;
use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

/// Times `f`, returning mean ns/iter. Warms up, then quadruples the
/// iteration count until one timed run lasts at least `MIN_RUN`.
fn time_ns<R>(mut f: impl FnMut() -> R) -> f64 {
    const MIN_RUN: Duration = Duration::from_millis(25);
    const MAX_ITERS: u64 = 1 << 22;
    for _ in 0..64 {
        black_box(f());
    }
    let mut iters = 64u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= MIN_RUN || iters >= MAX_ITERS {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        iters = (iters * 4).min(MAX_ITERS);
    }
}

fn report(name: &str, ns: f64) -> f64 {
    println!("{name:<34} {ns:>12.1} ns/iter");
    ns
}

fn bench_vm() {
    let program = trivial_chain_inline(8, 2);
    let loaded = LoadedProgram::load(program).unwrap();
    let maps = MapStore::new();
    let cost = CostModel::calibrated();
    let mut pkt = vec![0u8; 64];
    pkt[22] = 64; // TTL
    report(
        "vm_interpret_chain8",
        time_ns(|| {
            let mut scratch = pkt.clone();
            let mut tracker = CostTracker::new();
            let ctx = VmCtx::xdp(&mut scratch, 1, 0);
            vm::run(&loaded, ctx, &mut NullEnv, &maps, &cost, &mut tracker)
        }),
    );
}

fn bench_verifier() {
    let program = trivial_chain_inline(16, 2);
    report("verifier_chain16", time_ns(|| verify(&program.insns)));
}

fn bench_synthesis() {
    let mut k = linuxfp_netstack::stack::Kernel::new(1);
    Scenario::gateway().configure_kernel(&mut k);
    let store = ObjectStore::snapshot(&k);
    let caps = Capabilities::full();
    report(
        "graph_plus_synthesis_gateway",
        time_ns(|| {
            let graph = build_graph(&store, &caps);
            synthesize(&graph).unwrap()
        }),
    );
}

fn bench_fib() {
    let mut fib = Fib::new();
    for i in 0..1024u32 {
        fib.insert(Route::connected(
            Prefix::new(Ipv4Addr::from(0x0A00_0000 | (i << 8)), 24),
            IfIndex(1 + (i % 4)),
        ));
    }
    let mut i = 0u32;
    report(
        "fib_lpm_lookup_1k_routes",
        time_ns(|| {
            i = i.wrapping_add(1);
            fib.lookup(Ipv4Addr::from(0x0A00_0000 | ((i % 1024) << 8) | 7))
        }),
    );
}

fn bench_fdb() {
    let mut br = Bridge::new(IfIndex(10), MacAddr::from_index(10));
    for p in 1..=8 {
        br.add_port(IfIndex(p));
    }
    for i in 0..1024u64 {
        br.fdb_learn(
            MacAddr::from_index(i),
            0,
            IfIndex(1 + (i % 8) as u32),
            Nanos::ZERO,
        );
    }
    let mut i = 0u64;
    report(
        "bridge_fdb_lookup_1k_entries",
        time_ns(|| {
            i = i.wrapping_add(1);
            br.fdb_lookup(MacAddr::from_index(i % 1024), 0, Nanos::from_nanos(1))
        }),
    );
}

fn bench_netfilter() {
    let mut nf = Netfilter::new();
    for i in 0..100u32 {
        nf.append(
            ChainHook::Forward,
            IptRule::drop_dst(Prefix::new(Ipv4Addr::from(0xC0A8_0000 + (i << 8)), 24)),
        );
    }
    let meta = PacketMeta {
        src: Ipv4Addr::new(10, 0, 1, 100),
        dst: Ipv4Addr::new(10, 10, 3, 7),
        proto: IpProto::Udp,
        sport: 1,
        dport: 2,
        in_if: IfIndex(1),
        out_if: IfIndex(2),
    };
    let cost = CostModel::calibrated();
    report(
        "netfilter_eval_100_rules",
        time_ns(|| {
            let mut t = CostTracker::new();
            nf.evaluate(ChainHook::Forward, &meta, &cost, &mut t)
        }),
    );
}

fn bench_end_to_end() {
    let s = Scenario::router();
    let mut linux = LinuxPlatform::new(s);
    let mac = linux.dut_mac();
    let frame = s.frame(mac, 1, 60);
    report(
        "slowpath_forward_64b",
        time_ns(|| linux.process(frame.clone())),
    );

    let mut lfp = LinuxFpPlatform::new(s);
    let mac = lfp.dut_mac();
    let frame = s.frame(mac, 1, 60);
    report(
        "fastpath_forward_64b",
        time_ns(|| lfp.process(frame.clone())),
    );
}

fn bench_checksum() {
    let frame = builder::udp_packet(
        MacAddr::from_index(1),
        MacAddr::from_index(2),
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        1,
        2,
        &[0u8; 1024],
    );
    report(
        "internet_checksum_1k",
        time_ns(|| linuxfp_packet::checksum::checksum(&frame)),
    );
    let fp = linuxfp_core::synth::synthesize_pipeline(
        IfIndex(1),
        "bench",
        &[linuxfp_core::fpm::FpmInstance::Router],
    )
    .unwrap();
    report(
        "program_load_router",
        time_ns(|| LoadedProgram::load(Program::new("bench", fp.program.insns.clone())).unwrap()),
    );
}

/// The observability tax: fast-path forwarding, telemetry off vs on.
/// Runs the pair interleaved over several passes and keeps the best
/// (least-noisy) time for each side before computing the overhead.
fn bench_telemetry_overhead() {
    let s = Scenario::router();

    let mut off = LinuxFpPlatform::new(s);
    let mac_off = off.dut_mac();
    let frame_off = s.frame(mac_off, 1, 60);

    let registry = Registry::new();
    let mut on = LinuxFpPlatform::with_telemetry(s, HookPoint::Xdp, registry.clone());
    let mac_on = on.dut_mac();
    let frame_on = s.frame(mac_on, 1, 60);

    // Third lane: counters *and* the flight recorder at 1-in-64 — the
    // sampled tracing must fit inside the same 5% budget.
    let traced_registry = Registry::new();
    let mut traced = LinuxFpPlatform::with_telemetry(s, HookPoint::Xdp, traced_registry);
    let mac_traced = traced.dut_mac();
    let frame_traced = s.frame(mac_traced, 1, 60);
    let ring = traced.kernel_mut().enable_flight_recorder(1024, 64);

    let (mut best_off, mut best_on, mut best_traced) = (f64::MAX, f64::MAX, f64::MAX);
    for _ in 0..3 {
        best_off = best_off.min(time_ns(|| off.process(frame_off.clone())));
        best_on = best_on.min(time_ns(|| on.process(frame_on.clone())));
        best_traced = best_traced.min(time_ns(|| traced.process(frame_traced.clone())));
    }
    report("fastpath_forward_telemetry_off", best_off);
    report("fastpath_forward_telemetry_on", best_on);
    report("fastpath_forward_trace_1in64", best_traced);
    let overhead = (best_on - best_off) / best_off * 100.0;
    let verdict = if overhead <= 5.0 { "within" } else { "OVER" };
    println!("telemetry overhead: {overhead:+.2}% ({verdict} the 5% budget)");
    let trace_overhead = (best_traced - best_off) / best_off * 100.0;
    let trace_verdict = if trace_overhead <= 5.0 {
        "within"
    } else {
        "OVER"
    };
    println!(
        "telemetry overhead (trace 1-in-64): {trace_overhead:+.2}% \
         ({trace_verdict} the 5% budget)"
    );
    assert!(
        registry.counter_total("linuxfp_fp_hits_total") > 0,
        "instrumented run must actually count packets"
    );
    assert!(
        ring.total_pushed() > 0,
        "1-in-64 sampling must have recorded spans"
    );
}

fn main() {
    println!("micro-benchmarks (hand-rolled harness, mean ns/iter)\n");
    bench_vm();
    bench_verifier();
    bench_synthesis();
    bench_fib();
    bench_fdb();
    bench_netfilter();
    bench_end_to_end();
    bench_checksum();
    println!();
    bench_telemetry_overhead();
}
