//! Ablations of LinuxFP's design decisions (beyond the paper's figures):
//!
//! 1. **State sharing** (§IV-B2): the fast path reads *kernel* state via
//!    helpers, so a standard `ip route change` takes effect on the very
//!    next packet. A shadow-map platform keeps serving stale state until
//!    its custom control plane is re-synchronized.
//! 2. **Minimality** (§III-A "less code leads to more efficient code
//!    paths"): the dynamically synthesized minimal pipeline vs. a
//!    monolithic data path with every module compiled in regardless of
//!    configuration.

use crate::table::ExperimentTable;
use linuxfp_core::fpm::{FilterConf, FpmInstance, IpvsConf};
use linuxfp_core::synth::synthesize_pipeline;
use linuxfp_ebpf::hook::{attach, HookPoint};
use linuxfp_ebpf::maps::MapStore;
use linuxfp_ebpf::opt;
use linuxfp_ebpf::program::{LoadedProgram, Program};
use linuxfp_netstack::device::IfIndex;
use linuxfp_packet::{EthernetFrame, Ipv4Header, MacAddr};
use linuxfp_platforms::scenario::{Scenario, NEXT_HOP, SINK_MAC, SOURCE_MAC};
use linuxfp_platforms::{LinuxFpPlatform, Platform, PolycubePlatform};
use std::net::Ipv4Addr;

/// The new next hop installed mid-experiment.
const NEW_HOP: Ipv4Addr = Ipv4Addr::new(10, 0, 2, 3);
/// The new next hop's MAC.
const NEW_HOP_MAC: MacAddr = MacAddr::new([0x02, 0xCC, 0xCC, 0xCC, 0xCC, 0x03]);

fn egress_mac(out: &linuxfp_netstack::RxOutcome) -> Option<MacAddr> {
    let tx = out.transmissions();
    if tx.len() != 1 {
        return None;
    }
    Some(EthernetFrame::parse(tx[0].1).ok()?.dst)
}

/// State-sharing ablation: after a standard `ip route change`, how many
/// packets does each platform still forward to the *old* next hop?
/// `sync_lag` models how many packets pass before an external agent
/// resynchronizes the shadow-state platform's custom control plane.
pub fn ablation_state_sharing(sync_lag: u32) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Ablation A",
        "State sharing: packets misrouted after `ip route change`",
        &["platform", "state source", "stale packets"],
    );
    let scenario = Scenario::router();

    // LinuxFP: kernel state via helpers — the change is a plain route
    // replace; the next fast-path packet already uses it.
    let mut lfp = LinuxFpPlatform::new(scenario);
    let mac = lfp.dut_mac();
    // Warm.
    let _ = lfp.process(scenario.frame(mac, 1, 60));
    {
        let k = lfp.kernel_mut();
        let eth1 = k.ifindex("ens1f1").expect("scenario device");
        let now = k.now();
        k.neigh.learn(NEW_HOP, NEW_HOP_MAC, eth1, now);
        // `ip route change 10.10.0.0/24 via 10.0.2.3` for every prefix.
        for i in 0..scenario.prefixes {
            k.ip_route_del(Scenario::route_prefix(i), None)
                .expect("route exists");
            k.ip_route_add(Scenario::route_prefix(i), Some(NEW_HOP), None)
                .expect("gateway on subnet");
        }
    }
    lfp.poll_controller(); // the controller reacts, but even without a
                           // resynthesis the helper already sees the new FIB
    let mut lfp_stale = 0u32;
    for i in 0..64u64 {
        let out = lfp.process(scenario.frame(mac, i, 60));
        if egress_mac(&out) == Some(SINK_MAC) {
            lfp_stale += 1;
        } else {
            assert_eq!(egress_mac(&out), Some(NEW_HOP_MAC), "packet lost entirely");
        }
    }
    table.row(vec![
        "LinuxFP".into(),
        "kernel tables (helpers)".into(),
        lfp_stale.to_string(),
    ]);

    // Polycube-style: the kernel route change is invisible; its maps keep
    // the old next hop until the custom control plane is updated after
    // `sync_lag` packets.
    let mut pcn = PolycubePlatform::new(scenario);
    let mac = pcn.dut_mac();
    let _ = pcn.process(scenario.frame(mac, 1, 60));
    // (The operator updates the *kernel* route; Polycube does not see it.)
    let mut pcn_stale = 0u32;
    for i in 0..64u64 {
        if i == u64::from(sync_lag) {
            // The external sync agent finally pushes the change through
            // the custom API.
            let nh = pcn.pcn_nexthop_add(
                linuxfp_netstack::device::IfIndex(2),
                NEW_HOP_MAC,
                MacAddr::from_index(100 * 0x10000 + 2),
            );
            for p in 0..scenario.prefixes {
                pcn.pcn_route_add(Scenario::route_prefix(p), nh);
            }
        }
        let out = pcn.process(scenario.frame(mac, i, 60));
        if egress_mac(&out) == Some(SINK_MAC) {
            pcn_stale += 1;
        }
    }
    table.row(vec![
        "Polycube-style".into(),
        "shadow eBPF maps (custom ctl)".into(),
        pcn_stale.to_string(),
    ]);
    table.note(format!(
        "operator runs a standard `ip route change`; the shadow-state platform resyncs after {sync_lag} packets"
    ));
    table.note("unified state means zero staleness — the paper's correctness-through-state-sharing argument");
    table
}

/// Minimality ablation: the synthesized minimal router program vs. a
/// monolithic always-everything program, on plain forwarding traffic.
pub fn ablation_minimality() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Ablation B",
        "Dynamic minimality: minimal synthesized path vs. monolithic data path",
        &["data path", "instructions", "ns/packet", "Mpps (1 core)"],
    );
    let scenario = Scenario::router();

    let mut measure = |label: &str, pipeline: &[FpmInstance]| {
        let mut kernel = linuxfp_netstack::stack::Kernel::new(100);
        let (eth0, _) = scenario.configure_kernel(&mut kernel);
        let fp = synthesize_pipeline(eth0, "ablation", pipeline).expect("synthesizes");
        // Both rows go through the synthesis-time optimizer, exactly as
        // the deployer would: the minimality comparison is between what
        // production actually loads, not raw emitter output.
        let (optimized, _) = opt::optimize(&fp.program.insns);
        let loaded = LoadedProgram::load(Program::new(fp.program.name.clone(), optimized))
            .expect("verifies");
        let insns = loaded.len();
        attach(&mut kernel, eth0, HookPoint::Xdp, loaded, MapStore::new()).expect("attach");
        let mac = kernel.device(eth0).expect("exists").mac;
        // Warm + measure.
        for i in 0..8u64 {
            let _ = kernel.receive(eth0, scenario.frame(mac, i, 60));
        }
        let mut total = 0.0;
        for i in 0..64u64 {
            let out = kernel.receive(eth0, scenario.frame(mac, i, 60));
            assert_eq!(out.transmissions().len(), 1, "{label}: must forward");
            // Sanity: identical output regardless of the extra modules.
            let eth = EthernetFrame::parse(out.transmissions()[0].1).unwrap();
            assert_eq!(eth.dst, SINK_MAC);
            let ip = Ipv4Header::parse(&out.transmissions()[0].1[14..]).unwrap();
            assert_eq!(ip.ttl, 63);
            total += out.cost.total_ns();
        }
        let service = total / 64.0;
        table.row(vec![
            label.to_string(),
            insns.to_string(),
            ExperimentTable::num(service, 1),
            ExperimentTable::num(1e3 / service, 3),
        ]);
        service
    };

    // What the controller synthesizes for this configuration.
    let minimal = measure("minimal (router only)", &[FpmInstance::Router]);
    // A monolithic path: filter with port parsing and two ipvs services
    // compiled in although nothing is configured.
    let monolithic = measure(
        "monolithic (ipvs+router+filter)",
        &[
            FpmInstance::Ipvs(IpvsConf {
                vip: [10, 96, 0, 10],
                port: 53,
            }),
            FpmInstance::Ipvs(IpvsConf {
                vip: [10, 96, 0, 11],
                port: 80,
            }),
            FpmInstance::Router,
            FpmInstance::Filter(FilterConf {
                rules: 0,
                ipset: false,
                match_ports: true,
            }),
        ],
    );
    let overhead = monolithic / minimal - 1.0;
    table.note(format!(
        "monolithic data path costs {:.1}% more per packet for identical output — \
         why LinuxFP synthesizes only what the configuration needs",
        overhead * 100.0
    ));
    table
}

/// Dummy use to keep the scenario helpers' constants linked.
const _: Ipv4Addr = NEXT_HOP;
const _: MacAddr = SOURCE_MAC;
const _: IfIndex = IfIndex(0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_sharing_zero_staleness_for_linuxfp() {
        let t = ablation_state_sharing(16);
        assert_eq!(t.value("LinuxFP", 2), 0.0, "{t}");
        assert_eq!(t.value("Polycube-style", 2), 16.0, "{t}");
    }

    #[test]
    fn minimality_monolithic_is_measurably_slower() {
        let t = ablation_minimality();
        let minimal_insns = t.cell_f64(0, 1);
        let mono_insns = t.cell_f64(1, 1);
        assert!(mono_insns > minimal_insns * 1.5, "{t}");
        let minimal_ns = t.cell_f64(0, 2);
        let mono_ns = t.cell_f64(1, 2);
        // Extra modules cost real per-packet time (>3%) for nothing.
        assert!(mono_ns > minimal_ns * 1.03, "{t}");
        // But never change the verdicts (asserted inside measure()).
    }
}
