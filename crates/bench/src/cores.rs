//! Core-scaling experiment: measured aggregate throughput of the
//! sharded datapath versus shard count, plus the contention census the
//! sweep enables.
//!
//! Two lanes:
//!
//! - **Steady flows** — the RSS-balanced steady-flow router workload at
//!   1/2/4/8/16 shards. Wall clock per burst is the slowest shard, so
//!   the table is a *measured* version of the paper's Fig. 5 scaling
//!   curve (the analytic `CoreModel` is validated against it in
//!   `tests/paper_claims.rs`).
//! - **Churn** — the same workload at 8 shards with a route replaced
//!   between bursts. Every shared-structure generation bump makes the
//!   other shards' views stale; `linuxfp_coherence_events_total` then
//!   names the most contended structure (on a routed workload: the FIB).

use crate::table::ExperimentTable;
use linuxfp_ebpf::hook::HookPoint;
use linuxfp_netstack::stack::rss;
use linuxfp_packet::Batch;
use linuxfp_platforms::scenario::NEXT_HOP;
use linuxfp_platforms::{LinuxFpPlatform, Platform, Scenario};
use linuxfp_telemetry::Registry;
use linuxfp_traffic::pktgen::sweep_rss_shards;

/// Burst size: 16 packets per NAPI poll, evenly divisible by every
/// swept shard count so bursts stay balanced.
pub const BURST: usize = 16;

/// Shard counts the sweep covers (the paper's Figs. 5/7 stop at 6
/// cores; 16 probes the model's extrapolation limit).
pub const SHARD_COUNTS: [u32; 5] = [1, 2, 4, 8, 16];

/// The churn lane: runs the steady workload on `shards` shards with
/// telemetry wired, replacing a route (same next hop — semantics-free)
/// between bursts, and returns `(structure, events)` sorted by events
/// descending.
fn coherence_census(scenario: Scenario, shards: u32, bursts: usize) -> Vec<(String, u64)> {
    let registry = Registry::new();
    let mut lfp = LinuxFpPlatform::with_telemetry(scenario, HookPoint::Xdp, registry.clone());
    let mac = lfp.dut_mac();
    lfp.kernel_mut()
        .sysctl_set("net.linuxfp.rss_shards", i64::from(shards))
        .expect("rss_shards sysctl exists");
    // A balanced flow per shard, like the sweep uses.
    let mut flows: Vec<Vec<u8>> = Vec::new();
    let mut i = 0u64;
    while flows.len() < BURST {
        let frame = scenario.frame(mac, i, 60);
        if rss::shard_for(&frame, shards) as usize == flows.len() % shards as usize {
            flows.push(frame);
        }
        i += 1;
    }
    for _ in 0..bursts {
        let _ = lfp
            .kernel_mut()
            .ip_route_add(Scenario::route_prefix(0), Some(NEXT_HOP), None);
        lfp.poll_controller();
        let mut batch = Batch::with_capacity(BURST);
        for f in &flows {
            batch.push(f.clone());
        }
        lfp.process_batch(&mut batch);
    }
    let mut census: Vec<(String, u64)> = registry
        .counter_series("linuxfp_coherence_events_total")
        .into_iter()
        .map(|(labels, v)| {
            let structure = labels
                .into_iter()
                .find(|(k, _)| k == "structure")
                .map(|(_, v)| v)
                .unwrap_or_default();
            (structure, v)
        })
        .collect();
    census.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    census
}

/// The `core_scaling` experiment: measured shard-scaling sweep plus the
/// churn-lane contention census.
pub fn core_scaling_experiment() -> ExperimentTable {
    let scenario = Scenario::router();
    let points = sweep_rss_shards(scenario, &SHARD_COUNTS, BURST);
    let mut table = ExperimentTable::new(
        "Core scaling",
        "Measured sharded-datapath scaling: steady-flow router, burst 16",
        &["shards", "pps", "speedup", "wall [ns/pkt]", "cpu [ns/pkt]"],
    );
    let base = points[0].pps;
    for p in &points {
        table.row(vec![
            p.shards.to_string(),
            ExperimentTable::num(p.pps, 0),
            ExperimentTable::num(p.pps / base, 2),
            ExperimentTable::num(p.wall_ns_per_pkt, 1),
            ExperimentTable::num(p.cpu_ns_per_pkt, 1),
        ]);
    }
    let census = coherence_census(scenario, 8, 16);
    match census.first() {
        Some((structure, events)) => {
            let rest: Vec<String> = census
                .iter()
                .skip(1)
                .map(|(s, v)| format!("{s}={v}"))
                .collect();
            table.note(format!(
                "churn lane (8 shards, route replace between bursts): most contended \
                 structure is `{structure}` ({events} coherence misses{})",
                if rest.is_empty() {
                    String::new()
                } else {
                    format!("; then {}", rest.join(", "))
                }
            ));
        }
        None => {
            table.note("churn lane recorded no coherence events");
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_shards_scale_at_least_five_fold() {
        let t = core_scaling_experiment();
        // The acceptance gate scripts/ci.sh also enforces.
        let speedup = t.value("8", 2);
        assert!(speedup >= 5.0, "8-shard speedup {speedup}: {t}");
        // Wall time falls monotonically; CPU time per packet rises
        // (replicated per-queue fixed costs).
        for shards in ["2", "4", "8", "16"] {
            assert!(t.value(shards, 3) < t.value("1", 3), "{t}");
            assert!(t.value(shards, 4) > t.value("1", 4), "{t}");
        }
    }

    #[test]
    fn churn_census_names_the_fib() {
        let census = coherence_census(Scenario::router(), 8, 16);
        assert!(!census.is_empty(), "no coherence events under churn");
        assert_eq!(
            census[0].0, "fib",
            "routed churn must contend on the FIB: {census:?}"
        );
        assert!(census[0].1 > 0);
    }
}
