//! Virtual-network-function experiments: the paper's §VI-A1 — virtual
//! router and virtual gateway across four platforms.
//!
//! Regenerates Figures 5–8 and Tables III–IV.

use crate::table::ExperimentTable;
use linuxfp_platforms::{
    LinuxFpPlatform, LinuxPlatform, Platform, PolycubePlatform, Scenario, VppPlatform,
};
use linuxfp_traffic::netperf::{run_rr, RrConfig};
use linuxfp_traffic::pktgen;

/// All four platforms configured for a scenario, with their workload MAC.
fn platforms(scenario: Scenario) -> Vec<(String, Box<dyn Platform>, linuxfp_packet::MacAddr)> {
    let linux = LinuxPlatform::new(scenario);
    let linux_mac = linux.dut_mac();
    let pcn = PolycubePlatform::new(scenario);
    let pcn_mac = pcn.dut_mac();
    let vpp = VppPlatform::new(scenario);
    let vpp_mac = vpp.dut_mac();
    let lfp = LinuxFpPlatform::new(scenario);
    let lfp_mac = lfp.dut_mac();
    vec![
        (
            "Linux".to_string(),
            Box::new(linux) as Box<dyn Platform>,
            linux_mac,
        ),
        ("Polycube".to_string(), Box::new(pcn), pcn_mac),
        ("VPP".to_string(), Box::new(vpp), vpp_mac),
        ("LinuxFP".to_string(), Box::new(lfp), lfp_mac),
    ]
}

/// Figure 5: virtual-router throughput (Mpps) as a function of cores,
/// minimum-size packets, 50 prefixes.
pub fn fig5_router_throughput(max_cores: u32) -> ExperimentTable {
    let scenario = Scenario::router();
    let mut headers = vec!["platform".to_string()];
    headers.extend((1..=max_cores).map(|c| format!("{c} core(s) [Mpps]")));
    let mut table = ExperimentTable::new(
        "Figure 5",
        "Virtual router throughput vs. cores (64B packets, 50 prefixes)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for (name, mut platform, mac) in platforms(scenario) {
        let mut cells = vec![name];
        for point in pktgen::sweep_cores(platform.as_mut(), scenario, mac, max_cores) {
            cells.push(ExperimentTable::num(point.pps / 1e6, 3));
        }
        table.row(cells);
    }
    table.note(
        "paper: LinuxFP ~1.77x Linux, ~1.19x Polycube; VPP above all (batching, dedicated cores)",
    );
    table
}

/// Table III: virtual-router RTT with a single core, 128 netperf TCP_RR
/// sessions (µs).
pub fn table3_router_latency() -> ExperimentTable {
    latency_table(
        "Table III",
        "Virtual router RTT, single core, 128 RR sessions (us)",
        Scenario::router(),
        false,
    )
}

/// Figure 6: single-core router throughput vs. packet size (Gbps).
pub fn fig6_packet_size_sweep() -> ExperimentTable {
    let scenario = Scenario::router();
    let sizes = [64u32, 128, 256, 512, 1024, 1518];
    let mut headers = vec!["platform".to_string()];
    headers.extend(sizes.iter().map(|s| format!("{s}B [Gbps]")));
    let mut table = ExperimentTable::new(
        "Figure 6",
        "Virtual router single-core throughput vs. packet size",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for (name, mut platform, mac) in platforms(scenario) {
        let mut cells = vec![name];
        for point in pktgen::sweep_packet_sizes(platform.as_mut(), scenario, mac, &sizes) {
            cells.push(ExperimentTable::num(point.gbps, 2));
        }
        table.row(cells);
    }
    table.note("paper: LinuxFP and Polycube near the 25G line rate at 1500B with one core");
    table
}

/// Figure 7: virtual-gateway throughput (Mpps) vs. cores — 100 blacklist
/// rules + 50 prefixes, with the LinuxFP ipset variant included.
pub fn fig7_gateway_throughput(max_cores: u32) -> ExperimentTable {
    let scenario = Scenario::gateway();
    let mut headers = vec!["platform".to_string()];
    headers.extend((1..=max_cores).map(|c| format!("{c} core(s) [Mpps]")));
    let mut table = ExperimentTable::new(
        "Figure 7",
        "Virtual gateway throughput vs. cores (100 rules, 64B packets)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for (name, mut platform, mac) in platforms(scenario) {
        let mut cells = vec![name];
        for point in pktgen::sweep_cores(platform.as_mut(), scenario, mac, max_cores) {
            cells.push(ExperimentTable::num(point.pps / 1e6, 3));
        }
        table.row(cells);
    }
    // The ipset-aggregated LinuxFP variant the paper highlights.
    let ipset = Scenario::gateway_ipset();
    let mut lfp = LinuxFpPlatform::new(ipset);
    let mac = lfp.dut_mac();
    let mut cells = vec!["LinuxFP (ipset)".to_string()];
    for point in pktgen::sweep_cores(&mut lfp, ipset, mac, max_cores) {
        cells.push(ExperimentTable::num(point.pps / 1e6, 3));
    }
    table.row(cells);
    table.note("paper: LinuxFP ~2x Linux; with ipset aggregation LinuxFP beats Polycube");
    table
}

/// Table IV: virtual-gateway RTT, single core (µs), including the ipset
/// variants.
pub fn table4_gateway_latency() -> ExperimentTable {
    latency_table(
        "Table IV",
        "Virtual gateway RTT, single core, 128 RR sessions (us)",
        Scenario::gateway(),
        true,
    )
}

fn latency_table(
    id: &'static str,
    title: &'static str,
    scenario: Scenario,
    with_ipset_variants: bool,
) -> ExperimentTable {
    let mut table = ExperimentTable::new(id, title, &["platform", "avg", "p99", "stddev"]);
    let measure =
        |name: String, platform: &mut dyn Platform, mac: linuxfp_packet::MacAddr, sc: Scenario| {
            let service = platform.service_time_ns(&mut |i, buf| sc.fill_frame(mac, i, 60, buf));
            let result = run_rr(&RrConfig::paper_default(
                service,
                platform.traits().scheduling,
            ));
            let mut row = vec![name];
            row.push(ExperimentTable::num(result.rtt_us.mean(), 3));
            row.push(ExperimentTable::num(result.rtt_us.p99(), 3));
            row.push(ExperimentTable::num(result.rtt_us.stddev(), 3));
            row
        };
    for (name, mut platform, mac) in platforms(scenario) {
        let row = measure(name, platform.as_mut(), mac, scenario);
        table.row(row);
    }
    if with_ipset_variants {
        let ipset = Scenario::gateway_ipset();
        let mut linux = LinuxPlatform::new(ipset);
        let mac = linux.dut_mac();
        let row = measure("Linux (ipset)".into(), &mut linux, mac, ipset);
        table.row(row);
        let mut lfp = LinuxFpPlatform::new(ipset);
        let mac = lfp.dut_mac();
        let row = measure("LinuxFP (ipset)".into(), &mut lfp, mac, ipset);
        table.row(row);
    }
    table.note("paper Table III: Linux 326.9/512.4/109.3, Polycube 145.8, VPP 85.6, LinuxFP 151.7");
    table
}

/// Figure 8: single-core gateway throughput (Mpps) vs. number of filter
/// rules; Linux and LinuxFP decay with the linear scan, Polycube's
/// classifier and LinuxFP's ipset aggregation stay flat.
pub fn fig8_rules_sweep() -> ExperimentTable {
    let rule_counts = [1u32, 10, 50, 100, 250, 500, 1000];
    let mut headers = vec!["platform".to_string()];
    headers.extend(rule_counts.iter().map(|r| format!("{r} rules [Mpps]")));
    let mut table = ExperimentTable::new(
        "Figure 8",
        "Virtual gateway single-core throughput vs. filter rules",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );

    let make_scenario = |rules: u32, ipset: bool| Scenario {
        filter_rules: rules,
        use_ipset: ipset,
        ..Scenario::router()
    };

    let mut rows: Vec<(String, Vec<String>)> = vec![
        ("Linux".into(), Vec::new()),
        ("Polycube".into(), Vec::new()),
        ("LinuxFP".into(), Vec::new()),
        ("LinuxFP (ipset)".into(), Vec::new()),
    ];
    for &rules in &rule_counts {
        let s = make_scenario(rules, false);
        let si = make_scenario(rules, true);
        let mut linux = LinuxPlatform::new(s);
        let mac = linux.dut_mac();
        rows[0].1.push(ExperimentTable::num(
            pktgen::throughput_pps(&mut linux, s, mac, 1, 64).pps / 1e6,
            3,
        ));
        let mut pcn = PolycubePlatform::new(s);
        let mac = pcn.dut_mac();
        rows[1].1.push(ExperimentTable::num(
            pktgen::throughput_pps(&mut pcn, s, mac, 1, 64).pps / 1e6,
            3,
        ));
        let mut lfp = LinuxFpPlatform::new(s);
        let mac = lfp.dut_mac();
        rows[2].1.push(ExperimentTable::num(
            pktgen::throughput_pps(&mut lfp, s, mac, 1, 64).pps / 1e6,
            3,
        ));
        let mut lfpi = LinuxFpPlatform::new(si);
        let mac = lfpi.dut_mac();
        rows[3].1.push(ExperimentTable::num(
            pktgen::throughput_pps(&mut lfpi, si, mac, 1, 64).pps / 1e6,
            3,
        ));
    }
    for (name, cells) in rows {
        let mut row = vec![name];
        row.extend(cells);
        table.row(row);
    }
    table.note("paper: linear iptables search hurts Linux and LinuxFP; ipset keeps LinuxFP flat and ahead of Polycube");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_reproduces_paper_ordering() {
        let t = fig5_router_throughput(4);
        // Single-core column: VPP > LinuxFP > Polycube > Linux.
        let linux = t.value("Linux", 1);
        let pcn = t.value("Polycube", 1);
        let vpp = t.value("VPP", 1);
        let lfp = t.value("LinuxFP", 1);
        assert!(vpp > lfp && lfp > pcn && pcn > linux, "{t}");
        // The headline 77% speedup.
        let speedup = lfp / linux;
        assert!((1.6..1.95).contains(&speedup), "speedup {speedup:.2}");
        // ~19% over Polycube (footnote 2).
        let over_pcn = lfp / pcn;
        assert!(
            (1.02..1.4).contains(&over_pcn),
            "over polycube {over_pcn:.2}"
        );
        // 4-core scaling near-linear for every platform.
        for name in ["Linux", "Polycube", "VPP", "LinuxFP"] {
            let r = t.value(name, 4) / t.value(name, 1);
            assert!((3.4..4.01).contains(&r), "{name} 4-core ratio {r:.2}");
        }
    }

    #[test]
    fn table3_reproduces_paper_ordering() {
        let t = table3_router_latency();
        let linux = t.value("Linux", 1);
        let lfp = t.value("LinuxFP", 1);
        let vpp = t.value("VPP", 1);
        assert!(vpp < lfp && lfp < linux, "{t}");
        // The paper's 53% latency reduction claim (LinuxFP vs Linux).
        let reduction = 1.0 - lfp / linux;
        assert!(
            (0.40..0.62).contains(&reduction),
            "reduction {reduction:.2}"
        );
        // p99 > avg for everyone.
        for row in &t.rows {
            let avg: f64 = row[1].parse().unwrap();
            let p99: f64 = row[2].parse().unwrap();
            assert!(p99 > avg);
        }
    }

    #[test]
    fn fig6_line_rate_at_mtu() {
        let t = fig6_packet_size_sweep();
        // At 1518B, LinuxFP and Polycube approach the 25G line rate with
        // one core (our service times anchor to Table VII's single-core
        // pps, which caps XDP platforms slightly below full line rate —
        // see EXPERIMENTS.md on the paper's own Fig.6/Table VII tension).
        let cols = t.headers.len() - 1;
        assert!(t.value("LinuxFP", cols) > 20.0, "{t}");
        assert!(t.value("Polycube", cols) > 16.5, "{t}");
        // Linux stays well below.
        assert!(t.value("Linux", cols) < 16.0, "{t}");
    }

    #[test]
    fn fig7_gateway_ordering() {
        let t = fig7_gateway_throughput(2);
        let linux = t.value("Linux", 1);
        let lfp = t.value("LinuxFP", 1);
        let lfp_ipset = t.value("LinuxFP (ipset)", 1);
        let pcn = t.value("Polycube", 1);
        // LinuxFP ~2x Linux even with the linear scan.
        let speedup = lfp / linux;
        assert!(
            (1.6..2.6).contains(&speedup),
            "gateway speedup {speedup:.2}"
        );
        // ipset variant beats Polycube (the paper's point).
        assert!(lfp_ipset > pcn, "{t}");
        // Plain LinuxFP (linear scan) is below Polycube's classifier.
        assert!(lfp < pcn, "{t}");
    }

    #[test]
    fn table4_ipset_improves_latency() {
        let t = table4_gateway_latency();
        assert!(t.value("LinuxFP (ipset)", 1) < t.value("LinuxFP", 1));
        assert!(t.value("Linux (ipset)", 1) < t.value("Linux", 1));
        assert!(t.value("VPP", 1) < t.value("LinuxFP (ipset)", 1));
        // Paper ordering: LinuxFP(ipset) < Polycube.
        assert!(
            t.value("LinuxFP (ipset)", 1) < t.value("Polycube", 1),
            "{t}"
        );
    }

    #[test]
    fn fig8_scaling_shapes() {
        let t = fig8_rules_sweep();
        let first_col = 1;
        let last_col = t.headers.len() - 1;
        // Linux decays heavily with rules (>5x from 1 to 1000 rules).
        let linux_decay = t.value("Linux", first_col) / t.value("Linux", last_col);
        assert!(linux_decay > 5.0, "linux decay {linux_decay:.1} {t}");
        // LinuxFP decays too (inherits the linear search) but less.
        let lfp_decay = t.value("LinuxFP", first_col) / t.value("LinuxFP", last_col);
        assert!(lfp_decay > 2.0 && lfp_decay < linux_decay, "{t}");
        // Polycube and LinuxFP(ipset) are ~flat (<15% decay).
        for name in ["Polycube", "LinuxFP (ipset)"] {
            let decay = t.value(name, first_col) / t.value(name, last_col);
            assert!(decay < 1.15, "{name} decay {decay:.2} {t}");
        }
        // At 1000 rules LinuxFP(ipset) is the best non-VPP platform.
        assert!(t.value("LinuxFP (ipset)", last_col) > t.value("Polycube", last_col));
        assert!(t.value("LinuxFP (ipset)", last_col) > t.value("Linux", last_col) * 3.0);
    }
}
