//! Batch-size sweep: per-packet service time as the NAPI burst grows.
//!
//! The batched datapath charges per-burst fixed work (driver poll entry,
//! hook dispatch, the dispatcher's program-array walk) once per burst
//! instead of once per packet. This experiment sweeps the burst size on
//! the router fast path and reports ns/packet: the kernel platforms get
//! monotonically cheaper with larger bursts, while VPP — which always
//! runs full 256-packet vectors internally — is flat by construction.

use crate::table::ExperimentTable;
use linuxfp_platforms::{
    LinuxFpPlatform, LinuxPlatform, Platform, PolycubePlatform, Scenario, VppPlatform,
};
use linuxfp_traffic::pktgen;

/// The burst sizes the sweep visits.
pub const BATCH_SIZES: [usize; 4] = [1, 8, 32, 64];

/// The batch-size sweep on the virtual router (64B frames, one core):
/// per-packet service time in ns for each platform and burst size.
pub fn batch_sweep() -> ExperimentTable {
    let scenario = Scenario::router();
    let mut headers = vec!["platform".to_string()];
    headers.extend(BATCH_SIZES.iter().map(|b| format!("burst {b} [ns/pkt]")));
    let mut table = ExperimentTable::new(
        "Batch sweep",
        "Virtual router per-packet service time vs. NAPI burst size",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );

    let mut sweep = |name: &str, platform: &mut dyn Platform, mac: linuxfp_packet::MacAddr| {
        let mut cells = vec![name.to_string()];
        for (_, point) in pktgen::sweep_batch_sizes(platform, scenario, mac, &BATCH_SIZES) {
            cells.push(ExperimentTable::num(point.service_ns, 1));
        }
        table.row(cells);
    };

    let mut linux = LinuxPlatform::new(scenario);
    let mac = linux.dut_mac();
    sweep("Linux", &mut linux, mac);
    let mut pcn = PolycubePlatform::new(scenario);
    let mac = pcn.dut_mac();
    sweep("Polycube", &mut pcn, mac);
    let mut vpp = VppPlatform::new(scenario);
    let mac = vpp.dut_mac();
    sweep("VPP", &mut vpp, mac);
    let mut lfp = LinuxFpPlatform::new(scenario);
    let mac = lfp.dut_mac();
    sweep("LinuxFP", &mut lfp, mac);

    table.note("kernel platforms amortize per-burst fixed costs; VPP always runs full vectors, so its row is flat");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_platforms_get_cheaper_with_burst_size() {
        let t = batch_sweep();
        let cols = 1..=BATCH_SIZES.len();
        for name in ["Linux", "Polycube", "LinuxFP"] {
            for w in cols.clone().collect::<Vec<_>>().windows(2) {
                assert!(
                    t.value(name, w[1]) < t.value(name, w[0]),
                    "{name} not monotonically cheaper: {t}"
                );
            }
        }
        // VPP's internal vectors are burst-independent.
        let vpp_spread = t.value("VPP", BATCH_SIZES.len()) - t.value("VPP", 1);
        assert!(vpp_spread.abs() < 1e-6, "VPP spread {vpp_spread}: {t}");
        // LinuxFP stays the fastest kernel platform at every burst size.
        for c in cols {
            assert!(t.value("LinuxFP", c) < t.value("Polycube", c), "{t}");
            assert!(t.value("Polycube", c) < t.value("Linux", c), "{t}");
        }
    }

    #[test]
    fn amortization_narrows_the_gap_to_vpp() {
        // The larger the burst, the closer LinuxFP gets to the
        // kernel-bypass baseline — batching recovers part of what
        // dedicating cores buys VPP.
        let t = batch_sweep();
        let gap_1 = t.value("LinuxFP", 1) / t.value("VPP", 1);
        let gap_64 = t.value("LinuxFP", BATCH_SIZES.len()) / t.value("VPP", BATCH_SIZES.len());
        assert!(gap_64 < gap_1, "gap at 64 ({gap_64:.2}) vs 1 ({gap_1:.2})");
    }
}
