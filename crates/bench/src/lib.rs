//! The benchmark harness: one function per table and figure of the
//! LinuxFP paper's evaluation, each returning a printable
//! [`table::ExperimentTable`].
//!
//! Run everything with the `repro` binary:
//!
//! ```text
//! cargo run -p linuxfp-bench --bin repro --release          # all experiments
//! cargo run -p linuxfp-bench --bin repro --release -- fig5  # one experiment
//! ```
//!
//! | id | paper artifact | function |
//! |---|---|---|
//! | `fig1` | Fig. 1 flame graph | [`control::fig1_flame_profile`] |
//! | `table2` | Table II platform comparison | [`control::table2_platform_comparison`] |
//! | `fig5` | Fig. 5 router throughput vs cores | [`vnf::fig5_router_throughput`] |
//! | `table3` | Table III router RTT | [`vnf::table3_router_latency`] |
//! | `fig6` | Fig. 6 throughput vs packet size | [`vnf::fig6_packet_size_sweep`] |
//! | `fig7` | Fig. 7 gateway throughput vs cores | [`vnf::fig7_gateway_throughput`] |
//! | `table4` | Table IV gateway RTT | [`vnf::table4_gateway_latency`] |
//! | `fig8` | Fig. 8 throughput vs filter rules | [`vnf::fig8_rules_sweep`] |
//! | `fig9` | Fig. 9 pod-to-pod throughput | [`pods::fig9_pod_throughput`] |
//! | `table5` | Table V pod-to-pod latency | [`pods::table5_pod_latency`] |
//! | `table6` | Table VI reaction time | [`control::table6_reaction_time`] |
//! | `fig10` | Fig. 10 calls vs tail calls | [`hooks::fig10_call_vs_tailcall`] |
//! | `table7` | Table VII XDP vs TC | [`hooks::table7_hook_comparison`] |

pub mod ablations;
pub mod batch;
pub mod control;
pub mod cores;
pub mod flow_cache;
pub mod hooks;
pub mod jit;
pub mod l7;
pub mod opt;
pub mod pods;
pub mod table;
pub mod trace;
pub mod vnf;

pub use table::ExperimentTable;

/// Runs one experiment by id; `None` for unknown ids.
pub fn run_experiment(id: &str) -> Option<ExperimentTable> {
    Some(match id {
        "fig1" => control::fig1_flame_profile(),
        "table1" => control::table1_acceleration_model(),
        "table2" => control::table2_platform_comparison(),
        "fig5" => vnf::fig5_router_throughput(6),
        "table3" => vnf::table3_router_latency(),
        "fig6" => vnf::fig6_packet_size_sweep(),
        "fig7" => vnf::fig7_gateway_throughput(6),
        "table4" => vnf::table4_gateway_latency(),
        "fig8" => vnf::fig8_rules_sweep(),
        "fig9" => pods::fig9_pod_throughput(10),
        "table5" => pods::table5_pod_latency(),
        "table6" => control::table6_reaction_time(),
        "fig10" => hooks::fig10_call_vs_tailcall(),
        "table7" => hooks::table7_hook_comparison(),
        "ablation_state" => ablations::ablation_state_sharing(16),
        "ablation_minimal" => ablations::ablation_minimality(),
        "batch_sweep" => batch::batch_sweep(),
        "core_scaling" => cores::core_scaling_experiment(),
        "flow_cache" => flow_cache::flow_cache_experiment(),
        "trace_breakdown" => trace::trace_breakdown_experiment(),
        "l7_gateway" => l7::l7_gateway_experiment(),
        "jit_dispatch" => jit::jit_dispatch_experiment(),
        "opt_dispatch" => opt::opt_dispatch_experiment(),
        _ => return None,
    })
}

/// All experiment ids: the paper's artifacts in paper order, followed by
/// the design-decision ablations DESIGN.md calls out.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig1",
    "table1",
    "table2",
    "fig5",
    "table3",
    "fig6",
    "fig7",
    "table4",
    "fig8",
    "fig9",
    "table5",
    "table6",
    "fig10",
    "table7",
    "ablation_state",
    "ablation_minimal",
    "batch_sweep",
    "core_scaling",
    "flow_cache",
    "trace_breakdown",
    "l7_gateway",
    "jit_dispatch",
    "opt_dispatch",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_runs() {
        // Smoke test of the cheap experiments; the heavier assertions
        // live in the per-module tests.
        for id in ["table2", "fig1"] {
            let t = run_experiment(id).expect("known id");
            assert!(!t.rows.is_empty(), "{id} produced no rows");
        }
        assert!(run_experiment("fig99").is_none());
        assert_eq!(ALL_EXPERIMENTS.len(), 23);
    }
}
