//! Microbenchmark experiments on eBPF mechanics: paper §VI-B —
//! function-call vs. tail-call composition (Fig. 10) and the XDP vs. TC
//! hook comparison (Table VII).

use crate::table::ExperimentTable;
use linuxfp_core::controller::{Controller, ControllerConfig};
use linuxfp_core::synth::{trivial_chain_inline, trivial_chain_tailcalls};
use linuxfp_ebpf::hook::{attach, HookPoint};
use linuxfp_ebpf::maps::MapStore;
use linuxfp_ebpf::program::LoadedProgram;
use linuxfp_netstack::device::IfIndex;
use linuxfp_netstack::stack::Kernel;
use linuxfp_packet::{builder, MacAddr};
use linuxfp_platforms::{LinuxFpPlatform, Platform, Scenario, Scheduling};
use linuxfp_traffic::netperf::{run_rr, RrConfig};
use std::net::Ipv4Addr;

/// Builds a bare two-NIC kernel for chain experiments.
fn chain_kernel() -> (Kernel, IfIndex, IfIndex) {
    let mut k = Kernel::new(55);
    let eth0 = k.add_physical("eth0").unwrap();
    let eth1 = k.add_physical("eth1").unwrap();
    k.ip_link_set_up(eth0).unwrap();
    k.ip_link_set_up(eth1).unwrap();
    (k, eth0, eth1)
}

fn chain_service_ns(k: &mut Kernel, eth0: IfIndex) -> f64 {
    let frame = builder::udp_packet(
        MacAddr::from_index(1),
        MacAddr::from_index(2),
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        1,
        2,
        b"chain",
    );
    // Warm-up, then measure.
    for _ in 0..8 {
        let _ = k.receive(eth0, frame.clone());
    }
    let mut total = 0.0;
    const N: usize = 64;
    for _ in 0..N {
        let out = k.receive(eth0, frame.clone());
        assert_eq!(out.transmissions().len(), 1, "chain must forward");
        total += out.cost.total_ns();
    }
    total / N as f64
}

/// Figure 10: throughput (Mpps) of a chain of N trivial network
/// functions composed with inlined function calls vs. tail calls,
/// terminated by a rewrite + `XDP_REDIRECT` function.
pub fn fig10_call_vs_tailcall() -> ExperimentTable {
    let ns = [1usize, 2, 4, 6, 8, 10, 12, 14, 16];
    let mut headers = vec!["composition".to_string()];
    headers.extend(ns.iter().map(|n| format!("{n} NFs [Mpps]")));
    let mut table = ExperimentTable::new(
        "Figure 10",
        "Chain of trivial NFs: function calls vs. tail calls",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );

    let mut inline_cells = vec!["function calls".to_string()];
    let mut tc_cells = vec!["tail calls".to_string()];
    for &n in &ns {
        // Inlined composition (LinuxFP's approach).
        let (mut k, eth0, eth1) = chain_kernel();
        let prog =
            LoadedProgram::load(trivial_chain_inline(n, eth1.as_u32())).expect("chain verifies");
        attach(&mut k, eth0, HookPoint::Xdp, prog, MapStore::new()).unwrap();
        let service = chain_service_ns(&mut k, eth0);
        inline_cells.push(ExperimentTable::num(1e3 / service, 3));

        // Tail-call composition (the Polycube approach).
        let (mut k, eth0, eth1) = chain_kernel();
        let maps = MapStore::new();
        let (entry, _) = trivial_chain_tailcalls(n, eth1.as_u32(), &maps);
        let entry = LoadedProgram::load(entry).expect("chain verifies");
        attach(&mut k, eth0, HookPoint::Xdp, entry, maps).unwrap();
        let service = chain_service_ns(&mut k, eth0);
        tc_cells.push(ExperimentTable::num(1e3 / service, 3));
    }
    table.row(inline_cells);
    table.row(tc_cells);
    table.note("paper: function calls ~steady; tail calls drop ~1% per added function");
    table
}

/// A bridged LinuxFP setup for the Table VII "bridge" function: two
/// ports on a bridge, controller-attached, FDB warmed.
fn bridged_linuxfp(hook: HookPoint) -> (Kernel, IfIndex, MacAddr, MacAddr) {
    let mut k = Kernel::new(66);
    let p1 = k.add_physical("p1").unwrap();
    let p2 = k.add_physical("p2").unwrap();
    let br = k.add_bridge("br0").unwrap();
    k.brctl_addif(br, p1).unwrap();
    k.brctl_addif(br, p2).unwrap();
    for d in [p1, p2, br] {
        k.ip_link_set_up(d).unwrap();
    }
    let cfg = ControllerConfig {
        hook,
        ..ControllerConfig::default()
    };
    let (_ctrl, report) = Controller::attach(&mut k, cfg).expect("deploy");
    assert!(report.changed);
    let host_a = MacAddr::from_index(0xA1);
    let host_b = MacAddr::from_index(0xB1);
    // Learn both hosts so the fast path gets FDB hits.
    let learn1 = builder::udp_packet(
        host_a,
        host_b,
        Ipv4Addr::new(1, 1, 1, 1),
        Ipv4Addr::new(1, 1, 1, 2),
        1,
        2,
        b"w",
    );
    let learn2 = builder::udp_packet(
        host_b,
        host_a,
        Ipv4Addr::new(1, 1, 1, 2),
        Ipv4Addr::new(1, 1, 1, 1),
        2,
        1,
        b"w",
    );
    k.receive(p1, learn1);
    k.receive(p2, learn2);
    (k, p1, host_a, host_b)
}

fn bridge_service_ns(hook: HookPoint) -> f64 {
    let (mut k, p1, host_a, host_b) = bridged_linuxfp(hook);
    // A monotone flow sequence, like the pktgen workloads: repeating one
    // identical frame would measure the microflow verdict cache instead
    // of the bridge datapath.
    let mut flow = 0u16;
    let mut next_frame = || {
        flow += 1;
        builder::udp_packet(
            host_a,
            host_b,
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(1, 1, 1, 2),
            1000 + flow,
            2000,
            b"bench",
        )
    };
    for _ in 0..8 {
        let out = k.receive(p1, next_frame());
        assert_eq!(out.transmissions().len(), 1);
    }
    let mut total = 0.0;
    const N: usize = 64;
    for _ in 0..N {
        let out = k.receive(p1, next_frame());
        total += out.cost.total_ns();
    }
    total / N as f64
}

/// Table VII: throughput (pps) and mean RR latency (µs) of the bridge,
/// forwarding and filtering functions on the XDP hook vs. the TC hook.
pub fn table7_hook_comparison() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Table VII",
        "LinuxFP functions on XDP vs. TC hooks (single core)",
        &[
            "function",
            "XDP [pps]",
            "TC [pps]",
            "XDP latency [us]",
            "TC latency [us]",
        ],
    );

    let mut row = |name: &str, xdp_service: f64, tc_service: f64| {
        let lat = |service: f64| {
            run_rr(&RrConfig::paper_default(service, Scheduling::XdpResident))
                .rtt_us
                .mean()
        };
        table.row(vec![
            name.to_string(),
            ExperimentTable::num(1e9 / xdp_service, 0),
            ExperimentTable::num(1e9 / tc_service, 0),
            ExperimentTable::num(lat(xdp_service), 3),
            ExperimentTable::num(lat(tc_service), 3),
        ]);
    };

    // Bridge.
    row(
        "bridge",
        bridge_service_ns(HookPoint::Xdp),
        bridge_service_ns(HookPoint::Tc),
    );

    // Forwarding.
    let s = Scenario::router();
    let mut xdp = LinuxFpPlatform::with_hook(s, HookPoint::Xdp);
    let mx = xdp.dut_mac();
    let fx = xdp.service_time_ns(&mut |i, buf| s.fill_frame(mx, i, 60, buf));
    let mut tc = LinuxFpPlatform::with_hook(s, HookPoint::Tc);
    let mt = tc.dut_mac();
    let ft = tc.service_time_ns(&mut |i, buf| s.fill_frame(mt, i, 60, buf));
    row("forwarding", fx, ft);

    // Filtering: the gateway with a small rule set (10 rules), as the
    // standalone filtering function.
    let s = Scenario {
        filter_rules: 10,
        ..Scenario::router()
    };
    let mut xdp = LinuxFpPlatform::with_hook(s, HookPoint::Xdp);
    let mx = xdp.dut_mac();
    let gx = xdp.service_time_ns(&mut |i, buf| s.fill_frame(mx, i, 60, buf));
    let mut tc = LinuxFpPlatform::with_hook(s, HookPoint::Tc);
    let mt = tc.dut_mac();
    let gt = tc.service_time_ns(&mut |i, buf| s.fill_frame(mt, i, 60, buf));
    row("filtering", gx, gt);

    table.note("paper: XDP ~2x TC pps (sk_buff avoidance); filtering measured with 10 rules");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_tail_calls_decay_one_percent_per_nf() {
        let t = fig10_call_vs_tailcall();
        let cols = t.headers.len() - 1;
        let inline_1 = t.value("function calls", 1);
        let inline_16 = t.value("function calls", cols);
        let tc_1 = t.value("tail calls", 1);
        let tc_16 = t.value("tail calls", cols);
        // Function calls stay comparatively steady; tail calls decay
        // several times faster per added NF (the paper's qualitative
        // result — our interpreter makes both slopes steeper than a JIT,
        // see EXPERIMENTS.md).
        let inline_drop = 1.0 - inline_16 / inline_1;
        assert!(inline_drop < 0.18, "inline drop {inline_drop:.3} {t}");
        let tc_drop = 1.0 - tc_16 / tc_1;
        assert!(
            (0.20..0.60).contains(&tc_drop),
            "tailcall drop {tc_drop:.3} {t}"
        );
        assert!(
            tc_drop > inline_drop * 2.5,
            "tail calls must decay much faster: {tc_drop:.3} vs {inline_drop:.3}"
        );
        // And tail calls are never faster than inlining.
        for c in 1..=cols {
            assert!(t.value("function calls", c) >= t.value("tail calls", c) * 0.99);
        }
    }

    #[test]
    fn table7_xdp_beats_tc_for_every_function() {
        let t = table7_hook_comparison();
        for name in ["bridge", "forwarding", "filtering"] {
            let xdp = t.value(name, 1);
            let tc = t.value(name, 2);
            let ratio = xdp / tc;
            assert!(
                (1.5..2.6).contains(&ratio),
                "{name}: XDP/TC pps ratio {ratio:.2} {t}"
            );
            // Latency: TC worse than XDP.
            assert!(t.value(name, 4) > t.value(name, 3), "{name} latency {t}");
        }
        // Paper's ordering: bridge fastest, filtering slowest.
        assert!(t.value("bridge", 1) > t.value("forwarding", 1));
        assert!(t.value("forwarding", 1) > t.value("filtering", 1));
        // Near the paper's absolute XDP numbers (1.91M / 1.77M / 1.18M).
        let fwd = t.value("forwarding", 1);
        assert!((1.5e6..2.1e6).contains(&fwd), "forwarding pps {fwd}");
    }
}
