//! Control-plane and motivation experiments: the flame-graph profile of
//! Fig. 1, the qualitative platform comparison of Table II, and the
//! controller reaction times of Table VI.

use crate::table::ExperimentTable;
use linuxfp_core::controller::{Controller, ControllerConfig};
use linuxfp_netstack::netfilter::{ChainHook, IptRule};
use linuxfp_netstack::stack::{IfAddr, Kernel};
use linuxfp_platforms::{
    LinuxFpPlatform, LinuxPlatform, Platform, PolycubePlatform, Scenario, VppPlatform,
};
use linuxfp_sim::CostTracker;
use std::net::Ipv4Addr;

/// Figure 1: the flame-graph-style profile of Linux forwarding — where
/// slow-path time goes, demonstrating that hot spots exist.
pub fn fig1_flame_profile() -> ExperimentTable {
    let scenario = Scenario::router();
    let mut linux = LinuxPlatform::new(scenario);
    let mac = linux.dut_mac();
    let mut total = CostTracker::new();
    for i in 0..256u64 {
        let out = linux.process(scenario.frame(mac, i, 60));
        total.merge(&out.cost);
    }
    let mut table = ExperimentTable::new(
        "Figure 1",
        "Linux forwarding profile (slow-path stage breakdown)",
        &["stage", "total ns", "share %"],
    );
    let grand = total.total_ns();
    let mut stages: Vec<(&'static str, f64)> =
        total.stages().map(|(s, c)| (s, c.total_ns)).collect();
    stages.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (stage, ns) in stages {
        table.row(vec![
            stage.to_string(),
            ExperimentTable::num(ns, 0),
            ExperimentTable::num(100.0 * ns / grand, 1),
        ]);
    }
    table.note("the same call sequence dominates every packet: a fast-path target exists");
    table
}

/// Table I: the acceleration model — fast-path / in-kernel-state /
/// slow-path split per subsystem, derived from the FPM library's
/// metadata rather than hand-written prose.
pub fn table1_acceleration_model() -> ExperimentTable {
    use linuxfp_core::fpm::FpmKind;
    let mut table = ExperimentTable::new(
        "Table I",
        "Acceleration model per subsystem",
        &[
            "subsystem",
            "fast path (FPM)",
            "helpers used",
            "control plane + slow path",
        ],
    );
    let rows: [(FpmKind, &str, &str); 4] = [
        (
            FpmKind::Bridge,
            "parse, FDB lookup/refresh, forward",
            "FDB manage+aging, miss flooding, STP processing",
        ),
        (
            FpmKind::Router,
            "parse, FIB lookup, rewrite, forward",
            "ARP handling, IP (de)fragmentation, ICMP errors",
        ),
        (
            FpmKind::Filter,
            "parse, rule evaluation, allow/deny",
            "conntrack handling, rules on unsupported hooks",
        ),
        (
            FpmKind::Ipvs,
            "parse, conntrack lookup, rewrite",
            "conntrack entries, scheduling algorithms",
        ),
    ];
    for (kind, fast, slow) in rows {
        let helpers: Vec<String> = kind
            .required_helpers()
            .iter()
            .map(|h| format!("{h:?}"))
            .collect();
        table.row(vec![
            kind.key().to_string(),
            fast.to_string(),
            helpers.join(", "),
            slow.to_string(),
        ]);
    }
    table.note(
        "helpers column is derived from FpmKind::required_helpers() — the live code metadata",
    );
    table
}

/// Table II: qualitative platform comparison.
pub fn table2_platform_comparison() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Table II",
        "Platform comparison",
        &[
            "platform",
            "kernel resident",
            "standard Linux API",
            "transparent accel",
            "dedicated cores",
        ],
    );
    let scenario = Scenario::router();
    let all: Vec<Box<dyn Platform>> = vec![
        Box::new(LinuxPlatform::new(scenario)),
        Box::new(PolycubePlatform::new(scenario)),
        Box::new(VppPlatform::new(scenario)),
        Box::new(LinuxFpPlatform::new(scenario)),
    ];
    for p in &all {
        let t = p.traits();
        let b = |v: bool| if v { "yes" } else { "no" }.to_string();
        table.row(vec![
            t.name.to_string(),
            b(t.kernel_resident),
            b(t.standard_linux_api),
            b(t.transparent_acceleration),
            b(t.dedicated_cores),
        ]);
    }
    table.note(
        "LinuxFP is the only platform combining in-kernel acceleration with the standard API",
    );
    table
}

/// Table VI: controller reaction time (seconds) for representative
/// configuration commands.
pub fn table6_reaction_time() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Table VI",
        "LinuxFP reaction time (s): command seen -> data path installed",
        &["command", "time [s]"],
    );

    // Base system: two NICs, forwarding enabled, one routed interface —
    // so every command below actually perturbs an active data path.
    let mut k = Kernel::new(77);
    let ens1f0 = k.add_physical("ens1f0np0").unwrap();
    let ens1f1 = k.add_physical("ens1f1np0").unwrap();
    let (veth11, veth12) = k.add_veth_pair("veth11", "veth12").unwrap();
    for d in [ens1f0, ens1f1, veth11, veth12] {
        k.ip_link_set_up(d).unwrap();
    }
    k.ip_addr_add(ens1f1, IfAddr::new(Ipv4Addr::new(10, 10, 2, 1), 24))
        .unwrap();
    k.sysctl_set("net.ipv4.ip_forward", 1).unwrap();
    k.ip_route_add(
        "10.20.0.0/16".parse().unwrap(),
        Some(Ipv4Addr::new(10, 10, 2, 2)),
        None,
    )
    .unwrap();
    let (mut ctrl, _) = Controller::attach(&mut k, ControllerConfig::default()).unwrap();

    let mut run_cmd =
        |cmd: &str, table: &mut ExperimentTable, k: &mut Kernel, f: &mut dyn FnMut(&mut Kernel)| {
            f(k);
            let report = ctrl
                .poll(k)
                .expect("deploy succeeds")
                .expect("command produced events");
            table.row(vec![
                cmd.to_string(),
                ExperimentTable::num(report.reaction.as_secs_f64(), 3),
            ]);
        };

    run_cmd(
        "ip addr add 10.10.1.1/24 dev ens1f0np0",
        &mut table,
        &mut k,
        &mut |k| {
            k.ip_addr_add(ens1f0, IfAddr::new(Ipv4Addr::new(10, 10, 1, 1), 24))
                .unwrap();
        },
    );
    run_cmd("brctl addbr br0", &mut table, &mut k, &mut |k| {
        let br = k.add_bridge("br0").unwrap();
        k.ip_link_set_up(br).unwrap();
    });
    run_cmd("brctl addif br0 veth11", &mut table, &mut k, &mut |k| {
        let br = k.ifindex("br0").unwrap();
        let veth = k.ifindex("veth11").unwrap();
        k.brctl_addif(br, veth).unwrap();
    });
    run_cmd(
        "iptables -d 10.10.3.0/24 -A FORWARD -j DROP",
        &mut table,
        &mut k,
        &mut |k| {
            k.iptables_append(
                ChainHook::Forward,
                IptRule::drop_dst("10.10.3.0/24".parse().unwrap()),
            );
        },
    );
    table.note("paper Table VI: ip addr 0.602, addbr 0.539, addif 0.493, iptables 1.028");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_has_dominant_stages() {
        let t = fig1_flame_profile();
        assert!(!t.rows.is_empty());
        // skb_alloc dominates the Linux forwarding profile (the paper's
        // motivation for XDP-level fast paths).
        assert_eq!(t.rows[0][0], "skb_alloc");
        let share: f64 = t.rows[0][2].parse().unwrap();
        assert!(share > 40.0, "skb share {share} {t}");
        // The shares sum to ~100.
        let sum: f64 = t.rows.iter().map(|r| r[2].parse::<f64>().unwrap()).sum();
        assert!((99.0..101.0).contains(&sum));
    }

    #[test]
    fn table2_linuxfp_uniquely_combines() {
        let t = table2_platform_comparison();
        let row = t.row_by_name("LinuxFP");
        assert_eq!(row[1], "yes");
        assert_eq!(row[2], "yes");
        assert_eq!(row[3], "yes");
        assert_eq!(row[4], "no");
        // Nobody else has standard API + acceleration.
        assert_eq!(t.row_by_name("Polycube")[2], "no");
        assert_eq!(t.row_by_name("VPP")[2], "no");
        assert_eq!(t.row_by_name("Linux")[3], "no");
    }

    #[test]
    fn table6_reaction_times_in_paper_band() {
        let t = table6_reaction_time();
        assert_eq!(t.rows.len(), 4);
        let ip_addr = t.cell_f64(0, 1);
        let addbr = t.cell_f64(1, 1);
        let addif = t.cell_f64(2, 1);
        let iptables = t.cell_f64(3, 1);
        // All in the sub-1.5 s band of the paper.
        for v in [ip_addr, addbr, addif, iptables] {
            assert!((0.2..1.5).contains(&v), "reaction {v} {t}");
        }
        // iptables is by far the slowest (libiptc-style querying).
        assert!(iptables > ip_addr && iptables > addbr && iptables > addif);
        // Link-level commands are the cheapest class.
        assert!(addbr <= ip_addr + 0.15, "{t}");
    }
}
