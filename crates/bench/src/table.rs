//! Rendering helpers: every experiment returns an [`ExperimentTable`]
//! that prints like the paper's tables/figure series and is asserted on
//! by the regression tests.

use std::fmt;

/// A rendered experiment: headers plus rows of cells, with the raw
/// numeric values kept alongside for programmatic checks.
#[derive(Debug, Clone)]
pub struct ExperimentTable {
    /// Table/figure identifier ("Table III", "Figure 5", ...).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of rendered cells.
    pub rows: Vec<Vec<String>>,
    /// Notes on workload parameters / deviations.
    pub notes: Vec<String>,
}

impl ExperimentTable {
    /// Creates an empty table.
    pub fn new(id: &'static str, title: &'static str, headers: &[&str]) -> Self {
        ExperimentTable {
            id,
            title,
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a note line.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// A cell from a float with the given precision.
    pub fn num(v: f64, precision: usize) -> String {
        format!("{v:.precision$}")
    }

    /// A numeric cell out of a rendered row (for tests).
    ///
    /// # Panics
    ///
    /// Panics when the cell is not numeric.
    pub fn cell_f64(&self, row: usize, col: usize) -> f64 {
        self.rows[row][col]
            .replace(',', "")
            .parse()
            .unwrap_or_else(|_| {
                panic!("cell ({row},{col}) = {:?} not numeric", self.rows[row][col])
            })
    }

    /// The row whose first cell equals `name` (for tests).
    ///
    /// # Panics
    ///
    /// Panics when absent.
    pub fn row_by_name(&self, name: &str) -> &[String] {
        self.rows
            .iter()
            .find(|r| r[0] == name)
            .unwrap_or_else(|| panic!("no row named {name}"))
    }

    /// A numeric cell addressed by row name and column index.
    pub fn value(&self, row_name: &str, col: usize) -> f64 {
        self.row_by_name(row_name)[col]
            .replace(',', "")
            .parse()
            .unwrap_or_else(|_| panic!("({row_name},{col}) not numeric"))
    }
}

impl ExperimentTable {
    /// Machine-readable form of the table.
    pub fn to_json(&self) -> linuxfp_json::Value {
        linuxfp_json::json!({
            "id": self.id,
            "title": self.title,
            "headers": self.headers.clone(),
            "rows": self.rows.clone(),
            "notes": self.notes.clone(),
        })
    }
}

impl fmt::Display for ExperimentTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_accesses() {
        let mut t = ExperimentTable::new("Table X", "demo", &["name", "pps"]);
        t.row(vec!["Linux".into(), ExperimentTable::num(1_000_000.4, 0)]);
        t.row(vec!["LinuxFP".into(), "1768221".into()]);
        t.note("calibrated");
        let s = t.to_string();
        assert!(s.contains("Table X") && s.contains("LinuxFP") && s.contains("note:"));
        assert_eq!(t.cell_f64(0, 1), 1_000_000.0);
        assert_eq!(t.value("LinuxFP", 1), 1_768_221.0);
        assert_eq!(t.row_by_name("Linux")[0], "Linux");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = ExperimentTable::new("T", "d", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "no row named")]
    fn missing_row_panics() {
        let t = ExperimentTable::new("T", "d", &["a"]);
        t.row_by_name("ghost");
    }
}
