//! Optimizer-dispatch experiment: per-packet service time with the
//! synthesized programs loaded naive (`net.linuxfp.opt=0`) vs shrunk by
//! the synthesis-time bytecode optimizer (the default).
//!
//! The optimizer is equivalence-locked — identical verdicts and frames
//! (`crates/ebpf/tests/opt_parity.rs`, the difftest `--opt 0` lane) — so
//! the only degree of freedom is how many instructions each packet
//! executes when the program actually runs. The workloads bracket when
//! that matters:
//!
//! - steady flows are served by the microflow verdict cache after one
//!   recorded miss, so the modes tie — the cache hides program length;
//! - churn-heavy traffic (a route replaced before every burst) defeats
//!   the cache, so *every* packet pays full program execution and the
//!   shorter optimized program shows up directly as fewer dispatched
//!   instructions.

use crate::flow_cache::service_ns;
use crate::table::ExperimentTable;
use linuxfp_platforms::scenario::NEXT_HOP;
use linuxfp_platforms::{LinuxFpPlatform, Scenario};

/// The `opt_dispatch` experiment: router service time at burst 32,
/// naive vs optimizer-shrunk programs, on cache-friendly and
/// cache-defeating workloads.
pub fn opt_dispatch_experiment() -> ExperimentTable {
    let scenario = Scenario::router();
    let mut table = ExperimentTable::new(
        "Optimizer dispatch",
        "Naive vs optimizer-shrunk eBPF: router service time at burst 32",
        &[
            "workload",
            "naive [ns/pkt]",
            "optimized [ns/pkt]",
            "speedup",
        ],
    );
    type FlowOf = Box<dyn Fn(u64) -> u64>;
    let workloads: [(&str, FlowOf, bool); 3] = [
        ("steady single flow", Box::new(|_| 0), false),
        ("steady 1k flows", Box::new(|i| i % 1000), false),
        ("churn-heavy", Box::new(|i| i % 1000), true),
    ];
    for (name, flow_of, churn) in workloads {
        let run = |opt_on: bool| {
            let mut lfp = LinuxFpPlatform::new(scenario);
            let mac = lfp.dut_mac();
            lfp.kernel_mut()
                .sysctl_set("net.linuxfp.opt", i64::from(opt_on))
                .expect("opt sysctl exists");
            // The optimizer runs at deploy time, and the initial attach
            // deployed under the default sysctl — force one redeploy (a
            // semantics-free route replace) so the measured program
            // reflects the mode under test.
            let _ = lfp
                .kernel_mut()
                .ip_route_add(Scenario::route_prefix(0), Some(NEXT_HOP), None);
            lfp.poll_controller();
            service_ns(&mut lfp, scenario, mac, flow_of.as_ref(), churn)
        };
        let naive = run(false);
        let optimized = run(true);
        table.row(vec![
            name.to_string(),
            ExperimentTable::num(naive, 1),
            ExperimentTable::num(optimized, 1),
            ExperimentTable::num(naive / optimized, 2),
        ]);
    }
    table.note(
        "churn replaces a route before every burst, defeating the verdict cache; \
         every packet then executes the program, where the optimizer's ~30% \
         instruction shrink is paid back on each dispatch",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow_cache::BURST;

    #[test]
    fn optimized_cache_miss_beats_naive_by_five_percent() {
        let t = opt_dispatch_experiment();
        // The acceptance bar: on the cache-defeating workload, the
        // optimized programs must cut service time by at least 5%
        // against the naive synthesized form, and land 5% under the
        // pre-optimizer churn-heavy baseline (517 ns/pkt). The program
        // shrinks ~30% but only executed instructions are billed, so
        // the service-time win is smaller than the static one.
        let naive = t.value("churn-heavy", 1);
        let optimized = t.value("churn-heavy", 2);
        assert!(
            optimized <= naive * 0.95,
            "optimized churn-heavy {optimized:.1} ns/pkt not 5% under \
             naive {naive:.1}: {t}"
        );
        assert!(
            optimized <= 517.0 * 0.95,
            "optimized churn-heavy {optimized:.1} ns/pkt not 5% under \
             the pre-optimizer 517 ns/pkt baseline: {t}"
        );
        // Steady flows hit the verdict cache in both modes, so the
        // modes tie — the cache already hides program length.
        let steady_n = t.value("steady single flow", 1);
        let steady_o = t.value("steady single flow", 2);
        assert!(
            (steady_n - steady_o).abs() < 1e-6,
            "cache-served steady flow should tie: {t}"
        );
        // And the optimized programs never lose anywhere.
        for row in ["steady single flow", "steady 1k flows", "churn-heavy"] {
            assert!(t.value(row, 2) <= t.value(row, 1) + 1e-6, "{row}: {t}");
        }
    }

    #[test]
    fn burst_constant_matches_flow_cache_experiment() {
        // Same NAPI burst as the cache and JIT experiments so the
        // ns/pkt columns are comparable side by side.
        assert_eq!(BURST, 32);
    }
}
