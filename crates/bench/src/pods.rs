//! Kubernetes pod-to-pod experiments: paper §VI-A2 — Fig. 9 and Table V.

use crate::table::ExperimentTable;
use linuxfp_k8s::{pair_sweep, pod_rr, Cluster};

/// Figure 9: pod-to-pod throughput (transactions/s) as a function of the
/// number of simultaneous pod pairs, intra-node and inter-node, Linux vs.
/// LinuxFP.
pub fn fig9_pod_throughput(max_pairs: u32) -> ExperimentTable {
    let mut headers = vec!["configuration".to_string()];
    headers.extend((1..=max_pairs).map(|p| format!("{p} pair(s) [txn/s]")));
    let mut table = ExperimentTable::new(
        "Figure 9",
        "Pod-to-pod throughput vs. pod pairs (3-node cluster, Flannel)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for (label, accelerated, inter) in [
        ("Linux (intra)", false, false),
        ("LinuxFP (intra)", true, false),
        ("Linux (inter)", false, true),
        ("LinuxFP (inter)", true, true),
    ] {
        let mut cluster = Cluster::new(3, accelerated);
        let mut cells = vec![label.to_string()];
        for point in pair_sweep(&mut cluster, max_pairs, inter, 17) {
            cells.push(ExperimentTable::num(point.transactions_per_sec, 1));
        }
        table.row(cells);
    }
    table.note("paper: LinuxFP reaches ~120% (intra) / ~116% (inter) of Linux throughput");
    table
}

/// Table V: pod-to-pod latency with a single pod pair (ms).
pub fn table5_pod_latency() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Table V",
        "Pod-to-pod latency, single pair (ms)",
        &["configuration", "avg", "p99", "stddev"],
    );
    for (label, accelerated, inter) in [
        ("Linux (intra)", false, false),
        ("LinuxFP (intra)", true, false),
        ("Linux (inter)", false, true),
        ("LinuxFP (inter)", true, true),
    ] {
        let mut cluster = Cluster::new(3, accelerated);
        let a = cluster.add_pod(0);
        let b = cluster.add_pod(if inter { 1 } else { 0 });
        let r = pod_rr(&mut cluster, a, b, 4000, 23);
        table.row(vec![
            label.to_string(),
            ExperimentTable::num(r.rtt_ms.mean(), 3),
            ExperimentTable::num(r.rtt_ms.p99(), 1),
            ExperimentTable::num(r.rtt_ms.stddev(), 3),
        ]);
    }
    table.note("paper: Linux intra 9.680/20.1/2.021, LinuxFP intra 7.918/15.9/1.527, Linux inter 29.226/34.7, LinuxFP inter 25.176/30.9");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_linuxfp_above_linux_everywhere() {
        let t = fig9_pod_throughput(3);
        for pairs in 1..=3usize {
            let ratio_intra = t.value("LinuxFP (intra)", pairs) / t.value("Linux (intra)", pairs);
            assert!(
                (1.10..1.35).contains(&ratio_intra),
                "intra {ratio_intra:.3} {t}"
            );
            let ratio_inter = t.value("LinuxFP (inter)", pairs) / t.value("Linux (inter)", pairs);
            assert!(
                (1.05..1.25).contains(&ratio_inter),
                "inter {ratio_inter:.3} {t}"
            );
        }
        // Intra is faster than inter in absolute terms.
        assert!(t.value("Linux (intra)", 1) > t.value("Linux (inter)", 1));
    }

    #[test]
    fn table5_reproduces_paper_bands() {
        let t = table5_pod_latency();
        let li = t.value("Linux (intra)", 1);
        let fi = t.value("LinuxFP (intra)", 1);
        let le = t.value("Linux (inter)", 1);
        let fe = t.value("LinuxFP (inter)", 1);
        // Paper absolute bands.
        assert!((9.0..10.4).contains(&li), "linux intra {li}");
        assert!((7.3..8.6).contains(&fi), "linuxfp intra {fi}");
        assert!((27.5..31.0).contains(&le), "linux inter {le}");
        assert!((23.5..27.5).contains(&fe), "linuxfp inter {fe}");
        // Improvements: ~18% intra, ~14% inter.
        assert!((0.12..0.25).contains(&(1.0 - fi / li)));
        assert!((0.06..0.22).contains(&(1.0 - fe / le)));
        // p99 ordering preserved.
        assert!(t.value("LinuxFP (intra)", 2) < t.value("Linux (intra)", 2));
        assert!(t.value("LinuxFP (inter)", 2) < t.value("Linux (inter)", 2));
    }
}
