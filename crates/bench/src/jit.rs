//! Compiled-dispatch experiment: per-packet service time with the eBPF
//! programs running on the reference interpreter (`net.linuxfp.jit=0`)
//! vs their load-time compiled form (the default).
//!
//! The engines are parity-locked — identical verdicts, frames, and
//! instruction counts — so the only degree of freedom is the per-insn
//! dispatch price (`ebpf_insn_ns` vs `jit_insn_ns`). The workloads
//! bracket when that price matters:
//!
//! - a steady single flow is served by the microflow verdict cache in
//!   both modes after one recorded miss, so the engines tie — the cache
//!   hides the interpreter;
//! - churn-heavy traffic (a route replaced before every burst) defeats
//!   the cache, so *every* packet pays full program execution and the
//!   compiled engine's cheaper dispatch shows up directly. This is the
//!   cache-miss cost ROADMAP open item 1 targets.

use crate::flow_cache::service_ns;
use crate::table::ExperimentTable;
use linuxfp_platforms::{LinuxFpPlatform, Scenario};

/// The `jit_dispatch` experiment: router service time at burst 32,
/// interpreted vs compiled, on cache-friendly and cache-defeating
/// workloads.
pub fn jit_dispatch_experiment() -> ExperimentTable {
    let scenario = Scenario::router();
    let mut table = ExperimentTable::new(
        "JIT dispatch",
        "Compiled vs interpreted eBPF: router service time at burst 32",
        &[
            "workload",
            "interpreted [ns/pkt]",
            "compiled [ns/pkt]",
            "speedup",
        ],
    );
    type FlowOf = Box<dyn Fn(u64) -> u64>;
    let workloads: [(&str, FlowOf, bool); 3] = [
        ("steady single flow", Box::new(|_| 0), false),
        ("steady 1k flows", Box::new(|i| i % 1000), false),
        ("churn-heavy", Box::new(|i| i % 1000), true),
    ];
    for (name, flow_of, churn) in workloads {
        let run = |jit_on: bool| {
            let mut lfp = LinuxFpPlatform::new(scenario);
            let mac = lfp.dut_mac();
            lfp.kernel_mut()
                .sysctl_set("net.linuxfp.jit", i64::from(jit_on))
                .expect("jit sysctl exists");
            service_ns(&mut lfp, scenario, mac, flow_of.as_ref(), churn)
        };
        let interp = run(false);
        let compiled = run(true);
        table.row(vec![
            name.to_string(),
            ExperimentTable::num(interp, 1),
            ExperimentTable::num(compiled, 1),
            ExperimentTable::num(interp / compiled, 2),
        ]);
    }
    table.note(
        "churn replaces a route before every burst, defeating the verdict cache; \
         every packet then pays program execution, where compiled dispatch is \
         ~3x cheaper per instruction",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow_cache::BURST;

    #[test]
    fn compiled_cache_miss_beats_interpreted_by_twenty_percent() {
        let t = jit_dispatch_experiment();
        // The acceptance bar: on the cache-defeating workload, compiled
        // service time must be at least 20% below interpreted.
        let interp = t.value("churn-heavy", 1);
        let compiled = t.value("churn-heavy", 2);
        assert!(
            compiled <= interp * 0.8,
            "compiled churn-heavy {compiled:.1} ns/pkt not 20% under \
             interpreted {interp:.1}: {t}"
        );
        // Steady flows hit the verdict cache in both modes, so the
        // engines tie — the cache already hides dispatch cost.
        let steady_i = t.value("steady single flow", 1);
        let steady_c = t.value("steady single flow", 2);
        assert!(
            (steady_i - steady_c).abs() < 1e-6,
            "cache-served steady flow should tie: {t}"
        );
        // And the compiled engine never loses anywhere.
        for row in ["steady single flow", "steady 1k flows", "churn-heavy"] {
            assert!(t.value(row, 2) <= t.value(row, 1) + 1e-6, "{row}: {t}");
        }
    }

    #[test]
    fn burst_constant_matches_flow_cache_experiment() {
        // Both experiments must measure at the same NAPI burst so their
        // ns/pkt columns are comparable side by side.
        assert_eq!(BURST, 32);
    }
}
