//! `repro` — regenerates every table and figure of the LinuxFP paper.
//!
//! Usage:
//!
//! ```text
//! repro            # run everything in paper order
//! repro fig5 fig8  # run specific experiments
//! repro --json ... # machine-readable output
//! repro --list     # list available experiment ids
//! ```

use linuxfp_bench::{run_experiment, ALL_EXPERIMENTS};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in ALL_EXPERIMENTS {
            println!("{id}");
        }
        return;
    }
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let ids: Vec<&str> = if args.is_empty() {
        ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    if !json {
        println!("LinuxFP reproduction — regenerating paper artifacts\n");
    }
    let mut failed = false;
    let mut json_tables = Vec::new();
    for id in ids {
        let start = std::time::Instant::now();
        match run_experiment(id) {
            Some(table) if json => json_tables.push(table.to_json()),
            Some(table) => {
                println!("{table}");
                println!("  [{id} regenerated in {:.2?}]\n", start.elapsed());
            }
            None => {
                eprintln!("unknown experiment: {id} (use --list)");
                failed = true;
            }
        }
    }
    if json {
        println!(
            "{}",
            linuxfp_json::to_string_pretty(&linuxfp_json::Value::Array(json_tables))
        );
    }
    if failed {
        std::process::exit(2);
    }
}
