//! Flight-recorder breakdown experiment: where a mixed workload spends
//! its nanoseconds, per regime and disposition.
//!
//! Runs the virtual router on a mixed burst (routed flows, host-bound
//! punts, checksum-corrupt drops) with the flight recorder sampling
//! every packet, then folds the spans into the [`CostBreakdown`] table —
//! the same aggregation `linuxfp_trace` prints. This pins the breakdown
//! into the experiment artifact set: the per-stage rows must account
//! for every sampled packet's total service time.

use crate::table::ExperimentTable;
use linuxfp_packet::{builder, Batch, BufferPool, MacAddr};
use linuxfp_platforms::scenario::SOURCE_MAC;
use linuxfp_platforms::{LinuxFpPlatform, Platform, Scenario};
use linuxfp_telemetry::trace::CostBreakdown;
use std::net::Ipv4Addr;

/// Bursts injected after warm-up.
const BURSTS: usize = 16;
/// Frames per burst: 24 routed + 4 host-bound + 4 corrupt.
const BURST: usize = 32;

/// Builds one mixed burst: mostly routed flows (fast-path transmits),
/// a few frames for the DUT itself (punt + local deliver), and a few
/// with a corrupted IPv4 checksum (punt + taxonomy drop).
fn mixed_burst(scenario: &Scenario, mac: MacAddr, pool: &BufferPool, base: u64) -> Batch {
    let mut batch = Batch::with_capacity(BURST);
    for j in 0..BURST as u64 {
        let mut buf = pool.acquire();
        match j % 8 {
            6 => buf.extend_from_slice(&builder::udp_packet(
                SOURCE_MAC,
                mac,
                Ipv4Addr::new(10, 0, 1, 100),
                Ipv4Addr::new(10, 0, 1, 1),
                (4000 + j) as u16,
                4791,
                b"for the host",
            )),
            7 => {
                scenario.fill_frame(mac, base + j, 60, &mut buf);
                let csum = buf[25];
                buf[25] = !csum;
            }
            _ => scenario.fill_frame(mac, base + j, 60, &mut buf),
        }
        batch.push(buf);
    }
    batch
}

/// The flight-recorder breakdown artifact: per-regime/disposition
/// packet counts, mean service time, p50/p99, and the costliest stage.
pub fn trace_breakdown_experiment() -> ExperimentTable {
    let scenario = Scenario::router();
    let mut lfp = LinuxFpPlatform::new(scenario);
    let mac = lfp.dut_mac();
    let pool = BufferPool::new();
    let ring = lfp.kernel_mut().enable_flight_recorder(4096, 1);

    // Warm up with recording suppressed so the breakdown reflects the
    // steady state, not one-time resolution costs.
    lfp.kernel_mut()
        .sysctl_set("net.linuxfp.trace_sample", 0)
        .expect("trace_sample sysctl exists");
    for b in 0..4u64 {
        let mut batch = mixed_burst(&scenario, mac, &pool, b * BURST as u64);
        lfp.process_batch(&mut batch);
    }
    lfp.kernel_mut()
        .sysctl_set("net.linuxfp.trace_sample", 1)
        .expect("trace_sample sysctl exists");
    for b in 0..BURSTS as u64 {
        let mut batch = mixed_burst(&scenario, mac, &pool, (4 + b) * BURST as u64);
        lfp.process_batch(&mut batch);
    }

    let spans = ring.recent();
    let breakdown = CostBreakdown::from_spans(&spans);
    let mut table = ExperimentTable::new(
        "trace_breakdown",
        "Flight recorder: per-stage cost attribution by regime (router, mixed burst)",
        &[
            "regime/disposition",
            "pkts",
            "ns/pkt",
            "p50 [ns]",
            "p99 [ns]",
        ],
    );
    for (regime, disposition, pkts, ns_per_pkt, p50, p99) in breakdown.rows() {
        table.row(vec![
            format!("{}/{disposition}", regime.as_str()),
            pkts.to_string(),
            ExperimentTable::num(ns_per_pkt, 1),
            ExperimentTable::num(p50, 0),
            ExperimentTable::num(p99, 0),
        ]);
    }
    table.note(format!(
        "{} spans sampled at 1-in-1; stage sums equal charged totals by construction",
        breakdown.packets()
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_covers_every_regime_and_accounts_all_packets() {
        let t = trace_breakdown_experiment();
        assert!(!t.rows.is_empty(), "no breakdown rows: {t}");
        let names: Vec<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
        assert!(
            names.iter().any(|n| n.starts_with("fastpath/")),
            "no fast-path row in {names:?}"
        );
        assert!(
            names.iter().any(|n| n.starts_with("punt/")),
            "no punt row in {names:?}"
        );
        // Every measured packet lands in exactly one group.
        let pkts: f64 = (0..t.rows.len()).map(|r| t.cell_f64(r, 1)).sum();
        assert_eq!(pkts as usize, BURSTS * BURST, "{t}");
    }
}
