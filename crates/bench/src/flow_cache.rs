//! Microflow verdict cache experiment: per-packet service time on
//! steady and churn-heavy workloads with the cache on and off.
//!
//! Three workloads bound the cache's behavior. A steady single flow is
//! the best case: after one recorded miss every packet replays the
//! cached verdict at the flat hit price. A 1k-flow round-robin shows the
//! working-set case (all flows fit the 4k-entry cache, each revisit
//! hits). The churn-heavy workload replaces a route before every burst —
//! a semantics-free netlink event that still invalidates the cache — so
//! every packet misses; the cache must cost nothing there, because the
//! recording path charges no virtual time.

use crate::table::ExperimentTable;
use linuxfp_packet::{Batch, BufferPool, MacAddr};
use linuxfp_platforms::scenario::NEXT_HOP;
use linuxfp_platforms::{LinuxFpPlatform, Platform, Scenario};

/// The NAPI burst size every measurement uses.
pub const BURST: usize = 32;
/// Warm-up bursts (enough for the 1k-flow workload to see every flow at
/// least once before measurement starts).
const WARM_BURSTS: usize = 34;
/// Measured bursts.
const MEASURE_BURSTS: usize = 16;

/// Measures per-packet service time over [`MEASURE_BURSTS`] bursts of
/// [`BURST`] frames, mapping the monotone packet index to a flow via
/// `flow_of`. With `churn`, an `ip route replace` of an existing prefix
/// (same next hop — no semantic change) lands before every burst and the
/// controller redeploys, invalidating all derived fast-path state.
pub(crate) fn service_ns(
    lfp: &mut LinuxFpPlatform,
    scenario: Scenario,
    mac: MacAddr,
    flow_of: &dyn Fn(u64) -> u64,
    churn: bool,
) -> f64 {
    let pool = BufferPool::new();
    let mut i = 0u64;
    let mut run_burst = |lfp: &mut LinuxFpPlatform| -> f64 {
        if churn {
            let _ = lfp
                .kernel_mut()
                .ip_route_add(Scenario::route_prefix(0), Some(NEXT_HOP), None);
            lfp.poll_controller();
        }
        let mut batch = Batch::with_capacity(BURST);
        for _ in 0..BURST {
            let mut buf = pool.acquire();
            scenario.fill_frame(mac, flow_of(i), 60, &mut buf);
            batch.push(buf);
            i += 1;
        }
        lfp.process_batch(&mut batch).total_ns()
    };
    for _ in 0..WARM_BURSTS {
        let _ = run_burst(lfp);
    }
    let mut total = 0.0;
    for _ in 0..MEASURE_BURSTS {
        total += run_burst(lfp);
    }
    total / (MEASURE_BURSTS * BURST) as f64
}

/// The flow-cache experiment: the three workloads with the
/// `net.linuxfp.flow_cache` sysctl off and on, at burst 32 on the
/// virtual router.
pub fn flow_cache_experiment() -> ExperimentTable {
    let scenario = Scenario::router();
    let mut table = ExperimentTable::new(
        "Flow cache",
        "Microflow verdict cache: router service time at burst 32",
        &[
            "workload",
            "cache off [ns/pkt]",
            "cache on [ns/pkt]",
            "speedup",
        ],
    );
    type FlowOf = Box<dyn Fn(u64) -> u64>;
    let workloads: [(&str, FlowOf, bool); 3] = [
        ("steady single flow", Box::new(|_| 0), false),
        ("steady 1k flows", Box::new(|i| i % 1000), false),
        ("churn-heavy", Box::new(|i| i % 1000), true),
    ];
    for (name, flow_of, churn) in workloads {
        let run = |cache_on: bool| {
            let mut lfp = LinuxFpPlatform::new(scenario);
            let mac = lfp.dut_mac();
            lfp.kernel_mut()
                .sysctl_set("net.linuxfp.flow_cache", i64::from(cache_on))
                .expect("flow_cache sysctl exists");
            service_ns(&mut lfp, scenario, mac, flow_of.as_ref(), churn)
        };
        let off = run(false);
        let on = run(true);
        table.row(vec![
            name.to_string(),
            ExperimentTable::num(off, 1),
            ExperimentTable::num(on, 1),
            ExperimentTable::num(off / on, 2),
        ]);
    }
    table.note(
        "churn replaces a route before every burst; the cache never decelerates it \
         because recording charges no virtual time",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_flows_beat_the_batched_baseline_and_churn_never_loses() {
        let t = flow_cache_experiment();
        // The acceptance bar: a steady single flow at burst 32 must beat
        // the pre-cache batched baseline (487 ns/pkt) by at least 20%.
        let steady_on = t.value("steady single flow", 2);
        assert!(
            steady_on < 487.0 * 0.8,
            "steady single flow {steady_on:.1} ns/pkt not 20% under 487: {t}"
        );
        // With the cache off, both steady workloads pay interpretation.
        assert!(t.value("steady single flow", 1) > steady_on, "{t}");
        // The 1k-flow working set fits the cache, so revisits hit too.
        assert!(
            t.value("steady 1k flows", 2) < t.value("steady 1k flows", 1),
            "{t}"
        );
        // Churn-heavy: every burst invalidates, every packet misses — and
        // the miss path charges nothing, so cache-on must never be slower
        // than cache-off (the deterministic cost model makes them equal).
        assert!(
            t.value("churn-heavy", 2) <= t.value("churn-heavy", 1) + 1e-6,
            "cache decelerated the churn-heavy workload: {t}"
        );
    }
}
