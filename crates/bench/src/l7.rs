//! L7 gateway experiment: per-request service time with the policy
//! verdict offloaded versus punted.
//!
//! The API-gateway scenario runs three workloads. Well-formed allowed
//! requests on LinuxFP are the offloaded case: the first request of a
//! flow pins the connection verdict, and every revisit resolves in the
//! fast path (or the microflow cache) without an sk_buff. The same
//! workload on plain Linux is the slow-path baseline. Binary-garbage
//! payloads on LinuxFP are the punt case: `bpf_l7_policy_lookup`
//! cannot parse them, so every frame punts (`PuntReason::L7Unparseable`)
//! and pays the full slow path on top of the fast-path attempt — the
//! transparency tax for traffic the bounded parser refuses to judge.

use crate::table::ExperimentTable;
use linuxfp_platforms::{LinuxFpPlatform, LinuxPlatform, Platform, Scenario};

/// Flows in the working set (every pin fits the connection table).
const FLOWS: u64 = 256;

/// A TLS-handshake-looking payload no HTTP parser will accept.
const GARBAGE: &[u8] = &[0x16, 0x03, 0x01, 0x00, 0x2a, 0x01, 0x00, 0x00];

/// The L7 gateway experiment at burst 32.
pub fn l7_gateway_experiment() -> ExperimentTable {
    let s = Scenario::api_gateway();
    let requests: Vec<Vec<u8>> = (0..64).map(Scenario::http_request).collect();

    let mut table = ExperimentTable::new(
        "l7_gateway",
        "L7 policy offload: request service time, API gateway at burst 32",
        &["workload", "ns/request"],
    );

    let mut lfp_allow = LinuxFpPlatform::new(s);
    let mac = lfp_allow.dut_mac();
    let allow_ns = lfp_allow.service_time_ns_batched(
        &mut |i, buf| s.fill_http_frame(mac, i % FLOWS, &requests[(i % 64) as usize], buf),
        32,
    );
    table.row(vec![
        "allow (offloaded)".to_string(),
        ExperimentTable::num(allow_ns, 1),
    ]);

    let mut linux = LinuxPlatform::new(s);
    let mac = linux.dut_mac();
    let linux_ns = linux.service_time_ns_batched(
        &mut |i, buf| s.fill_http_frame(mac, i % FLOWS, &requests[(i % 64) as usize], buf),
        32,
    );
    table.row(vec![
        "allow (linux slow path)".to_string(),
        ExperimentTable::num(linux_ns, 1),
    ]);

    let mut lfp_punt = LinuxFpPlatform::new(s);
    let mac = lfp_punt.dut_mac();
    let punt_ns = lfp_punt.service_time_ns_batched(
        &mut |i, buf| s.fill_http_frame(mac, i % FLOWS, GARBAGE, buf),
        32,
    );
    table.row(vec![
        "unparseable (punted)".to_string(),
        ExperimentTable::num(punt_ns, 1),
    ]);

    table.note(format!(
        "{} deny policies; unparseable requests punt to the slow-path parser \
         and still forward byte-identically",
        s.l7_policies
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offloaded_requests_beat_the_punted_slow_path() {
        let t = l7_gateway_experiment();
        let offloaded = t.value("allow (offloaded)", 1);
        let linux = t.value("allow (linux slow path)", 1);
        let punted = t.value("unparseable (punted)", 1);
        assert!(offloaded < linux, "offload slower than the slow path: {t}");
        assert!(offloaded < punted, "offload slower than the punt path: {t}");
        // Punts pay the fast-path attempt *plus* the slow path.
        assert!(punted >= linux, "punt cheaper than the slow path: {t}");
    }
}
