//! # LinuxFP — transparently accelerating (simulated) Linux networking
//!
//! A full reproduction of *LinuxFP: Transparently Accelerating Linux
//! Networking* (ICDCS 2024) as a Rust workspace. This facade crate
//! re-exports every subsystem:
//!
//! - [`core`] — the paper's contribution: the controller that introspects
//!   the kernel, models configuration as a JSON processing graph, and
//!   synthesizes, verifies and atomically deploys minimal eBPF fast paths.
//! - [`netstack`] — the simulated Linux kernel networking stack (the slow
//!   path): bridging, routing, netfilter, conntrack, netlink.
//! - [`ebpf`] — the simulated eBPF runtime: bytecode, verifier,
//!   interpreter, maps, helpers, XDP/TC hooks, tail calls.
//! - [`packet`] — packet parsing/building.
//! - [`platforms`] — Linux, LinuxFP, Polycube-style and VPP-style
//!   platforms behind one measurement interface.
//! - [`traffic`] — pktgen-style and netperf-style workload harnesses.
//! - [`k8s`] — a Flannel-networked Kubernetes cluster simulation.
//! - [`sim`] — virtual time, the calibrated cost model, statistics.
//!
//! ## Quickstart
//!
//! ```
//! use linuxfp::core::controller::{Controller, ControllerConfig};
//! use linuxfp::netstack::stack::{IfAddr, Kernel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A kernel with two NICs, configured with ordinary commands.
//! let mut kernel = Kernel::new(1);
//! let eth0 = kernel.add_physical("eth0")?;
//! let eth1 = kernel.add_physical("eth1")?;
//! kernel.ip_link_set_up(eth0)?;
//! kernel.ip_link_set_up(eth1)?;
//!
//! // Attach the LinuxFP controller: from here on, configuration changes
//! // transparently produce fast paths.
//! let (mut controller, _) = Controller::attach(&mut kernel, ControllerConfig::default())?;
//! kernel.ip_addr_add(eth0, "10.0.1.1/24".parse::<IfAddr>()?)?;
//! kernel.ip_addr_add(eth1, "10.0.2.1/24".parse::<IfAddr>()?)?;
//! kernel.sysctl_set("net.ipv4.ip_forward", 1)?;
//! let report = controller.poll(&mut kernel)?.expect("events pending");
//! assert!(report.changed && report.installed.len() == 2);
//! # Ok(())
//! # }
//! ```
//!
//! Regenerate every paper table and figure with
//! `cargo run -p linuxfp-bench --bin repro --release`.

pub use linuxfp_core as core;
pub use linuxfp_ebpf as ebpf;
pub use linuxfp_json as json;
pub use linuxfp_k8s as k8s;
pub use linuxfp_netstack as netstack;
pub use linuxfp_packet as packet;
pub use linuxfp_platforms as platforms;
pub use linuxfp_sim as sim;
pub use linuxfp_telemetry as telemetry;
pub use linuxfp_traffic as traffic;

/// Commonly used items in one import.
pub mod prelude {
    pub use linuxfp_core::controller::{Controller, ControllerConfig, ReactionReport};
    pub use linuxfp_core::Capabilities;
    pub use linuxfp_ebpf::hook::HookPoint;
    pub use linuxfp_netstack::device::IfIndex;
    pub use linuxfp_netstack::stack::{Effect, IfAddr, Kernel};
    pub use linuxfp_packet::ipv4::Prefix;
    pub use linuxfp_packet::MacAddr;
    pub use linuxfp_platforms::{
        LinuxFpPlatform, LinuxPlatform, Platform, PolycubePlatform, Scenario, VppPlatform,
    };
    pub use linuxfp_sim::{CostModel, Nanos, Summary};
    pub use linuxfp_telemetry::{render_prometheus, snapshot_json, Registry};
}
