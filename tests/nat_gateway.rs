//! The NAT44 fast path (fifth subsystem): iptables DNAT / MASQUERADE
//! evaluated in the slow path, established bindings translated on the
//! fast path via `bpf_nat_lookup` — and both paths always produce
//! byte-identical frames, in both flow directions.

use linuxfp::netstack::nat::{NatChain, NatRule, NatTarget};
use linuxfp::packet::builder;
use linuxfp::packet::ipv4::IpProto;
use linuxfp::packet::{EthernetFrame, Ipv4Header, UdpHeader};
use linuxfp::prelude::*;
use std::net::Ipv4Addr;

/// The gateway's single public address (on `wan0`).
const PUBLIC_IP: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);
/// Upstream next hop for everything non-local.
const UPSTREAM_GW: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 254);
/// A host out on the internet.
const REMOTE: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 7);
/// An inside client behind the masquerade.
const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 100);
/// An inside server published through a DNAT port-forward.
const SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 50);

/// A home-router style NAT gateway: `lan0` holds the RFC 1918 subnet,
/// `wan0` the public address; outbound traffic is masqueraded and
/// `PUBLIC_IP:8080/udp` is port-forwarded to `SERVER:80`.
fn nat_kernel() -> (Kernel, IfIndex, IfIndex) {
    let mut k = Kernel::new(48);
    let lan = k.add_physical("lan0").unwrap();
    let wan = k.add_physical("wan0").unwrap();
    k.ip_addr_add(lan, "10.0.1.1/24".parse::<IfAddr>().unwrap())
        .unwrap();
    k.ip_addr_add(wan, "203.0.113.1/24".parse::<IfAddr>().unwrap())
        .unwrap();
    k.ip_link_set_up(lan).unwrap();
    k.ip_link_set_up(wan).unwrap();
    k.sysctl_set("net.ipv4.ip_forward", 1).unwrap();
    k.ip_route_add("198.51.100.0/24".parse().unwrap(), Some(UPSTREAM_GW), None)
        .unwrap();
    // Warm ARP on both sides so neither path ever queues on resolution.
    let now = k.now();
    k.neigh
        .learn(UPSTREAM_GW, MacAddr::from_index(0x0E0E), wan, now);
    k.neigh.learn(CLIENT, MacAddr::from_index(0xC11E), lan, now);
    k.neigh.learn(SERVER, MacAddr::from_index(0x5E17), lan, now);
    // iptables -t nat -A PREROUTING -p udp -d 203.0.113.1 --dport 8080 \
    //     -j DNAT --to-destination 10.0.1.50:80
    assert!(k.iptables_nat_append(
        NatChain::Prerouting,
        NatRule {
            dst: Some("203.0.113.1/32".parse().unwrap()),
            proto: Some(IpProto::Udp),
            dport: Some(8080),
            ..NatRule::any(NatTarget::Dnat {
                to: SERVER,
                to_port: Some(80),
            })
        },
    ));
    // iptables -t nat -A POSTROUTING -o wan0 -j MASQUERADE
    assert!(k.iptables_nat_append(
        NatChain::Postrouting,
        NatRule {
            out_if: Some(wan),
            ..NatRule::any(NatTarget::Masquerade)
        },
    ));
    (k, lan, wan)
}

/// An inside client's outbound datagram (to be masqueraded).
fn outbound(k: &Kernel, lan: IfIndex, sport: u16) -> Vec<u8> {
    builder::udp_packet(
        MacAddr::from_index(0xC11E),
        k.device(lan).unwrap().mac,
        CLIENT,
        REMOTE,
        sport,
        53,
        b"query",
    )
}

/// The remote's reply to a masqueraded flow (to be un-translated).
fn inbound_reply(k: &Kernel, wan: IfIndex, dport: u16) -> Vec<u8> {
    builder::udp_packet(
        MacAddr::from_index(0x0E0E),
        k.device(wan).unwrap().mac,
        REMOTE,
        PUBLIC_IP,
        53,
        dport,
        b"answer",
    )
}

/// A remote client hitting the DNAT port-forward.
fn inbound_dnat(k: &Kernel, wan: IfIndex, sport: u16) -> Vec<u8> {
    builder::udp_packet(
        MacAddr::from_index(0x0E0E),
        k.device(wan).unwrap().mac,
        REMOTE,
        PUBLIC_IP,
        sport,
        8080,
        b"GET /",
    )
}

/// The inside server's reply to a port-forwarded flow.
fn dnat_reply(k: &Kernel, lan: IfIndex, dport: u16) -> Vec<u8> {
    builder::udp_packet(
        MacAddr::from_index(0x5E17),
        k.device(lan).unwrap().mac,
        SERVER,
        REMOTE,
        80,
        dport,
        b"200 OK",
    )
}

/// Parses the single forwarded frame out of an outcome.
fn tx_tuple(out: &linuxfp::netstack::RxOutcome) -> (Ipv4Addr, u16, Ipv4Addr, u16) {
    let tx = out.transmissions();
    assert_eq!(
        tx.len(),
        1,
        "expected one forwarded frame: {:?}",
        out.effects
    );
    let eth = EthernetFrame::parse(tx[0].1).unwrap();
    let ip = Ipv4Header::parse(&tx[0].1[eth.payload_offset..]).unwrap();
    assert!(ip.verify_checksum(&tx[0].1[eth.payload_offset..]));
    let udp = UdpHeader::parse(&tx[0].1[eth.payload_offset + ip.header_len..]).unwrap();
    (ip.src, udp.src_port, ip.dst, udp.dst_port)
}

#[test]
fn slow_path_masquerades_and_untranslates_replies() {
    let (mut k, lan, wan) = nat_kernel();
    let out = k.receive(lan, outbound(&k, lan, 40000));
    let (src, sport, dst, dport) = tx_tuple(&out);
    assert_eq!((src, dst, dport), (PUBLIC_IP, REMOTE, 53));
    assert!((32768..=61000).contains(&sport), "allocated port {sport}");
    // The reply to the allocated port flows back to the inside client.
    let out = k.receive(wan, inbound_reply(&k, wan, sport));
    assert_eq!(tx_tuple(&out), (REMOTE, 53, CLIENT, 40000));
    // Distinct flows get distinct public ports.
    let out = k.receive(lan, outbound(&k, lan, 40001));
    let (_, sport2, _, _) = tx_tuple(&out);
    assert_ne!(sport, sport2);
}

#[test]
fn slow_path_port_forwards_through_dnat() {
    let (mut k, lan, wan) = nat_kernel();
    let out = k.receive(wan, inbound_dnat(&k, wan, 5555));
    assert_eq!(tx_tuple(&out), (REMOTE, 5555, SERVER, 80));
    // The server's reply leaves as the public address and port.
    let out = k.receive(lan, dnat_reply(&k, lan, 5555));
    assert_eq!(tx_tuple(&out), (PUBLIC_IP, 8080, REMOTE, 5555));
}

#[test]
fn fast_path_takes_over_established_bindings() {
    let (mut k, lan, wan) = nat_kernel();
    let (_ctrl, report) = Controller::attach(&mut k, ControllerConfig::default()).unwrap();
    assert!(report.changed);
    // router + nat on both interfaces.
    assert!(report.fpm_count >= 4, "fpms {}", report.fpm_count);

    // First packet: `bpf_nat_lookup` misses (a rule *could* claim the
    // flow), the slow path evaluates the chains and installs the binding.
    let out = k.receive(lan, outbound(&k, lan, 40000));
    let (_, sport, _, _) = tx_tuple(&out);
    assert_eq!(out.cost.stage_count("skb_alloc"), 1, "first packet punts");

    // Established forward direction: translated entirely in XDP. The
    // first repeat interprets (installing the binding bumped the
    // coherence generation); later repeats hit the microflow verdict
    // cache and skip even the bpf_nat_lookup.
    for i in 0..4 {
        let out = k.receive(lan, outbound(&k, lan, 40000));
        assert_eq!(tx_tuple(&out), (PUBLIC_IP, sport, REMOTE, 53));
        assert_eq!(out.cost.stage_count("skb_alloc"), 0, "must stay fast");
        if i == 0 {
            assert_eq!(out.cost.stage_count("nat_lookup"), 1); // bpf_nat_lookup
        } else {
            assert_eq!(out.cost.stage_count("nat_lookup"), 0, "cached repeat");
            assert_eq!(out.cost.stage_count("flowcache_hit"), 1);
        }
    }
    // Replies hit the same binding from the other side — fast from the
    // very first one, since the forward packet already bound.
    for _ in 0..3 {
        let out = k.receive(wan, inbound_reply(&k, wan, sport));
        assert_eq!(tx_tuple(&out), (REMOTE, 53, CLIENT, 40000));
        assert_eq!(out.cost.stage_count("skb_alloc"), 0, "reply must be fast");
    }
}

#[test]
fn both_paths_produce_identical_frames() {
    let (mut plain, p_lan, p_wan) = nat_kernel();
    let (mut fast, f_lan, f_wan) = nat_kernel();
    let (_ctrl, _) = Controller::attach(&mut fast, ControllerConfig::default()).unwrap();
    // The same deterministic mixed sequence through both kernels: fresh
    // masquerades, established flows (forward and reply), the DNAT
    // port-forward and its replies all engage.
    for i in 0..30u16 {
        let (p, f) = match i % 5 {
            0 | 1 => {
                let sport = 40000 + (i % 3);
                (
                    plain.receive(p_lan, outbound(&plain, p_lan, sport)),
                    fast.receive(f_lan, outbound(&fast, f_lan, sport)),
                )
            }
            2 => {
                // Reply to the first masqueraded flow's allocated port
                // (the cursor starts at 32768 in both kernels).
                (
                    plain.receive(p_wan, inbound_reply(&plain, p_wan, 32768)),
                    fast.receive(f_wan, inbound_reply(&fast, f_wan, 32768)),
                )
            }
            3 => (
                plain.receive(p_wan, inbound_dnat(&plain, p_wan, 5000 + i)),
                fast.receive(f_wan, inbound_dnat(&fast, f_wan, 5000 + i)),
            ),
            _ => (
                plain.receive(p_lan, dnat_reply(&plain, p_lan, 5000 + i - 1)),
                fast.receive(f_lan, dnat_reply(&fast, f_lan, 5000 + i - 1)),
            ),
        };
        assert_eq!(
            p.transmissions(),
            f.transmissions(),
            "frame {i} diverged between slow and fast path"
        );
    }
}

#[test]
fn conservation_law_holds_with_nat_traffic() {
    let registry = Registry::new();
    let (mut k, lan, wan) = nat_kernel();
    k.set_telemetry(registry.clone());
    let cfg = ControllerConfig {
        telemetry: Some(registry.clone()),
        ..ControllerConfig::default()
    };
    let (_ctrl, _) = Controller::attach(&mut k, cfg).unwrap();

    let mut injected = 0u64;
    for sport in [40000u16, 40001, 40002] {
        for _ in 0..3 {
            k.receive(lan, outbound(&k, lan, sport));
            injected += 1;
        }
    }
    let out = k.receive(lan, outbound(&k, lan, 40000));
    let (_, public_port, _, _) = tx_tuple(&out);
    injected += 1;
    for _ in 0..3 {
        k.receive(wan, inbound_reply(&k, wan, public_port));
        injected += 1;
    }
    for _ in 0..2 {
        k.receive(wan, inbound_dnat(&k, wan, 5555));
        injected += 1;
    }

    // Every injected packet was decided exactly once: as a fast-path hit
    // or a slow-path fallback.
    let hits = registry.counter_total("linuxfp_fp_hits_total");
    let fallbacks = registry.counter_total("linuxfp_slowpath_fallbacks_total");
    let total = registry.counter_total("linuxfp_packets_injected_total");
    assert_eq!(total, injected);
    assert_eq!(hits + fallbacks, total, "packet lost or double-counted");
    assert!(hits > 0, "established NAT flows must hit the fast path");
    assert!(fallbacks > 0, "fresh flows must fall back to bind");
    // NAT's own ledger was fed by both paths through the same counters.
    assert!(registry.counter_total("linuxfp_nat_translations_total") > 0);
    assert!(registry.counter_total("linuxfp_nat_reply_hits_total") > 0);
    assert_eq!(
        registry.counter_total("linuxfp_nat_port_exhaustion_total"),
        0
    );
}

#[test]
fn tcp_nat_stays_on_slow_path_but_translates() {
    let (mut k, lan, _) = nat_kernel();
    let (_ctrl, _) = Controller::attach(&mut k, ControllerConfig::default()).unwrap();
    let frame = builder::tcp_packet(
        MacAddr::from_index(0xC11E),
        k.device(lan).unwrap().mac,
        CLIENT,
        REMOTE,
        50000,
        443,
        linuxfp::packet::tcp::TcpFlags {
            syn: true,
            ..Default::default()
        },
        b"",
    );
    // Twice: the helper reports TCP as a miss, so every packet punts —
    // but each one still leaves correctly masqueraded.
    for _ in 0..2 {
        let out = k.receive(lan, frame.clone());
        assert_eq!(out.cost.stage_count("skb_alloc"), 1, "TCP is slow-path");
        let tx = out.transmissions();
        assert_eq!(tx.len(), 1);
        let eth = EthernetFrame::parse(tx[0].1).unwrap();
        let ip = Ipv4Header::parse(&tx[0].1[eth.payload_offset..]).unwrap();
        assert_eq!(ip.src, PUBLIC_IP, "masqueraded");
        let tcp = linuxfp::packet::TcpHeader::parse(&tx[0].1[eth.payload_offset + ip.header_len..])
            .unwrap();
        assert_eq!(tcp.dst_port, 443);
    }
}

#[test]
fn without_nat_helper_everything_degrades_to_slow_path() {
    let (mut plain, p_lan, p_wan) = nat_kernel();
    let (mut k, lan, wan) = nat_kernel();
    let cfg = ControllerConfig {
        capabilities: Capabilities::full().without(linuxfp::ebpf::HelperId::NatLookup),
        ..ControllerConfig::default()
    };
    let (ctrl, _) = Controller::attach(&mut k, cfg).unwrap();
    // NAT is configured but `bpf_nat_lookup` is absent: accelerating
    // *any* interface could forward around a needed translation, so no
    // fast path is deployed at all.
    assert!(ctrl.deployer().active_interfaces().is_empty());
    // Observable behavior is identical to the never-accelerated kernel.
    for i in 0..12u16 {
        let (p, f) = match i % 3 {
            0 => (
                plain.receive(p_lan, outbound(&plain, p_lan, 41000 + i)),
                k.receive(lan, outbound(&k, lan, 41000 + i)),
            ),
            1 => (
                plain.receive(p_wan, inbound_dnat(&plain, p_wan, 6000 + i)),
                k.receive(wan, inbound_dnat(&k, wan, 6000 + i)),
            ),
            _ => (
                plain.receive(p_wan, inbound_reply(&plain, p_wan, 32768)),
                k.receive(wan, inbound_reply(&k, wan, 32768)),
            ),
        };
        assert_eq!(p.transmissions(), f.transmissions(), "frame {i}");
        assert_eq!(f.cost.stage_count("skb_alloc"), 1, "everything punts");
    }
}

#[test]
fn flushing_nat_rules_restores_the_plain_router_fast_path() {
    let (mut k, lan, _) = nat_kernel();
    let (mut ctrl, report) = Controller::attach(&mut k, ControllerConfig::default()).unwrap();
    assert!(report.changed);
    // `iptables -t nat -F` publishes a netlink event; the controller
    // reacts by swapping in nat-less pipelines.
    k.iptables_nat_flush();
    let report = ctrl.poll(&mut k).unwrap().expect("nat flush must redeploy");
    assert!(report.changed);
    // Plain forwarding runs on the fast path without any nat stage.
    let out = k.receive(lan, outbound(&k, lan, 42000));
    let out2 = k.receive(lan, outbound(&k, lan, 42000));
    assert_eq!(
        out.cost.stage_count("nat_lookup") + out2.cost.stage_count("nat_lookup"),
        0
    );
    assert_eq!(
        out2.cost.stage_count("skb_alloc"),
        0,
        "router-only fast path"
    );
    // No translation anymore: the source leaves untouched.
    let (src, sport, _, _) = tx_tuple(&out2);
    assert_eq!((src, sport), (CLIENT, 42000));
}
