//! Batching must never change what the datapath *does* — only what it
//! costs. These tests drive the same deterministic packet sequence
//! through a one-at-a-time platform and a batched platform (under
//! arbitrary burst splits) and require byte-identical outputs, identical
//! verdicts, and an intact hit/fallback conservation ledger.

use linuxfp::ebpf::hook::HookPoint;
use linuxfp::packet::{builder, Batch, BufferPool};
use linuxfp::platforms::scenario::SOURCE_MAC;
use linuxfp::platforms::{LinuxFpPlatform, Platform, Scenario};
use linuxfp::telemetry::Registry;
use std::net::Ipv4Addr;

/// A deterministic split of `total` packets into bursts of 1..=max — a
/// cheap LCG so the test needs no rand dependency but still exercises
/// ragged, "arbitrary" batch boundaries.
fn splits(total: usize, max: usize, seed: u64) -> Vec<usize> {
    let mut state = seed | 1;
    let mut left = total;
    let mut out = Vec::new();
    while left > 0 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let n = ((state >> 33) as usize % max + 1).min(left);
        out.push(n);
        left -= n;
    }
    out
}

/// The mixed workload: forwarded flows, blacklisted flows (fast-path
/// drops), and frames addressed to the DUT itself (slow-path delivery) —
/// every verdict class the hook can produce.
fn workload(scenario: Scenario, mac: linuxfp::packet::MacAddr, n: usize) -> Vec<Vec<u8>> {
    (0..n as u64)
        .map(|i| match i % 5 {
            3 => builder::udp_packet(
                SOURCE_MAC,
                mac,
                Ipv4Addr::new(10, 0, 1, 100),
                scenario.blocked_dst(i as u32),
                1000 + i as u16,
                4791,
                b"blocked",
            ),
            4 => builder::udp_packet(
                SOURCE_MAC,
                mac,
                Ipv4Addr::new(10, 0, 1, 100),
                Ipv4Addr::new(10, 0, 1, 1),
                1000 + i as u16,
                4791,
                b"for the host",
            ),
            _ => scenario.frame(mac, i, 60),
        })
        .collect()
}

/// Flattened observable behavior of a sequence of outcomes.
#[derive(Debug, PartialEq)]
struct Observed {
    transmissions: Vec<(u32, Vec<u8>)>,
    deliveries: Vec<(u32, Vec<u8>)>,
    drops: Vec<String>,
}

fn observe<'a>(
    outcomes: impl Iterator<Item = &'a linuxfp::netstack::stack::RxOutcome>,
) -> Observed {
    let mut obs = Observed {
        transmissions: Vec::new(),
        deliveries: Vec::new(),
        drops: Vec::new(),
    };
    for out in outcomes {
        for (dev, frame) in out.transmissions() {
            obs.transmissions.push((dev.as_u32(), frame.to_vec()));
        }
        for (dev, frame) in out.deliveries() {
            obs.deliveries.push((dev.as_u32(), frame.to_vec()));
        }
        for reason in out.drops() {
            obs.drops.push(reason.to_string());
        }
    }
    obs
}

fn equivalence_under_splits(hook: HookPoint, seed: u64) {
    let scenario = Scenario::gateway();
    let mut single = LinuxFpPlatform::with_hook(scenario, hook);
    let registry = Registry::new();
    let mut batched = LinuxFpPlatform::with_telemetry(scenario, hook, registry.clone());
    assert_eq!(single.dut_mac(), batched.dut_mac(), "same seed, same MACs");
    let mac = single.dut_mac();

    const TOTAL: usize = 60;
    let frames = workload(scenario, mac, TOTAL);

    // Reference: one packet at a time.
    let singles: Vec<_> = frames.iter().map(|f| single.process(f.clone())).collect();
    let expect = observe(singles.iter());

    // Same frames, ragged bursts, pooled buffers.
    let pool = BufferPool::new();
    let mut batched_outcomes = Vec::new();
    let mut cursor = frames.iter();
    for burst in splits(TOTAL, 9, seed) {
        let mut batch = Batch::with_capacity(burst);
        for frame in cursor.by_ref().take(burst) {
            let mut buf = pool.acquire();
            buf.extend_from_slice(frame);
            batch.push(buf);
        }
        let out = batched.process_batch(&mut batch);
        assert_eq!(out.batch_size, burst);
        batched_outcomes.extend(out.outcomes);
    }
    assert_eq!(batched_outcomes.len(), TOTAL);
    let got = observe(batched_outcomes.iter());

    // Byte-identical outputs, identical verdicts, in identical order.
    assert_eq!(expect, got, "hook {hook:?} seed {seed}");

    // Conservation: every injected packet was decided exactly once.
    drop(batched_outcomes);
    let hits = registry.counter_total("linuxfp_fp_hits_total");
    let fallbacks = registry.counter_total("linuxfp_slowpath_fallbacks_total");
    let injected = registry.counter_total("linuxfp_packets_injected_total");
    assert_eq!(injected, TOTAL as u64);
    assert_eq!(
        hits + fallbacks,
        injected,
        "hits {hits} + fallbacks {fallbacks}"
    );
    // The mixed workload produced both classes.
    assert!(hits > 0 && fallbacks > 0);
}

#[test]
fn xdp_batching_never_changes_behavior() {
    for seed in [2, 77, 1234] {
        equivalence_under_splits(HookPoint::Xdp, seed);
    }
}

#[test]
fn tc_batching_never_changes_behavior() {
    equivalence_under_splits(HookPoint::Tc, 42);
}

#[test]
fn burst_of_one_costs_exactly_single_packet_processing() {
    // The wrapper contract: a batch of one is bit-identical — cost
    // included — to historical per-packet processing.
    let scenario = Scenario::router();
    let mut a = LinuxFpPlatform::new(scenario);
    let mut b = LinuxFpPlatform::new(scenario);
    let mac = a.dut_mac();
    for i in 0..16u64 {
        let frame = scenario.frame(mac, i, 60);
        let single = a.process(frame.clone());
        let mut batch = Batch::with_capacity(1);
        batch.push(frame);
        let batched = b.process_batch(&mut batch);
        assert_eq!(batched.batch_size, 1);
        assert_eq!(
            single.cost.total_ns(),
            batched.total_ns(),
            "frame {i}: batch-of-one cost must be exact"
        );
        assert_eq!(
            observe(std::iter::once(&single)),
            observe(batched.outcomes.iter())
        );
    }
}

#[test]
fn batching_is_strictly_cheaper_per_packet() {
    // The acceptance criterion: ns/pkt at burst 32 strictly below
    // burst 1 on the router fast path.
    let scenario = Scenario::router();
    let mut p = LinuxFpPlatform::new(scenario);
    let mac = p.dut_mac();
    let t1 = p.service_time_ns_batched(&mut |i, buf| scenario.fill_frame(mac, i, 60, buf), 1);
    let t32 = p.service_time_ns_batched(&mut |i, buf| scenario.fill_frame(mac, i, 60, buf), 32);
    assert!(
        t32 < t1,
        "burst 32 ({t32:.1} ns) must beat burst 1 ({t1:.1} ns)"
    );
}
