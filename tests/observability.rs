//! End-to-end observability: one host mixing bridging, forwarding and
//! filtering, with the telemetry registry wired through every layer.
//! Checks the transparency ledger (`fast_path_hits + slow_path_fallbacks
//! == packets_injected`, globally and per FPM pipeline) and that both
//! renderers emit every registered metric.

use linuxfp::netstack::ipvs::Scheduler;
use linuxfp::netstack::nat::{NatChain, NatRule, NatTarget};
use linuxfp::netstack::netfilter::{ChainHook, IptRule};
use linuxfp::packet::builder;
use linuxfp::packet::ipv4::IpProto;
use linuxfp::prelude::*;
use linuxfp::telemetry::trace::{TraceEvent, TraceSpan};
use linuxfp::telemetry::Scale;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// A host that bridges `p1<->p2` on `br0` and routes `eth0->eth1` behind
/// a FORWARD blacklist: the controller synthesizes `bridge` pipelines on
/// the bridge ports and `router+filter` pipelines on the routed NICs.
fn mixed_kernel() -> (Kernel, [IfIndex; 4]) {
    let mut k = Kernel::new(47);
    let p1 = k.add_physical("p1").unwrap();
    let p2 = k.add_physical("p2").unwrap();
    let br = k.add_bridge("br0").unwrap();
    k.brctl_addif(br, p1).unwrap();
    k.brctl_addif(br, p2).unwrap();
    let eth0 = k.add_physical("eth0").unwrap();
    let eth1 = k.add_physical("eth1").unwrap();
    k.ip_addr_add(eth0, "10.0.1.1/24".parse::<IfAddr>().unwrap())
        .unwrap();
    k.ip_addr_add(eth1, "10.0.2.1/24".parse::<IfAddr>().unwrap())
        .unwrap();
    for d in [p1, p2, br, eth0, eth1] {
        k.ip_link_set_up(d).unwrap();
    }
    k.sysctl_set("net.ipv4.ip_forward", 1).unwrap();
    k.ip_route_add(
        "10.10.0.0/16".parse::<Prefix>().unwrap(),
        Some("10.0.2.2".parse().unwrap()),
        None,
    )
    .unwrap();
    let now = k.now();
    k.neigh.learn(
        "10.0.2.2".parse().unwrap(),
        MacAddr::from_index(0xBEEF),
        eth1,
        now,
    );
    k.iptables_append(
        ChainHook::Forward,
        IptRule::drop_dst("10.10.3.7/32".parse::<Prefix>().unwrap()),
    );
    (k, [p1, p2, eth0, eth1])
}

fn bridged_frame(src: u64, dst: u64) -> Vec<u8> {
    builder::udp_packet(
        MacAddr::from_index(0x200 + src),
        MacAddr::from_index(0x200 + dst),
        Ipv4Addr::new(192, 168, 0, src as u8 + 1),
        Ipv4Addr::new(192, 168, 0, dst as u8 + 1),
        1000,
        2000,
        b"obs",
    )
}

fn routed_frame(k: &Kernel, eth0: IfIndex, last_octet: u8) -> Vec<u8> {
    builder::udp_packet(
        MacAddr::from_index(0xAAAA),
        k.device(eth0).unwrap().mac,
        "10.0.1.100".parse().unwrap(),
        Ipv4Addr::new(10, 10, 3, last_octet),
        1000,
        2000,
        b"obs",
    )
}

#[test]
fn mixed_traffic_conserves_packets_per_fpm() {
    let registry = Registry::new();
    let (mut k, [p1, p2, eth0, _eth1]) = mixed_kernel();
    k.set_telemetry(registry.clone());
    let cfg = ControllerConfig {
        telemetry: Some(registry.clone()),
        ..ControllerConfig::default()
    };
    let (_ctrl, report) = Controller::attach(&mut k, cfg).unwrap();
    assert!(report.changed);

    // Count what we inject, per FPM pipeline carrying the ingress hook.
    let mut injected: BTreeMap<&str, u64> = BTreeMap::new();

    // Bridging: the first frame floods (unknown destination -> slow-path
    // fallback, which learns the source); replies then unicast on the
    // fast path via the FDB helper.
    let out = k.receive(p1, bridged_frame(1, 2));
    assert!(!out.transmissions().is_empty());
    *injected.entry("bridge").or_default() += 1;
    for _ in 0..4 {
        let out = k.receive(p2, bridged_frame(2, 1));
        assert_eq!(out.transmissions().len(), 1, "learned unicast");
        *injected.entry("bridge").or_default() += 1;
    }

    // Forwarding: allowed traffic redirects on the fast path.
    for i in 0..6u8 {
        let out = k.receive(eth0, routed_frame(&k, eth0, 10 + i));
        assert_eq!(out.transmissions().len(), 1, "forwarded");
        *injected.entry("router+filter").or_default() += 1;
    }
    // Filtering: blacklisted traffic drops on the fast path.
    for _ in 0..3 {
        let out = k.receive(eth0, routed_frame(&k, eth0, 7));
        assert!(out.transmissions().is_empty(), "blocked");
        *injected.entry("router+filter").or_default() += 1;
    }

    // Per-FPM conservation: each pipeline decided exactly the packets
    // injected at its interfaces, as a hit or a fallback.
    for (fpm, count) in &injected {
        let hits = registry
            .counter_value("linuxfp_fp_hits_total", &[("fpm", fpm)])
            .unwrap_or(0);
        let fallbacks = registry
            .counter_value("linuxfp_slowpath_fallbacks_total", &[("fpm", fpm)])
            .unwrap_or(0);
        assert_eq!(hits + fallbacks, *count, "conservation for fpm={fpm}");
        assert!(hits > 0, "fpm={fpm} never hit the fast path");
    }

    // Global conservation against the stack's own injection counter.
    let hits = registry.counter_total("linuxfp_fp_hits_total");
    let fallbacks = registry.counter_total("linuxfp_slowpath_fallbacks_total");
    let total = registry.counter_total("linuxfp_packets_injected_total");
    assert_eq!(total, injected.values().sum::<u64>());
    assert_eq!(hits + fallbacks, total, "packet lost or double-counted");

    // The microflow verdict cache keeps the same ledger one level down:
    // every packet that entered a dispatcher hook either hit the cache or
    // was counted a miss (ineligible packets included), so hits + misses
    // must also equal the injected count.
    let fc_hits = registry.counter_total("linuxfp_flowcache_hits_total");
    let fc_misses = registry.counter_total("linuxfp_flowcache_misses_total");
    assert_eq!(fc_hits + fc_misses, total, "flow-cache ledger must balance");

    // The layers below agree: VM verdicts sum to the hook decisions, and
    // the verifier accepted every deployed program.
    assert_eq!(registry.counter_total("linuxfp_vm_verdicts_total"), total);
    assert!(registry.counter_total("linuxfp_verifier_accepted_total") >= 3);
    assert_eq!(registry.counter_total("linuxfp_verifier_rejected_total"), 0);
    // Controller telemetry captured the startup reconcile.
    let reconciles = registry.histogram("linuxfp_reconcile_seconds", &[], Scale::NanosToSeconds);
    assert!(reconciles.count() >= 1);
    assert!(registry.counter_total("linuxfp_graph_rebuilds_total") >= 1);
}

#[test]
fn both_renderers_emit_every_registered_metric() {
    let registry = Registry::new();
    let (mut k, [p1, _p2, eth0, _eth1]) = mixed_kernel();
    k.set_telemetry(registry.clone());
    let cfg = ControllerConfig {
        telemetry: Some(registry.clone()),
        ..ControllerConfig::default()
    };
    let (_ctrl, _) = Controller::attach(&mut k, cfg).unwrap();
    k.receive(p1, bridged_frame(1, 2));
    k.receive(eth0, routed_frame(&k, eth0, 9));
    k.receive(eth0, routed_frame(&k, eth0, 7)); // fast-path drop

    let names = registry.names();
    assert!(
        names.len() >= 10,
        "expected a populated registry: {names:?}"
    );
    for required in [
        "linuxfp_fp_hits_total",
        "linuxfp_slowpath_fallbacks_total",
        "linuxfp_packets_injected_total",
        "linuxfp_slowpath_packets_total",
        "linuxfp_vm_insns_total",
        "linuxfp_vm_helper_calls_total",
        "linuxfp_vm_verdicts_total",
        "linuxfp_verifier_accepted_total",
        "linuxfp_reconcile_seconds",
        "linuxfp_graph_rebuilds_total",
    ] {
        assert!(names.iter().any(|n| n == required), "missing {required}");
    }

    let prom = render_prometheus(&registry);
    let json = snapshot_json(&registry).to_string();
    for name in &names {
        assert!(
            prom.contains(name.as_str()),
            "{name} absent from Prometheus text"
        );
        assert!(
            json.contains(name.as_str()),
            "{name} absent from JSON snapshot"
        );
    }
    // Histograms render the full Prometheus triplet.
    assert!(prom.contains("linuxfp_reconcile_seconds_bucket"));
    assert!(prom.contains("linuxfp_reconcile_seconds_sum"));
    assert!(prom.contains("linuxfp_reconcile_seconds_count"));
}

// ---------------------------------------------------------------------
// Flight-recorder stage attribution: for every accelerated subsystem,
// each sampled span's per-stage costs must sum to exactly the virtual
// time the packet was charged — no stage unaccounted, none counted
// twice, in every regime (slow path, fast path, flow-cache hit).
// ---------------------------------------------------------------------

/// Every span conserves cost: stage sums equal the charged total.
fn assert_spans_conserve(spans: &[TraceSpan], subsystem: &str) {
    assert!(!spans.is_empty(), "{subsystem}: no spans sampled");
    for s in spans {
        assert!(
            s.total_ns > 0.0,
            "{subsystem}: span #{} cost nothing",
            s.seq
        );
        assert!(
            !s.stages.is_empty(),
            "{subsystem}: span #{} has no stages",
            s.seq
        );
        assert!(
            (s.attributed_ns() - s.total_ns).abs() < 1e-6,
            "{subsystem}: span #{} attributes {:.3} of {:.3} ns",
            s.seq,
            s.attributed_ns(),
            s.total_ns
        );
    }
}

#[test]
fn router_spans_conserve_stage_attribution() {
    let scenario = Scenario::router();
    let mut lfp = LinuxFpPlatform::new(scenario);
    let mac = lfp.dut_mac();
    let ring = lfp.kernel_mut().enable_flight_recorder(256, 1);
    for i in 0..8u64 {
        lfp.process(scenario.frame(mac, i, 60));
    }
    let spans = ring.recent();
    assert_eq!(spans.len(), 8, "1-in-1 sampling records every packet");
    assert_spans_conserve(&spans, "router");
    // The steady state must include fast-path spans, and those must
    // attribute the VM run.
    assert!(
        spans.iter().any(|s| s.events.iter().any(|e| matches!(
            e,
            TraceEvent::Vm {
                verdict: "redirect",
                ..
            }
        ))),
        "router never redirected on the fast path"
    );
}

#[test]
fn bridge_spans_conserve_stage_attribution() {
    let registry = Registry::new();
    let (mut k, [p1, p2, _eth0, _eth1]) = mixed_kernel();
    k.set_telemetry(registry.clone());
    let cfg = ControllerConfig {
        telemetry: Some(registry),
        ..ControllerConfig::default()
    };
    let (_ctrl, _) = Controller::attach(&mut k, cfg).unwrap();
    let ring = k.enable_flight_recorder(256, 1);
    k.receive(p1, bridged_frame(1, 2)); // flood + learn
    for _ in 0..4 {
        k.receive(p2, bridged_frame(2, 1)); // learned unicast
    }
    let spans = ring.recent();
    assert_eq!(spans.len(), 5);
    assert_spans_conserve(&spans, "bridge");
}

#[test]
fn filter_spans_conserve_stage_attribution_and_carry_drop_reasons() {
    let registry = Registry::new();
    let (mut k, [_p1, _p2, eth0, _eth1]) = mixed_kernel();
    k.set_telemetry(registry.clone());
    let cfg = ControllerConfig {
        telemetry: Some(registry),
        ..ControllerConfig::default()
    };
    let (_ctrl, _) = Controller::attach(&mut k, cfg).unwrap();
    let ring = k.enable_flight_recorder(256, 1);
    for _ in 0..4 {
        let out = k.receive(eth0, routed_frame(&k, eth0, 7));
        assert!(out.transmissions().is_empty(), "blacklisted dst forwarded");
    }
    let spans = ring.recent();
    assert_eq!(spans.len(), 4);
    assert_spans_conserve(&spans, "filter");
    // Every drop names a machine-readable taxonomy reason.
    for s in &spans {
        let reasons: Vec<&str> = s
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Drop { reason } => Some(reason.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(reasons.len(), 1, "span #{} drops: {reasons:?}", s.seq);
    }
}

#[test]
fn ipvs_spans_conserve_stage_attribution() {
    const VIP: Ipv4Addr = Ipv4Addr::new(10, 96, 0, 10);
    let mut k = Kernel::new(47);
    let eth0 = k.add_physical("eth0").unwrap();
    let eth1 = k.add_physical("eth1").unwrap();
    k.ip_addr_add(eth0, "10.0.1.1/24".parse::<IfAddr>().unwrap())
        .unwrap();
    k.ip_addr_add(eth1, "10.0.2.1/24".parse::<IfAddr>().unwrap())
        .unwrap();
    k.ip_link_set_up(eth0).unwrap();
    k.ip_link_set_up(eth1).unwrap();
    k.sysctl_set("net.ipv4.ip_forward", 1).unwrap();
    let now = k.now();
    assert!(k.ipvsadm_add_service(VIP, 53, IpProto::Udp, Scheduler::RoundRobin));
    for i in 0..2u8 {
        let backend = Ipv4Addr::new(10, 0, 2, 10 + i);
        k.neigh
            .learn(backend, MacAddr::from_index(0xB0 + u64::from(i)), eth1, now);
        assert!(k.ipvsadm_add_backend(VIP, 53, IpProto::Udp, backend, 53));
    }
    let (_ctrl, _) = Controller::attach(&mut k, ControllerConfig::default()).unwrap();
    let ring = k.enable_flight_recorder(256, 1);
    // Same flow twice: first packet schedules in the slow path and pins
    // the binding, the second rewrites on the fast path.
    for _ in 0..2 {
        let q = builder::udp_packet(
            MacAddr::from_index(0xAAAA),
            k.device(eth0).unwrap().mac,
            Ipv4Addr::new(10, 0, 1, 100),
            VIP,
            40001,
            53,
            b"query",
        );
        let out = k.receive(eth0, q);
        assert_eq!(out.transmissions().len(), 1, "vip query not forwarded");
    }
    let spans = ring.recent();
    assert_eq!(spans.len(), 2);
    assert_spans_conserve(&spans, "ipvs");
}

#[test]
fn nat_spans_conserve_stage_attribution_and_record_rewrites() {
    const PUBLIC_IP: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);
    const UPSTREAM_GW: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 254);
    const REMOTE: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 7);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 100);
    let mut k = Kernel::new(48);
    let lan = k.add_physical("lan0").unwrap();
    let wan = k.add_physical("wan0").unwrap();
    k.ip_addr_add(lan, "10.0.1.1/24".parse::<IfAddr>().unwrap())
        .unwrap();
    k.ip_addr_add(wan, format!("{PUBLIC_IP}/24").parse::<IfAddr>().unwrap())
        .unwrap();
    k.ip_link_set_up(lan).unwrap();
    k.ip_link_set_up(wan).unwrap();
    k.sysctl_set("net.ipv4.ip_forward", 1).unwrap();
    k.ip_route_add("198.51.100.0/24".parse().unwrap(), Some(UPSTREAM_GW), None)
        .unwrap();
    let now = k.now();
    k.neigh
        .learn(UPSTREAM_GW, MacAddr::from_index(0x0E0E), wan, now);
    k.neigh.learn(CLIENT, MacAddr::from_index(0xC11E), lan, now);
    assert!(k.iptables_nat_append(
        NatChain::Postrouting,
        NatRule {
            out_if: Some(wan),
            ..NatRule::any(NatTarget::Masquerade)
        },
    ));
    let (_ctrl, _) = Controller::attach(&mut k, ControllerConfig::default()).unwrap();
    let ring = k.enable_flight_recorder(256, 1);
    for _ in 0..2 {
        let pkt = builder::udp_packet(
            MacAddr::from_index(0xC11E),
            k.device(lan).unwrap().mac,
            CLIENT,
            REMOTE,
            5000,
            443,
            b"out",
        );
        let out = k.receive(lan, pkt);
        assert_eq!(out.transmissions().len(), 1, "masqueraded packet dropped");
    }
    let spans = ring.recent();
    assert_eq!(spans.len(), 2);
    assert_spans_conserve(&spans, "nat");
    // At least the slow-path packet records its rewrite as a NAT event.
    assert!(
        spans.iter().any(|s| s.events.iter().any(|e| matches!(
            e,
            TraceEvent::Nat {
                rewritten: true,
                ..
            }
        ))),
        "no NAT rewrite event in {spans:?}"
    );
}
