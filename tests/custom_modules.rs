//! Custom module injection (paper §VIII): user-supplied eBPF snippets —
//! here a packet-counting monitor — inlined into every synthesized fast
//! path at runtime, with the verifier still gating deployment.

use linuxfp::core::fpm::CustomFpm;
use linuxfp::core::Trigger;
use linuxfp::ebpf::insn::{AluOp, Insn, MemSize};
use linuxfp::packet::builder;
use linuxfp::prelude::*;
use std::net::Ipv4Addr;

fn router_kernel() -> (Kernel, IfIndex, IfIndex) {
    let mut k = Kernel::new(61);
    let eth0 = k.add_physical("eth0").unwrap();
    let eth1 = k.add_physical("eth1").unwrap();
    k.ip_addr_add(eth0, "10.0.1.1/24".parse::<IfAddr>().unwrap())
        .unwrap();
    k.ip_addr_add(eth1, "10.0.2.1/24".parse::<IfAddr>().unwrap())
        .unwrap();
    k.ip_link_set_up(eth0).unwrap();
    k.ip_link_set_up(eth1).unwrap();
    k.sysctl_set("net.ipv4.ip_forward", 1).unwrap();
    k.ip_route_add(
        "10.10.0.0/16".parse::<Prefix>().unwrap(),
        Some("10.0.2.2".parse().unwrap()),
        None,
    )
    .unwrap();
    let now = k.now();
    k.neigh.learn(
        "10.0.2.2".parse().unwrap(),
        MacAddr::from_index(0xBEEF),
        eth1,
        now,
    );
    (k, eth0, eth1)
}

fn frame(k: &Kernel, eth0: IfIndex) -> Vec<u8> {
    builder::udp_packet(
        MacAddr::from_index(0xAAAA),
        k.device(eth0).unwrap().mac,
        Ipv4Addr::new(10, 0, 1, 100),
        Ipv4Addr::new(10, 10, 3, 7),
        1,
        2,
        b"count me",
    )
}

#[test]
fn monitoring_module_counts_fast_path_packets() {
    let (mut k, eth0, _) = router_kernel();
    let (mut ctrl, _) = Controller::attach(&mut k, ControllerConfig::default()).unwrap();

    // Create the counter map in the controller's shared map store, then
    // hot-install the monitoring module referencing it.
    let counter = ctrl.deployer().maps().create_hash(4);
    let report = ctrl
        .install_custom_module(&mut k, CustomFpm::packet_counter("pkt_count", counter.0))
        .unwrap();
    assert!(report.changed);
    assert_eq!(report.triggers, vec![Trigger::CustomModule]);

    for _ in 0..5 {
        let out = k.receive(eth0, frame(&k, eth0));
        assert_eq!(out.transmissions().len(), 1);
        assert_eq!(out.cost.stage_count("skb_alloc"), 0, "still fast-pathed");
        assert_eq!(out.cost.stage_count("map_update"), 1, "monitor ran");
    }
    // User space reads the live counter out of the shared map.
    let value = ctrl
        .deployer()
        .maps()
        .lookup(counter, &0u32.to_le_bytes())
        .unwrap()
        .expect("counter present");
    assert_eq!(u64::from_le_bytes(value.try_into().unwrap()), 5);
}

#[test]
fn unsafe_custom_module_is_rejected_and_rolled_back() {
    let (mut k, eth0, _) = router_kernel();
    let (mut ctrl, _) = Controller::attach(&mut k, ControllerConfig::default()).unwrap();

    // A malicious/buggy module: unguarded far-out-of-bounds packet read.
    let evil = CustomFpm {
        name: "oob_reader".into(),
        insns: vec![Insn::Load {
            size: MemSize::DW,
            dst: 2,
            src: 6, // packet pointer from the prologue
            off: 4096,
        }],
    };
    let err = ctrl.install_custom_module(&mut k, evil).unwrap_err();
    assert!(err.to_string().contains("rejected"), "{err}");

    // Rolled back: the previous (clean) fast path still runs.
    let out = k.receive(eth0, frame(&k, eth0));
    assert_eq!(out.transmissions().len(), 1);
    assert_eq!(out.cost.stage_count("skb_alloc"), 0);
    assert_eq!(
        out.cost.stage_count("map_update"),
        0,
        "evil module not present"
    );
}

#[test]
fn register_clobbering_module_cannot_corrupt_the_pipeline() {
    // A module that trashes every scratch register: the synthesized
    // pipeline after it must still verify (it re-derives its state) and
    // forward correctly.
    let mut insns = Vec::new();
    for r in [0u8, 1, 2, 3, 4, 5, 9] {
        insns.push(Insn::AluImm {
            op: AluOp::Mov,
            dst: r,
            imm: 0x5A5A,
        });
    }
    let clobber = CustomFpm {
        name: "clobber".into(),
        insns,
    };
    let (mut k, eth0, eth1) = router_kernel();
    let cfg = ControllerConfig {
        custom_modules: vec![clobber],
        ..ControllerConfig::default()
    };
    let (_ctrl, report) = Controller::attach(&mut k, cfg).unwrap();
    assert!(report.changed);
    let out = k.receive(eth0, frame(&k, eth0));
    assert_eq!(out.transmissions().len(), 1);
    assert_eq!(out.transmissions()[0].0, eth1);
    assert_eq!(out.cost.stage_count("skb_alloc"), 0);
}

#[test]
fn custom_modules_survive_reconfiguration() {
    // The monitor keeps counting across a configuration change that
    // resynthesizes the data path.
    let (mut k, eth0, _) = router_kernel();
    let (mut ctrl, _) = Controller::attach(&mut k, ControllerConfig::default()).unwrap();
    let counter = ctrl.deployer().maps().create_hash(4);
    ctrl.install_custom_module(&mut k, CustomFpm::packet_counter("pkt_count", counter.0))
        .unwrap();
    let _ = k.receive(eth0, frame(&k, eth0));

    // Reconfigure: add a FORWARD rule -> router+filter resynthesis.
    k.iptables_append(
        linuxfp::netstack::netfilter::ChainHook::Forward,
        linuxfp::netstack::netfilter::IptRule::drop_dst("10.99.0.0/16".parse().unwrap()),
    );
    let report = ctrl.poll(&mut k).unwrap().unwrap();
    assert!(report.changed);

    let _ = k.receive(eth0, frame(&k, eth0));
    let value = ctrl
        .deployer()
        .maps()
        .lookup(counter, &0u32.to_le_bytes())
        .unwrap()
        .expect("counter present");
    assert_eq!(u64::from_le_bytes(value.try_into().unwrap()), 2);
}
