//! The pooled-buffer contract: after warm-up the datapath performs no
//! per-packet heap allocation — every buffer the workload acquires comes
//! back to the free list, on every exit path (forwarded, dropped,
//! punted up the stack).

use linuxfp::packet::{builder, Batch, BufferPool};
use linuxfp::platforms::scenario::SOURCE_MAC;
use linuxfp::platforms::{LinuxFpPlatform, Platform, Scenario};
use std::net::Ipv4Addr;

const BURST: usize = 32;

fn fill_mixed_burst(
    pool: &BufferPool,
    scenario: Scenario,
    mac: linuxfp::packet::MacAddr,
    base: u64,
) -> Batch {
    let mut batch = Batch::with_capacity(BURST);
    for j in 0..BURST as u64 {
        let i = base + j;
        let mut buf = pool.acquire();
        match i % 5 {
            // Fast-path drop: blacklisted destination.
            3 => buf.extend_from_slice(&builder::udp_packet(
                SOURCE_MAC,
                mac,
                Ipv4Addr::new(10, 0, 1, 100),
                scenario.blocked_dst(i as u32),
                1000 + i as u16,
                4791,
                b"blocked",
            )),
            // Slow-path punt: addressed to the DUT itself.
            4 => buf.extend_from_slice(&builder::udp_packet(
                SOURCE_MAC,
                mac,
                Ipv4Addr::new(10, 0, 1, 100),
                Ipv4Addr::new(10, 0, 1, 1),
                1000 + i as u16,
                4791,
                b"for the host",
            )),
            // Fast-path redirect: forwarded flow.
            _ => scenario.fill_frame(mac, i, 60, &mut buf),
        }
        batch.push(buf);
    }
    batch
}

#[test]
fn pool_stops_allocating_after_warmup_on_every_exit_path() {
    let scenario = Scenario::gateway();
    let mut p = LinuxFpPlatform::new(scenario);
    let mac = p.dut_mac();
    let pool = BufferPool::new();

    // Warm-up: the pool grows to the working set.
    for round in 0..4u64 {
        let mut batch = fill_mixed_burst(&pool, scenario, mac, round * BURST as u64);
        let out = p.process_batch(&mut batch);
        assert_eq!(out.outcomes.len(), BURST);
        drop(out);
    }
    let warm = pool.stats();
    assert!(warm.allocated > 0);
    assert_eq!(warm.outstanding, 0, "all buffers returned after warm-up");

    // Steady state: zero pool growth across many more mixed bursts.
    for round in 4..40u64 {
        let mut batch = fill_mixed_burst(&pool, scenario, mac, round * BURST as u64);
        let out = p.process_batch(&mut batch);
        // While outcomes are alive, their frames hold pool buffers.
        assert!(pool.stats().outstanding > 0);
        drop(out);
        let now = pool.stats();
        assert_eq!(
            now.allocated, warm.allocated,
            "round {round}: pool grew in steady state"
        );
        assert_eq!(now.outstanding, 0, "round {round}: buffer leaked");
        assert_eq!(now.free, now.allocated, "round {round}");
    }
    let end = pool.stats();
    assert!(
        end.reused > end.allocated,
        "steady state reuses, not allocates"
    );
    assert_eq!(end.recycled, end.allocated + end.reused);
}

#[test]
fn buffers_come_back_on_drop_punt_and_redirect_individually() {
    let scenario = Scenario::gateway();
    let mut p = LinuxFpPlatform::new(scenario);
    let mac = p.dut_mac();
    let pool = BufferPool::new();

    type Fill<'a> = Box<dyn Fn(&mut Vec<u8>) + 'a>;
    let cases: [(&str, Fill<'_>); 3] = [
        (
            "redirect",
            Box::new(|buf: &mut Vec<u8>| scenario.fill_frame(mac, 1, 60, buf)),
        ),
        (
            "drop",
            Box::new(move |buf: &mut Vec<u8>| {
                buf.extend_from_slice(&builder::udp_packet(
                    SOURCE_MAC,
                    mac,
                    Ipv4Addr::new(10, 0, 1, 100),
                    scenario.blocked_dst(3),
                    1001,
                    4791,
                    b"blocked",
                ))
            }),
        ),
        (
            "punt",
            Box::new(move |buf: &mut Vec<u8>| {
                buf.extend_from_slice(&builder::udp_packet(
                    SOURCE_MAC,
                    mac,
                    Ipv4Addr::new(10, 0, 1, 100),
                    Ipv4Addr::new(10, 0, 1, 1),
                    1002,
                    4791,
                    b"for the host",
                ))
            }),
        ),
    ];
    for (name, fill) in &cases {
        let mut buf = pool.acquire();
        fill(&mut buf);
        let mut batch = Batch::with_capacity(1);
        batch.push(buf);
        assert_eq!(pool.stats().outstanding, 1, "{name}: buffer in flight");
        let out = p.process_batch(&mut batch);
        drop(out);
        assert_eq!(pool.stats().outstanding, 0, "{name}: buffer not returned");
    }
    // Three exit paths, one buffer: perfect reuse after the first.
    assert_eq!(pool.stats().allocated, 1);
    assert_eq!(pool.stats().reused, 2);
}

#[test]
fn pool_occupancy_and_batch_size_land_in_telemetry() {
    use linuxfp::ebpf::hook::HookPoint;
    use linuxfp::netstack::stack::wire_pool_telemetry;
    use linuxfp::telemetry::Registry;

    let scenario = Scenario::router();
    let registry = Registry::new();
    let mut p = LinuxFpPlatform::with_telemetry(scenario, HookPoint::Xdp, registry.clone());
    let mac = p.dut_mac();
    let pool = BufferPool::new();
    wire_pool_telemetry(&pool, &registry);

    for round in 0..3u64 {
        let mut batch = Batch::with_capacity(8);
        for j in 0..8u64 {
            let mut buf = pool.acquire();
            scenario.fill_frame(mac, round * 8 + j, 60, &mut buf);
            batch.push(buf);
        }
        let _ = p.process_batch(&mut batch);
    }
    // Gauges reflect the drained steady state: everything back on the
    // free list, nothing outstanding.
    let gauge = |state: &str| {
        registry
            .gauge("linuxfp_pool_buffers", &[("state", state)])
            .get()
    };
    assert_eq!(gauge("outstanding"), 0);
    assert!(gauge("allocated") > 0);
    assert_eq!(gauge("free"), gauge("allocated"));

    // The kernel's burst-size histogram saw three bursts of eight.
    let h = registry.histogram(
        "linuxfp_batch_size",
        &[],
        linuxfp::telemetry::Scale::Identity,
    );
    assert_eq!(h.count(), 3);
    assert_eq!(h.sum(), 24);
}

#[test]
fn measurement_loop_itself_is_allocation_free_in_steady_state() {
    // service_time_ns_batched uses its own internal pool; verify via an
    // external pool driving the same pattern that the combination of
    // fill_frame + recycling never grows past the burst working set.
    let scenario = Scenario::router();
    let mut p = LinuxFpPlatform::new(scenario);
    let mac = p.dut_mac();
    let pool = BufferPool::new();
    for round in 0..32u64 {
        let mut batch = Batch::with_capacity(8);
        for j in 0..8u64 {
            let mut buf = pool.acquire();
            scenario.fill_frame(mac, round * 8 + j, 60, &mut buf);
            batch.push(buf);
        }
        let _ = p.process_batch(&mut batch);
    }
    let s = pool.stats();
    assert!(
        s.allocated <= 8,
        "working set is one burst, allocated {}",
        s.allocated
    );
    assert_eq!(s.outstanding, 0);
}
