//! The microflow verdict cache must be invisible in everything except
//! cost: byte-identical outputs with the cache on and off across all
//! six accelerated subsystems, immediate re-resolution when the state a
//! cached verdict was derived from changes, and no buffer-pool growth on
//! the hit path.

use linuxfp::netstack::ipvs::Scheduler;
use linuxfp::packet::ipv4::IpProto;
use linuxfp::packet::{builder, Batch, BufferPool};
use linuxfp::platforms::scenario::SOURCE_MAC;
use linuxfp::prelude::*;
use std::net::Ipv4Addr;

const VIP: Ipv4Addr = Ipv4Addr::new(10, 96, 0, 10);

/// Flattened observable behavior of a sequence of outcomes.
#[derive(Debug, PartialEq)]
struct Observed {
    transmissions: Vec<(u32, Vec<u8>)>,
    deliveries: Vec<(u32, Vec<u8>)>,
    drops: Vec<String>,
}

fn observe<'a>(
    outcomes: impl Iterator<Item = &'a linuxfp::netstack::stack::RxOutcome>,
) -> Observed {
    let mut obs = Observed {
        transmissions: Vec::new(),
        deliveries: Vec::new(),
        drops: Vec::new(),
    };
    for out in outcomes {
        for (dev, frame) in out.transmissions() {
            obs.transmissions.push((dev.as_u32(), frame.to_vec()));
        }
        for (dev, frame) in out.deliveries() {
            obs.deliveries.push((dev.as_u32(), frame.to_vec()));
        }
        for reason in out.drops() {
            obs.drops.push(reason.to_string());
        }
    }
    obs
}

/// Drives the same repeated-flow workload through a cache-on and a
/// cache-off platform and requires byte-identical observable behavior.
/// Returns the number of packets the cache-on side served from the
/// cache, so callers can assert the comparison was not vacuous.
fn assert_cache_transparent(
    mut on: LinuxFpPlatform,
    mut off: LinuxFpPlatform,
    frames: &[Vec<u8>],
    what: &str,
) -> u64 {
    off.kernel_mut()
        .sysctl_set("net.linuxfp.flow_cache", 0)
        .expect("flow_cache sysctl exists");
    let mut hits = 0u64;
    let out_on: Vec<_> = frames
        .iter()
        .map(|f| {
            let out = on.process(f.clone());
            hits += out.cost.stage_count("flowcache_hit");
            out
        })
        .collect();
    let out_off: Vec<_> = frames.iter().map(|f| off.process(f.clone())).collect();
    assert_eq!(
        observe(out_on.iter()),
        observe(out_off.iter()),
        "{what}: cache on vs off"
    );
    // The off side must never touch the cache.
    for out in &out_off {
        assert_eq!(out.cost.stage_count("flowcache_hit"), 0, "{what}");
    }
    hits
}

/// Each flow repeated `rounds` times, interleaved — the steady-flow shape
/// the cache exists for.
fn repeat_interleaved(flows: &[Vec<u8>], rounds: usize) -> Vec<Vec<u8>> {
    let mut frames = Vec::with_capacity(flows.len() * rounds);
    for _ in 0..rounds {
        frames.extend(flows.iter().cloned());
    }
    frames
}

#[test]
fn router_forwarding_identical_with_cache_on_and_off() {
    let s = Scenario::router();
    let on = LinuxFpPlatform::new(s);
    let off = LinuxFpPlatform::new(s);
    let mac = on.dut_mac();
    let flows: Vec<_> = (0..5u64).map(|i| s.frame(mac, i, 60)).collect();
    let hits = assert_cache_transparent(on, off, &repeat_interleaved(&flows, 4), "router");
    assert!(hits >= 10, "router repeats must hit the cache: {hits}");
}

#[test]
fn gateway_filtering_identical_with_cache_on_and_off() {
    // Forwarded and blacklisted flows: cached PASS-through rewrites and
    // cached fast-path drops.
    let s = Scenario::gateway();
    let on = LinuxFpPlatform::new(s);
    let off = LinuxFpPlatform::new(s);
    let mac = on.dut_mac();
    let mut flows: Vec<_> = (0..3u64).map(|i| s.frame(mac, i, 60)).collect();
    for r in 0..3u32 {
        flows.push(builder::udp_packet(
            SOURCE_MAC,
            mac,
            Ipv4Addr::new(10, 0, 1, 100),
            s.blocked_dst(r),
            3000 + r as u16,
            4791,
            b"blocked",
        ));
    }
    let hits = assert_cache_transparent(on, off, &repeat_interleaved(&flows, 4), "gateway");
    assert!(hits >= 12, "gateway repeats must hit the cache: {hits}");
}

#[test]
fn l7_policy_verdicts_identical_with_cache_on_and_off() {
    // Allowed requests (pinned Allow verdicts become cacheable), denied
    // requests (cached fast-path drops), and unparseable garbage that
    // punts on every appearance — all byte-identical with the cache off.
    let s = Scenario::api_gateway();
    let on = LinuxFpPlatform::new(s);
    let off = LinuxFpPlatform::new(s);
    let mac = on.dut_mac();
    let mut flows: Vec<_> = (0..4u64)
        .map(|i| s.http_frame(mac, i, &Scenario::http_request(i)))
        .collect();
    for i in 4..6u64 {
        flows.push(s.http_frame(mac, i, &s.blocked_http_request(i)));
    }
    flows.push(s.http_frame(mac, 6, &[0x16, 0x03, 0x01, 0x00, 0x2a]));
    let hits = assert_cache_transparent(on, off, &repeat_interleaved(&flows, 4), "l7");
    assert!(hits >= 8, "l7 pinned repeats must hit the cache: {hits}");
}

#[test]
fn nat_masquerade_identical_with_cache_on_and_off() {
    let s = Scenario::nat_gateway();
    let on = LinuxFpPlatform::new(s);
    let off = LinuxFpPlatform::new(s);
    let mac = on.dut_mac();
    let flows: Vec<_> = (0..4u64)
        .map(|i| s.client_frame(mac, 2 + (i % 2) as u8, i / 2, 60))
        .collect();
    let hits = assert_cache_transparent(on, off, &repeat_interleaved(&flows, 4), "nat");
    assert!(hits >= 8, "nat repeats must hit the cache: {hits}");
}

#[test]
fn ipvs_scheduling_identical_with_cache_on_and_off() {
    let s = Scenario::router();
    let mut on = LinuxFpPlatform::new(s);
    let mut off = LinuxFpPlatform::new(s);
    let mac = on.dut_mac();
    for p in [&mut on, &mut off] {
        let k = p.kernel_mut();
        let down = k.ifindex("ens1f1").unwrap();
        let now = k.now();
        assert!(k.ipvsadm_add_service(VIP, 53, IpProto::Udp, Scheduler::RoundRobin));
        for i in 0..3u8 {
            let backend = Ipv4Addr::new(10, 0, 2, 10 + i);
            k.neigh
                .learn(backend, MacAddr::from_index(0xB0 + u64::from(i)), down, now);
            assert!(k.ipvsadm_add_backend(VIP, 53, IpProto::Udp, backend, 53));
        }
        p.poll_controller();
    }
    let flows: Vec<_> = (0..4u16)
        .map(|i| {
            builder::udp_packet(
                SOURCE_MAC,
                mac,
                Ipv4Addr::new(10, 0, 1, 100),
                VIP,
                41000 + i,
                53,
                b"query",
            )
        })
        .collect();
    let hits = assert_cache_transparent(on, off, &repeat_interleaved(&flows, 5), "ipvs");
    assert!(hits >= 8, "ipvs repeats must hit the cache: {hits}");
}

#[test]
fn bridge_forwarding_identical_with_cache_on_and_off() {
    let build = || {
        let mut k = Kernel::new(66);
        let p1 = k.add_physical("p1").unwrap();
        let p2 = k.add_physical("p2").unwrap();
        let br = k.add_bridge("br0").unwrap();
        k.brctl_addif(br, p1).unwrap();
        k.brctl_addif(br, p2).unwrap();
        for d in [p1, p2, br] {
            k.ip_link_set_up(d).unwrap();
        }
        let (ctrl, report) = Controller::attach(&mut k, ControllerConfig::default()).unwrap();
        assert!(report.changed);
        (k, ctrl, p1, p2)
    };
    let (mut k_on, _c1, p1_on, p2_on) = build();
    let (mut k_off, _c2, p1_off, p2_off) = build();
    k_off.sysctl_set("net.linuxfp.flow_cache", 0).unwrap();

    let host_a = MacAddr::from_index(0xA1);
    let host_b = MacAddr::from_index(0xB1);
    let a_to_b = |sport: u16| {
        builder::udp_packet(
            host_a,
            host_b,
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(1, 1, 1, 2),
            sport,
            2000,
            b"bridged",
        )
    };
    let b_to_a = builder::udp_packet(
        host_b,
        host_a,
        Ipv4Addr::new(1, 1, 1, 2),
        Ipv4Addr::new(1, 1, 1, 1),
        2000,
        1000,
        b"learn",
    );
    // Learn both hosts on both kernels, then repeat flows.
    for (k, p1, p2) in [(&mut k_on, p1_on, p2_on), (&mut k_off, p1_off, p2_off)] {
        k.receive(p1, a_to_b(1000));
        k.receive(p2, b_to_a.clone());
    }
    let mut hits = 0u64;
    for round in 0..4 {
        for sport in 0..3u16 {
            let out_on = k_on.receive(p1_on, a_to_b(1000 + sport));
            let out_off = k_off.receive(p1_off, a_to_b(1000 + sport));
            hits += out_on.cost.stage_count("flowcache_hit");
            assert_eq!(out_off.cost.stage_count("flowcache_hit"), 0);
            assert_eq!(
                observe(std::iter::once(&out_on)),
                observe(std::iter::once(&out_off)),
                "bridge round {round} sport {sport}"
            );
        }
    }
    assert!(hits >= 6, "bridge repeats must hit the cache: {hits}");
}

#[test]
fn route_change_re_resolves_cached_flows() {
    // A cached verdict must die with the state it was derived from: after
    // the flow's route moves to a different next hop, the very next
    // packet takes the new path — byte-identical to a plain Linux kernel
    // given the same mutation.
    let s = Scenario::router();
    let mut lfp = LinuxFpPlatform::new(s);
    let mut linux = LinuxPlatform::new(s);
    let mac = lfp.dut_mac();
    let frame = s.frame(mac, 7, 60);

    // Warm the flow until it is served from the cache.
    let before = lfp.process(frame.clone());
    let _ = linux.process(frame.clone());
    for _ in 0..2 {
        let out = lfp.process(frame.clone());
        let _ = linux.process(frame.clone());
        assert_eq!(observe(std::iter::once(&out)).transmissions.len(), 1);
    }
    let cached = lfp.process(frame.clone());
    let _ = linux.process(frame.clone());
    assert_eq!(cached.cost.stage_count("flowcache_hit"), 1, "flow cached");
    assert_eq!(
        observe(std::iter::once(&cached)),
        observe(std::iter::once(&before)),
        "cached repeat must match the interpreted packet"
    );

    // Move the flow's /24 to a hairpin next hop on the upstream side.
    let new_hop = Ipv4Addr::new(10, 0, 1, 50);
    let new_mac = MacAddr::from_index(0x5A);
    let prefix = Scenario::route_prefix(7);
    for k in [lfp.kernel_mut(), linux.kernel_mut()] {
        let up = k.ifindex("ens1f0").unwrap();
        let now = k.now();
        k.neigh.learn(new_hop, new_mac, up, now);
        k.ip_route_del(prefix, None).unwrap();
        k.ip_route_add(prefix, Some(new_hop), None).unwrap();
    }
    lfp.poll_controller();

    let after_f = lfp.process(frame.clone());
    let after_l = linux.process(frame);
    let got = observe(std::iter::once(&after_f));
    assert_eq!(
        got,
        observe(std::iter::once(&after_l)),
        "re-resolved output must match plain Linux"
    );
    // And it really took the new path, not the cached one.
    assert_eq!(got.transmissions.len(), 1);
    assert_eq!(got.transmissions[0].1[0..6], new_mac.octets(), "new hop");
    assert_ne!(
        got.transmissions[0],
        observe(std::iter::once(&cached)).transmissions[0],
        "stale cached output must not survive the route change"
    );
}

#[test]
fn cache_hits_never_grow_the_buffer_pool() {
    let s = Scenario::router();
    let mut lfp = LinuxFpPlatform::new(s);
    let mac = lfp.dut_mac();
    let up = lfp.kernel_mut().ifindex("ens1f0").unwrap();
    let pool = BufferPool::new();
    let inject_round = |lfp: &mut LinuxFpPlatform| -> u64 {
        let mut batch = Batch::with_capacity(8);
        for i in 0..8u64 {
            let mut buf = pool.acquire();
            s.fill_frame(mac, i, 60, &mut buf);
            batch.push(buf);
        }
        let out = lfp.kernel_mut().inject_batch(up, &mut batch);
        out.outcomes
            .iter()
            .map(|o| o.cost.stage_count("flowcache_hit"))
            .sum()
    };
    // Warm: record the 8 flows and fill the pool's working set.
    for _ in 0..2 {
        inject_round(&mut lfp);
    }
    let warm = pool.stats().allocated;
    let mut hits = 0u64;
    for _ in 0..20 {
        hits += inject_round(&mut lfp);
    }
    assert_eq!(hits, 160, "steady rounds must be all cache hits");
    assert_eq!(
        pool.stats().allocated,
        warm,
        "cache hits must recycle buffers, not allocate"
    );
}
