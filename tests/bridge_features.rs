//! End-to-end bridge feature coverage through the full LinuxFP stack:
//! VLAN filtering and STP port states on the synthesized fast path must
//! match slow-path semantics exactly.

use linuxfp::netstack::bridge::StpState;
use linuxfp::netstack::stack::Effect;
use linuxfp::packet::{builder, EthernetFrame, VlanTag};
use linuxfp::prelude::*;
use std::net::Ipv4Addr;

fn vlan_bridge(seed: u64) -> (Kernel, Vec<IfIndex>, IfIndex) {
    let mut k = Kernel::new(seed);
    let p1 = k.add_physical("p1").unwrap();
    let p2 = k.add_physical("p2").unwrap();
    let p3 = k.add_physical("p3").unwrap();
    let br = k.add_bridge("br0").unwrap();
    for p in [p1, p2, p3] {
        k.brctl_addif(br, p).unwrap();
    }
    for d in [p1, p2, p3, br] {
        k.ip_link_set_up(d).unwrap();
    }
    k.bridge_set_vlan_filtering(br, true).unwrap();
    {
        let bridge = k.bridge_mut(br).unwrap();
        // p1 and p2 are in VLAN 10; p3 only in VLAN 20.
        bridge.port_mut(p1).unwrap().vlans = vec![10];
        bridge.port_mut(p1).unwrap().pvid = 10;
        bridge.port_mut(p2).unwrap().vlans = vec![10, 20];
        bridge.port_mut(p2).unwrap().pvid = 10;
        bridge.port_mut(p3).unwrap().vlans = vec![20];
        bridge.port_mut(p3).unwrap().pvid = 20;
    }
    (k, vec![p1, p2, p3], br)
}

fn tagged_frame(src: u64, dst: u64, vid: u16) -> Vec<u8> {
    let mut f = builder::udp_packet(
        MacAddr::from_index(0x100 + src),
        MacAddr::from_index(0x100 + dst),
        Ipv4Addr::new(192, 168, 0, src as u8 + 1),
        Ipv4Addr::new(192, 168, 0, dst as u8 + 1),
        1000,
        2000,
        b"vlan",
    );
    EthernetFrame::push_vlan(&mut f, VlanTag { vid, pcp: 0 });
    f
}

fn untagged_frame(src: u64, dst: u64) -> Vec<u8> {
    builder::udp_packet(
        MacAddr::from_index(0x100 + src),
        MacAddr::from_index(0x100 + dst),
        Ipv4Addr::new(192, 168, 0, src as u8 + 1),
        Ipv4Addr::new(192, 168, 0, dst as u8 + 1),
        1000,
        2000,
        b"vlan",
    )
}

fn observable(effects: &[Effect]) -> Vec<String> {
    let mut v: Vec<String> = effects
        .iter()
        .filter_map(|e| match e {
            Effect::Transmit { dev, frame } => Some(format!("tx:{}:{:x?}", dev.as_u32(), frame)),
            Effect::Deliver { dev, frame } => Some(format!("rx:{}:{:x?}", dev.as_u32(), frame)),
            Effect::Drop { .. } => None,
        })
        .collect();
    v.sort();
    v
}

#[test]
fn vlan_bridge_fast_path_equals_slow_path() {
    let (mut plain, pp, _) = vlan_bridge(71);
    let (mut fast, pf, _) = vlan_bridge(71);
    let (_ctrl, report) = Controller::attach(&mut fast, ControllerConfig::default()).unwrap();
    assert_eq!(report.installed.len(), 3);

    // A conversation mixing tagged/untagged frames across VLANs; every
    // packet must behave identically on both kernels.
    let cases: Vec<(usize, Vec<u8>)> = vec![
        (0, untagged_frame(1, 2)),   // learn h1 in vlan 10 (pvid)
        (1, untagged_frame(2, 1)),   // learn h2, unicast back
        (0, untagged_frame(1, 2)),   // now a pure fast-path candidate
        (1, tagged_frame(2, 3, 20)), // vlan 20: reaches only p3
        (2, tagged_frame(3, 2, 20)), // reply in vlan 20
        (1, tagged_frame(2, 3, 20)), // unicast in vlan 20
        (0, tagged_frame(1, 3, 20)), // p1 not a member of 20: drop
        (0, tagged_frame(1, 2, 10)), // explicit tag matching pvid
        (2, untagged_frame(3, 1)),   // pvid 20 on p3: h1 unknown there
    ];
    for (i, (port, frame)) in cases.into_iter().enumerate() {
        let out_p = plain.receive(pp[port], frame.clone());
        let out_f = fast.receive(pf[port], frame);
        assert_eq!(
            observable(&out_p.effects),
            observable(&out_f.effects),
            "case {i} diverged"
        );
    }
}

#[test]
fn vlan_unicast_uses_the_fast_path_with_tag_intact() {
    let (mut fast, p, _) = vlan_bridge(72);
    let (_ctrl, _) = Controller::attach(&mut fast, ControllerConfig::default()).unwrap();
    // Learn both hosts in VLAN 20 (tagged via p2 and p3).
    fast.receive(p[1], tagged_frame(2, 3, 20));
    fast.receive(p[2], tagged_frame(3, 2, 20));
    // Unicast now takes the fast path, forwarding the tagged frame as-is.
    let out = fast.receive(p[1], tagged_frame(2, 3, 20));
    assert_eq!(
        out.cost.stage_count("skb_alloc"),
        0,
        "should be fast-pathed"
    );
    let tx = out.transmissions();
    assert_eq!(tx.len(), 1);
    assert_eq!(tx[0].0, p[2]);
    let eth = EthernetFrame::parse(tx[0].1).unwrap();
    assert_eq!(eth.vlan, Some(VlanTag { vid: 20, pcp: 0 }));
}

#[test]
fn blocked_ingress_port_is_never_fast_forwarded() {
    let (mut fast, p, br) = vlan_bridge(73);
    let (_ctrl, _) = Controller::attach(&mut fast, ControllerConfig::default()).unwrap();
    // Warm the FDB while ports are forwarding.
    fast.receive(p[0], untagged_frame(1, 2));
    fast.receive(p[1], untagged_frame(2, 1));
    let out = fast.receive(p[0], untagged_frame(1, 2));
    assert_eq!(out.transmissions().len(), 1, "baseline fast forward");
    assert_eq!(out.cost.stage_count("skb_alloc"), 0);

    // STP blocks p1 (slow-path protocol decision). The fast path must
    // stop forwarding its traffic immediately — no controller round
    // trip, because the helper consults live kernel state.
    fast.bridge_mut(br)
        .unwrap()
        .port_mut(p[0])
        .unwrap()
        .stp_state = StpState::Blocking;
    let out = fast.receive(p[0], untagged_frame(1, 2));
    assert!(
        out.transmissions().is_empty(),
        "blocked port's traffic forwarded: {:?}",
        out.effects
    );

    // Egress blocking is honored too.
    fast.bridge_mut(br)
        .unwrap()
        .port_mut(p[0])
        .unwrap()
        .stp_state = StpState::Forwarding;
    fast.bridge_mut(br)
        .unwrap()
        .port_mut(p[1])
        .unwrap()
        .stp_state = StpState::Blocking;
    let out = fast.receive(p[0], untagged_frame(1, 2));
    assert!(out.transmissions().is_empty(), "{:?}", out.effects);
}

#[test]
fn stp_state_changes_equivalent_on_both_paths() {
    let (mut plain, pp, brp) = vlan_bridge(74);
    let (mut fast, pf, brf) = vlan_bridge(74);
    let (_ctrl, _) = Controller::attach(&mut fast, ControllerConfig::default()).unwrap();
    for k_ports_br in [(&mut plain, &pp, brp), (&mut fast, &pf, brf)] {
        let (k, ports, br) = k_ports_br;
        k.receive(ports[0], untagged_frame(1, 2));
        k.receive(ports[1], untagged_frame(2, 1));
        k.bridge_mut(br)
            .unwrap()
            .port_mut(ports[0])
            .unwrap()
            .stp_state = StpState::Learning;
    }
    let out_p = plain.receive(pp[0], untagged_frame(1, 2));
    let out_f = fast.receive(pf[0], untagged_frame(1, 2));
    assert_eq!(observable(&out_p.effects), observable(&out_f.effects));
    assert!(
        out_p.transmissions().is_empty(),
        "learning port must not forward"
    );
}
