//! The AF_XDP extension (paper §VIII: "a special type of socket, called
//! AF_XDP, that allows sending raw packets directly from the XDP layer
//! to user space"): packet capture and selective user-space steering
//! without any `sk_buff`.

use linuxfp::core::fpm::CustomFpm;
use linuxfp::ebpf::asm::Asm;
use linuxfp::ebpf::hook::{attach, HookPoint};
use linuxfp::ebpf::insn::{Action, HelperId, JmpCond, MemSize};
use linuxfp::ebpf::maps::MapStore;
use linuxfp::ebpf::program::{LoadedProgram, Program};
use linuxfp::packet::{builder, ArpPacket, EthernetFrame};
use linuxfp::prelude::*;
use std::net::Ipv4Addr;

fn router_kernel() -> (Kernel, IfIndex, IfIndex) {
    let mut k = Kernel::new(91);
    let eth0 = k.add_physical("eth0").unwrap();
    let eth1 = k.add_physical("eth1").unwrap();
    k.ip_addr_add(eth0, "10.0.1.1/24".parse::<IfAddr>().unwrap())
        .unwrap();
    k.ip_addr_add(eth1, "10.0.2.1/24".parse::<IfAddr>().unwrap())
        .unwrap();
    k.ip_link_set_up(eth0).unwrap();
    k.ip_link_set_up(eth1).unwrap();
    k.sysctl_set("net.ipv4.ip_forward", 1).unwrap();
    k.ip_route_add(
        "10.10.0.0/16".parse::<Prefix>().unwrap(),
        Some("10.0.2.2".parse().unwrap()),
        None,
    )
    .unwrap();
    let now = k.now();
    k.neigh.learn(
        "10.0.2.2".parse().unwrap(),
        MacAddr::from_index(0xBEEF),
        eth1,
        now,
    );
    (k, eth0, eth1)
}

fn udp_frame(k: &Kernel, eth0: IfIndex) -> Vec<u8> {
    builder::udp_packet(
        MacAddr::from_index(0xAAAA),
        k.device(eth0).unwrap().mac,
        Ipv4Addr::new(10, 0, 1, 100),
        Ipv4Addr::new(10, 10, 3, 7),
        1,
        2,
        b"data",
    )
}

fn arp_frame(k: &Kernel, eth0: IfIndex) -> Vec<u8> {
    let req = ArpPacket::request(
        MacAddr::from_index(0xAAAA),
        Ipv4Addr::new(10, 0, 1, 100),
        Ipv4Addr::new(10, 0, 1, 1),
    );
    builder::arp_frame(
        &req,
        MacAddr::from_index(0xAAAA),
        k.device(eth0).unwrap().mac,
    )
}

/// A hand-written steering program: ARP frames go to the AF_XDP socket
/// (a user-space ARP responder, say); everything else passes to Linux.
fn arp_steer_program(xsk_map: u32) -> LoadedProgram {
    let mut a = Asm::new();
    // r6 = data, r7 = end; guard the ethertype bytes.
    a.mov_reg(8, 1);
    a.load(MemSize::DW, 6, 1, 0x00);
    a.load(MemSize::DW, 7, 1, 0x08);
    a.mov_reg(2, 6);
    a.alu_imm(linuxfp::ebpf::insn::AluOp::Add, 2, 14);
    a.jmp_reg(JmpCond::Gt, 2, 7, "pass");
    a.load(MemSize::H, 2, 6, 12);
    a.jmp_imm(JmpCond::Ne, 2, 0x0608, "pass"); // ETH_P_ARP byte-swapped
    a.mov_imm(1, i64::from(xsk_map));
    a.mov_imm(2, 0);
    a.call(HelperId::XskRedirect);
    a.exit(); // r0 = REDIRECT(+to_user) on success, ABORTED(=drop) if full
    a.label("pass");
    a.mov_imm(0, Action::Pass.code() as i64);
    a.exit();
    LoadedProgram::load(Program::new("arp_steer", a.finish().unwrap())).unwrap()
}

#[test]
fn arp_frames_steered_to_user_space() {
    let (mut k, eth0, _) = router_kernel();
    let maps = MapStore::new();
    let (xsk_map, socket) = maps.create_xsk(64);
    attach(
        &mut k,
        eth0,
        HookPoint::Xdp,
        arp_steer_program(xsk_map.0),
        maps,
    )
    .unwrap();

    // ARP lands on the socket, never in the kernel's ARP handler.
    let frame = arp_frame(&k, eth0);
    let out = k.receive(eth0, frame.clone());
    assert_eq!(out.deliveries().len(), 1, "{:?}", out.effects);
    assert_eq!(out.cost.stage_count("skb_alloc"), 0, "no sk_buff for XSK");
    assert_eq!(socket.recv().as_deref(), Some(frame.as_slice()));
    assert_eq!(socket.recv(), None);
    // The kernel did NOT answer the ARP (user space owns it now).
    assert!(out.transmissions().is_empty());

    // Ordinary traffic passes through to the slow path untouched.
    let out = k.receive(eth0, udp_frame(&k, eth0));
    assert_eq!(out.transmissions().len(), 1);
    assert_eq!(socket.pending(), 0);
}

#[test]
fn full_ring_drops_instead_of_blocking() {
    let (mut k, eth0, _) = router_kernel();
    let maps = MapStore::new();
    let (xsk_map, socket) = maps.create_xsk(2);
    attach(
        &mut k,
        eth0,
        HookPoint::Xdp,
        arp_steer_program(xsk_map.0),
        maps,
    )
    .unwrap();
    for _ in 0..4 {
        let f = arp_frame(&k, eth0);
        k.receive(eth0, f);
    }
    // Ring capacity 2: the rest were dropped (ABORTED -> drop), exactly
    // like an overrun XSK ring.
    assert_eq!(socket.pending(), 2);
    assert_eq!(*k.drop_counts.get("xdp drop").unwrap_or(&0), 2);
}

#[test]
fn mirror_module_captures_without_changing_verdicts() {
    // tcpdump-style: the mirror custom module copies every fast-path
    // packet to user space while forwarding proceeds unchanged.
    let (mut k, eth0, eth1) = router_kernel();
    let (mut ctrl, _) = Controller::attach(&mut k, ControllerConfig::default()).unwrap();
    let (xsk_map, socket) = ctrl.deployer().maps().create_xsk(64);
    ctrl.install_custom_module(&mut k, CustomFpm::mirror_to_user("mirror", xsk_map.0))
        .unwrap();

    for _ in 0..3 {
        let out = k.receive(eth0, udp_frame(&k, eth0));
        assert_eq!(out.transmissions().len(), 1, "{:?}", out.effects);
        assert_eq!(out.transmissions()[0].0, eth1);
        assert_eq!(out.cost.stage_count("skb_alloc"), 0);
        assert_eq!(out.cost.stage_count("xsk_push"), 1);
    }
    assert_eq!(socket.pending(), 3);
    // The captured frames are pre-rewrite (as seen at the XDP layer).
    let captured = socket.recv().unwrap();
    let eth = EthernetFrame::parse(&captured).unwrap();
    assert_eq!(eth.src, MacAddr::from_index(0xAAAA), "captured at ingress");
}
