//! Seeded property test for the masquerade port allocator.
//!
//! Drives `Nat` + `Conntrack` through randomized interleavings of the
//! four ways a masquerade port changes hands — fresh-flow allocation in
//! POSTROUTING, lazy expiry inside `nat_lookup`, eager `nat_gc`, and
//! flow-map capacity eviction tearing down companion NAT bindings — and
//! checks the conservation law after every single operation:
//!
//! ```text
//! ports_in_use == live bindings   (no leak, no phantom)
//! allocated    == live + freed    (every port accounted for)
//! ```
//!
//! plus: the allocator never hands out a port that is still owned by a
//! live binding (no double-allocation), and every freed port was
//! actually live (no double-free). A tiny port range, flow-table cap,
//! and NAT-table cap force reuse, exhaustion, and both eviction paths.

use linuxfp::netstack::conntrack::{Conntrack, NatTuple};
use linuxfp::netstack::device::IfIndex;
use linuxfp::netstack::nat::{Nat, NatChain, NatRule, NatTarget, PostOutcome};
use linuxfp::packet::ipv4::IpProto;
use linuxfp::sim::{Nanos, SimRng};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

const GW: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
const SERVER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 9);
const PORT_LO: u16 = 100;
const PORT_HI: u16 = 119; // 20 ports: exhaustion is easy to hit.

fn masq_world() -> (Nat, Conntrack) {
    let mut nat = Nat::new();
    assert!(nat.set_port_range(PORT_LO, PORT_HI));
    assert!(nat.append(
        NatChain::Postrouting,
        NatRule {
            src: Some("192.168.1.0/24".parse().unwrap()),
            ..NatRule::any(NatTarget::Masquerade)
        }
    ));
    let mut ct = Conntrack::new();
    ct.max_entries = 12; // small: flow churn evicts NAT'd flows
    ct.max_nat_entries = 16; // 8 pairs: install-time eviction fires too
    (nat, ct)
}

fn client_tuple(rng_ip: u8, sport: u16) -> NatTuple {
    NatTuple::new(
        Ipv4Addr::new(192, 168, 1, 10 + rng_ip % 4),
        sport,
        SERVER,
        53,
        17,
    )
}

/// Book-keeping mirror of the allocator: which ports live bindings own.
#[derive(Default)]
struct Ledger {
    /// (flow tuple, owned port) for every live masquerade binding.
    flows: Vec<(NatTuple, u16)>,
    /// Ports owned by live bindings.
    live: BTreeSet<u16>,
    allocated: u64,
    freed: u64,
}

impl Ledger {
    fn allocate(&mut self, tuple: NatTuple, port: u16) {
        assert!(
            self.live.insert(port),
            "allocator double-allocated port {port} (still owned by a live binding)"
        );
        self.flows.push((tuple, port));
        self.allocated += 1;
    }

    /// Drains the conntrack freed list into the allocator, checking each
    /// freed port was actually live, then verifies conservation.
    fn drain_and_check(&mut self, nat: &mut Nat, ct: &mut Conntrack) {
        for port in ct.take_freed_nat_ports() {
            assert!(
                self.live.remove(&port),
                "freed port {port} was not owned by any live binding (double-free or phantom)"
            );
            self.flows.retain(|(_, p)| *p != port);
            self.freed += 1;
            nat.release_port(port);
        }
        assert_eq!(
            nat.ports_in_use(),
            self.live.len(),
            "allocator in-use count diverged from live bindings"
        );
        assert_eq!(
            self.allocated,
            self.live.len() as u64 + self.freed,
            "ports leaked: allocated != live + freed"
        );
    }
}

/// Runs one full randomized interleaving for a seed.
fn run_interleaving(seed: u64) {
    let (mut nat, mut ct) = masq_world();
    let mut rng = SimRng::seed(seed);
    let mut ledger = Ledger::default();
    let mut now = Nanos::ZERO;
    let mut next_sport: u16 = 1000;
    let mut next_decoy: u16 = 1;

    for _ in 0..400 {
        match rng.uniform_u64(100) {
            // Fresh (or re-fresh after expiry) masquerade flow.
            0..=34 => {
                let tuple = if ledger.flows.is_empty() || rng.uniform_u64(4) > 0 {
                    next_sport += 1;
                    client_tuple(rng.uniform_u64(4) as u8, next_sport)
                } else {
                    // Re-send on an existing flow: must reuse its binding,
                    // not the allocator.
                    let i = rng.uniform_u64(ledger.flows.len() as u64) as usize;
                    ledger.flows[i].0
                };
                let ctx = nat.prerouting(&mut ct, tuple, IfIndex(1), now);
                let fresh = ctx.is_none_or(|c| c.fresh);
                let out = nat.postrouting(&mut ct, ctx, tuple, IfIndex(2), Some(GW), now);
                match out {
                    PostOutcome::Snat { src, sport } if fresh => {
                        assert_eq!(src, GW);
                        assert!((PORT_LO..=PORT_HI).contains(&sport));
                        // Track the flow so flow-map eviction can later
                        // tear the binding down.
                        ct.track(
                            tuple.src,
                            tuple.sport,
                            tuple.dst,
                            tuple.dport,
                            IpProto::Udp,
                            now,
                        );
                        ledger.allocate(tuple, sport);
                    }
                    PostOutcome::Snat { sport, .. } => {
                        // Established binding: the port must already be live.
                        assert!(
                            ledger.live.contains(&sport),
                            "established flow used a dead port"
                        );
                    }
                    PostOutcome::ExhaustedDrop => {
                        assert_eq!(
                            nat.ports_in_use(),
                            usize::from(PORT_HI - PORT_LO) + 1,
                            "exhaustion reported with ports still free"
                        );
                    }
                    PostOutcome::None => panic!("masquerade rule must claim in-prefix flows"),
                }
            }
            // Refresh a random live flow (exercises lazy expiry when a
            // big time jump happened since the last touch).
            35..=59 if !ledger.flows.is_empty() => {
                let i = rng.uniform_u64(ledger.flows.len() as u64) as usize;
                let (tuple, _) = ledger.flows[i];
                let _ = nat.prerouting(&mut ct, tuple, IfIndex(1), now);
            }
            // Decoy flow: occupies the flow table without NAT, pushing
            // NAT'd flows toward capacity eviction.
            60..=69 => {
                next_decoy += 1;
                let src = Ipv4Addr::new(10, 9, (next_decoy >> 8) as u8, next_decoy as u8);
                ct.track(src, next_decoy, SERVER, 80, IpProto::Tcp, now);
            }
            // Small time advance (bindings stay alive).
            70..=79 => now += Nanos::from_secs(1 + rng.uniform_u64(29)),
            // Big time advance (past established_timeout: everything
            // currently idle is expiry-eligible).
            80..=84 => now += Nanos::from_secs(601 + rng.uniform_u64(300)),
            // Eager GC paths.
            85..=92 => {
                ct.nat_gc(now);
            }
            _ => {
                ct.gc(now);
            }
        }
        ledger.drain_and_check(&mut nat, &mut ct);
    }

    // Cool-down: advance past every timeout and collect. Everything must
    // drain back to the allocator.
    now += Nanos::from_secs(2000);
    ct.nat_gc(now);
    ct.gc(now);
    ledger.live.clear();
    ledger.flows.clear();
    for port in ct.take_freed_nat_ports() {
        ledger.freed += 1;
        nat.release_port(port);
    }
    assert_eq!(
        nat.ports_in_use(),
        0,
        "ports leaked past full expiry (seed {seed})"
    );
    assert_eq!(
        ledger.allocated, ledger.freed,
        "lifetime conservation failed (seed {seed}): allocated != freed"
    );
    assert_eq!(ct.nat_len(), 0, "NAT bindings survived full expiry");
}

#[test]
fn masquerade_ports_conserve_across_random_interleavings() {
    for seed in 0..64 {
        run_interleaving(seed);
    }
}

#[test]
fn interleavings_exercise_every_reclaim_path() {
    // The property above is vacuous if the random walk never hits the
    // interesting paths; check the union of a few seeds covers both
    // eviction flavors, exhaustion, and expiry-driven reuse.
    let mut flow_evictions = 0;
    let mut nat_evictions = 0;
    for seed in 0..8 {
        let (mut nat, mut ct) = masq_world();
        let mut rng = SimRng::seed(0xC0FFEE ^ seed);
        let mut now = Nanos::ZERO;
        for sport in 0..200u16 {
            let tuple = client_tuple(rng.uniform_u64(4) as u8, 2000 + sport);
            let ctx = nat.prerouting(&mut ct, tuple, IfIndex(1), now);
            let out = nat.postrouting(&mut ct, ctx, tuple, IfIndex(2), Some(GW), now);
            if matches!(out, PostOutcome::Snat { .. }) {
                ct.track(
                    tuple.src,
                    tuple.sport,
                    tuple.dst,
                    tuple.dport,
                    IpProto::Udp,
                    now,
                );
            }
            if rng.uniform_u64(10) == 0 {
                now += Nanos::from_secs(700);
                ct.nat_gc(now);
            }
            for port in ct.take_freed_nat_ports() {
                nat.release_port(port);
            }
            now += Nanos::from_secs(1);
        }
        flow_evictions += ct.evictions();
        nat_evictions += ct.nat_evictions();
    }
    assert!(flow_evictions > 0, "walk never hit flow-map eviction");
    assert!(nat_evictions > 0, "walk never hit NAT-table eviction");
}
