//! Cross-crate integration tests through the facade: the full
//! introspect → synthesize → deploy → process loop, swap-under-traffic,
//! and capability fallback.

use linuxfp::netstack::netfilter::{ChainHook, IptRule};
use linuxfp::packet::builder;
use linuxfp::prelude::*;

fn router_kernel() -> (Kernel, IfIndex, IfIndex) {
    let mut k = Kernel::new(31);
    let eth0 = k.add_physical("eth0").unwrap();
    let eth1 = k.add_physical("eth1").unwrap();
    k.ip_addr_add(eth0, "10.0.1.1/24".parse::<IfAddr>().unwrap())
        .unwrap();
    k.ip_addr_add(eth1, "10.0.2.1/24".parse::<IfAddr>().unwrap())
        .unwrap();
    k.ip_link_set_up(eth0).unwrap();
    k.ip_link_set_up(eth1).unwrap();
    k.sysctl_set("net.ipv4.ip_forward", 1).unwrap();
    k.ip_route_add(
        "10.10.0.0/16".parse::<Prefix>().unwrap(),
        Some("10.0.2.2".parse().unwrap()),
        None,
    )
    .unwrap();
    let now = k.now();
    k.neigh.learn(
        "10.0.2.2".parse().unwrap(),
        MacAddr::from_index(0xBEEF),
        eth1,
        now,
    );
    (k, eth0, eth1)
}

fn test_frame(k: &Kernel, eth0: IfIndex, last_octet: u8) -> Vec<u8> {
    builder::udp_packet(
        MacAddr::from_index(0xAAAA),
        k.device(eth0).unwrap().mac,
        "10.0.1.100".parse().unwrap(),
        std::net::Ipv4Addr::new(10, 10, 3, last_octet),
        1000,
        2000,
        b"e2e",
    )
}

#[test]
fn full_loop_accelerates_and_stays_correct() {
    let (mut k, eth0, eth1) = router_kernel();
    let (mut ctrl, report) = Controller::attach(&mut k, ControllerConfig::default()).unwrap();
    assert!(report.changed);

    // Accelerated forwarding.
    let out = k.receive(eth0, test_frame(&k, eth0, 1));
    assert_eq!(out.transmissions().len(), 1);
    assert_eq!(out.transmissions()[0].0, eth1);
    assert_eq!(out.cost.stage_count("skb_alloc"), 0);

    // Add a rule mid-flight: the data path swaps atomically; traffic to
    // the blocked prefix drops, everything else still flows.
    k.iptables_append(
        ChainHook::Forward,
        IptRule::drop_dst("10.10.3.7/32".parse::<Prefix>().unwrap()),
    );
    let swap = ctrl.poll(&mut k).unwrap().unwrap();
    assert!(swap.changed);
    let blocked = k.receive(eth0, test_frame(&k, eth0, 7));
    assert!(blocked.transmissions().is_empty());
    let allowed = k.receive(eth0, test_frame(&k, eth0, 8));
    assert_eq!(allowed.transmissions().len(), 1);
    assert_eq!(allowed.cost.stage_count("helper_ipt_base"), 1);
}

#[test]
fn swap_under_traffic_never_loses_service() {
    // Interleave packets with continuous reconfiguration: every packet
    // must either be forwarded or intentionally dropped by policy —
    // never black-holed by a mid-swap window.
    let (mut k, eth0, _) = router_kernel();
    let (mut ctrl, _) = Controller::attach(&mut k, ControllerConfig::default()).unwrap();
    for round in 0..32u32 {
        // Reconfigure: alternately add and remove a route (changing the
        // graph and forcing resynthesis + swap).
        let extra: Prefix = "172.16.0.0/16".parse().unwrap();
        if round % 2 == 0 {
            k.ip_route_add(extra, Some("10.0.2.2".parse().unwrap()), None)
                .unwrap();
        } else {
            k.ip_route_del(extra, None).unwrap();
        }
        ctrl.poll(&mut k).unwrap().unwrap();
        let out = k.receive(eth0, test_frame(&k, eth0, (round % 200) as u8));
        assert_eq!(
            out.transmissions().len(),
            1,
            "round {round}: packet lost during swap"
        );
    }
}

#[test]
fn stock_kernel_falls_back_to_slow_path_but_stays_correct() {
    let (mut k, eth0, _) = router_kernel();
    k.iptables_append(
        ChainHook::Forward,
        IptRule::drop_dst("10.10.3.7/32".parse::<Prefix>().unwrap()),
    );
    // A kernel without bpf_ipt_lookup: the filter stays in the slow
    // path; the router FPM is still synthesized (bpf_fib_lookup is
    // upstream).
    let cfg = ControllerConfig {
        hook: HookPoint::Xdp,
        capabilities: Capabilities::stock_kernel(),
        ..ControllerConfig::default()
    };
    let (_ctrl, report) = Controller::attach(&mut k, cfg).unwrap();
    assert!(report.changed);
    // Blocked traffic... the router FPM would forward it, bypassing the
    // filter! The topology manager must therefore NOT have deployed a
    // router-only pipeline when FORWARD rules exist without filter
    // support. Verify the verdict is still DROP.
    let out = k.receive(eth0, test_frame(&k, eth0, 7));
    assert!(
        out.transmissions().is_empty(),
        "firewall bypassed on stock kernel: {:?}",
        out.effects
    );
}

#[test]
fn facade_prelude_covers_the_workflow() {
    // Compile-time check that the prelude exposes what a user needs.
    let scenario = Scenario::router();
    let mut lfp = LinuxFpPlatform::new(scenario);
    let mac = lfp.dut_mac();
    let service = lfp.service_time_ns(&mut |i, buf| scenario.fill_frame(mac, i, 60, buf));
    assert!(service > 100.0 && service < 2000.0);
    let cost = CostModel::calibrated();
    assert!(cost.line_rate_gbps > 0.0);
    let mut s = Summary::new();
    s.record(1.0);
    assert_eq!(s.count(), 1);
    let _ = Nanos::from_secs(1);
}
