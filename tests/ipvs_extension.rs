//! The ipvs load-balancing extension (paper §VIII future work, Table I
//! row 4): scheduling stays in the slow path, pinned flows are rewritten
//! on the fast path via the conntrack helper — and both paths always
//! produce identical packets.

use linuxfp::netstack::ipvs::Scheduler;
use linuxfp::packet::builder;
use linuxfp::packet::ipv4::IpProto;
use linuxfp::packet::{EthernetFrame, Ipv4Header, UdpHeader};
use linuxfp::prelude::*;
use std::net::Ipv4Addr;

const VIP: Ipv4Addr = Ipv4Addr::new(10, 96, 0, 10);

fn lb_kernel() -> (Kernel, IfIndex, IfIndex) {
    let mut k = Kernel::new(47);
    let eth0 = k.add_physical("eth0").unwrap();
    let eth1 = k.add_physical("eth1").unwrap();
    k.ip_addr_add(eth0, "10.0.1.1/24".parse::<IfAddr>().unwrap())
        .unwrap();
    k.ip_addr_add(eth1, "10.0.2.1/24".parse::<IfAddr>().unwrap())
        .unwrap();
    k.ip_link_set_up(eth0).unwrap();
    k.ip_link_set_up(eth1).unwrap();
    k.sysctl_set("net.ipv4.ip_forward", 1).unwrap();
    // Backends live on the eth1 subnet with warm ARP.
    let now = k.now();
    for i in 0..3u8 {
        let backend = Ipv4Addr::new(10, 0, 2, 10 + i);
        k.neigh
            .learn(backend, MacAddr::from_index(0xB0 + u64::from(i)), eth1, now);
    }
    // ipvsadm-equivalent configuration.
    assert!(k.ipvsadm_add_service(VIP, 53, IpProto::Udp, Scheduler::RoundRobin));
    for i in 0..3u8 {
        assert!(k.ipvsadm_add_backend(VIP, 53, IpProto::Udp, Ipv4Addr::new(10, 0, 2, 10 + i), 53));
    }
    (k, eth0, eth1)
}

fn vip_query(k: &Kernel, eth0: IfIndex, sport: u16) -> Vec<u8> {
    builder::udp_packet(
        MacAddr::from_index(0xAAAA),
        k.device(eth0).unwrap().mac,
        Ipv4Addr::new(10, 0, 1, 100),
        VIP,
        sport,
        53,
        b"query",
    )
}

fn tx_backend(out: &linuxfp::netstack::RxOutcome) -> (Ipv4Addr, u16) {
    let tx = out.transmissions();
    assert_eq!(
        tx.len(),
        1,
        "expected one forwarded packet: {:?}",
        out.effects
    );
    let eth = EthernetFrame::parse(tx[0].1).unwrap();
    let ip = Ipv4Header::parse(&tx[0].1[eth.payload_offset..]).unwrap();
    assert!(ip.verify_checksum(&tx[0].1[eth.payload_offset..]));
    let udp = UdpHeader::parse(&tx[0].1[eth.payload_offset + ip.header_len..]).unwrap();
    (ip.dst, udp.dst_port)
}

#[test]
fn slow_path_schedules_round_robin() {
    let (mut k, eth0, _) = lb_kernel();
    let mut backends = Vec::new();
    for sport in 0..6u16 {
        let out = k.receive(eth0, vip_query(&k, eth0, 40000 + sport));
        let (ip, port) = tx_backend(&out);
        assert_eq!(port, 53);
        backends.push(ip.octets()[3]);
    }
    assert_eq!(backends, vec![10, 11, 12, 10, 11, 12]);
}

#[test]
fn fast_path_takes_over_pinned_flows() {
    let (mut k, eth0, _) = lb_kernel();
    let (_ctrl, report) = Controller::attach(&mut k, ControllerConfig::default()).unwrap();
    assert!(report.changed);
    // FPMs: ipvs + router per interface.
    assert!(report.fpm_count >= 4, "fpms {}", report.fpm_count);

    // First packet of the flow: conntrack miss on the fast path, punted;
    // the slow path schedules backend .10 and pins it.
    let out = k.receive(eth0, vip_query(&k, eth0, 40000));
    let (first_backend, _) = tx_backend(&out);
    assert_eq!(
        out.cost.stage_count("skb_alloc"),
        1,
        "first packet is slow-path"
    );
    assert_eq!(out.cost.stage_count("ipvs_sched"), 1);

    // Subsequent packets: rewritten and forwarded entirely on the XDP
    // fast path, same backend. The first repeat interprets the program
    // (the pinning bumped the coherence generation); later repeats hit
    // the microflow verdict cache, skipping even the bpf_ct_lookup.
    for i in 0..4 {
        let out = k.receive(eth0, vip_query(&k, eth0, 40000));
        let (backend, port) = tx_backend(&out);
        assert_eq!(backend, first_backend, "affinity broken on fast path");
        assert_eq!(port, 53);
        assert_eq!(
            out.cost.stage_count("skb_alloc"),
            0,
            "pinned flow must be fast"
        );
        if i == 0 {
            assert_eq!(out.cost.stage_count("conntrack"), 1); // bpf_ct_lookup
        } else {
            assert_eq!(out.cost.stage_count("conntrack"), 0, "cached repeat");
            assert_eq!(out.cost.stage_count("flowcache_hit"), 1);
        }
        assert_eq!(
            out.cost.stage_count("ipvs_sched"),
            0,
            "no slow-path scheduling"
        );
    }
}

#[test]
fn both_paths_produce_identical_packets() {
    let (mut plain, p_eth0, _) = lb_kernel();
    let (mut fast, f_eth0, _) = lb_kernel();
    let (_ctrl, _) = Controller::attach(&mut fast, ControllerConfig::default()).unwrap();
    // Same deterministic packet sequence through both kernels: mixed
    // flows so scheduling, pinning and rewriting all engage.
    for i in 0..24u16 {
        let sport = 40000 + (i % 5);
        let out_p = plain.receive(p_eth0, vip_query(&plain, p_eth0, sport));
        let out_f = fast.receive(f_eth0, vip_query(&fast, f_eth0, sport));
        assert_eq!(
            out_p.transmissions(),
            out_f.transmissions(),
            "packet {i} diverged between paths"
        );
    }
}

#[test]
fn tcp_to_vip_stays_on_slow_path_but_balances() {
    let (mut k, eth0, _) = lb_kernel();
    assert!(k.ipvsadm_add_service(VIP, 80, IpProto::Tcp, Scheduler::RoundRobin));
    assert!(k.ipvsadm_add_backend(VIP, 80, IpProto::Tcp, Ipv4Addr::new(10, 0, 2, 10), 8080));
    let (_ctrl, _) = Controller::attach(&mut k, ControllerConfig::default()).unwrap();
    let frame = builder::tcp_packet(
        MacAddr::from_index(0xAAAA),
        k.device(eth0).unwrap().mac,
        Ipv4Addr::new(10, 0, 1, 100),
        VIP,
        50000,
        80,
        linuxfp::packet::tcp::TcpFlags {
            syn: true,
            ..Default::default()
        },
        b"",
    );
    // Twice: both times slow path (TCP is not accelerated), both times
    // to the pinned backend with the rewritten port.
    for _ in 0..2 {
        let out = k.receive(eth0, frame.clone());
        assert_eq!(out.cost.stage_count("skb_alloc"), 1);
        let tx = out.transmissions();
        assert_eq!(tx.len(), 1);
        let eth = EthernetFrame::parse(tx[0].1).unwrap();
        let ip = Ipv4Header::parse(&tx[0].1[eth.payload_offset..]).unwrap();
        assert_eq!(ip.dst, Ipv4Addr::new(10, 0, 2, 10));
        let tcp = linuxfp::packet::TcpHeader::parse(&tx[0].1[eth.payload_offset + ip.header_len..])
            .unwrap();
        assert_eq!(tcp.dst_port, 8080);
    }
}

#[test]
fn least_conn_scheduler_via_standard_api() {
    let (mut k, eth0, _) = lb_kernel();
    assert!(k.ipvsadm_add_service(VIP, 5353, IpProto::Udp, Scheduler::LeastConn));
    for i in 0..2u8 {
        assert!(k.ipvsadm_add_backend(
            VIP,
            5353,
            IpProto::Udp,
            Ipv4Addr::new(10, 0, 2, 10 + i),
            5353
        ));
    }
    let mut seen = std::collections::HashSet::new();
    for sport in 0..2u16 {
        let frame = builder::udp_packet(
            MacAddr::from_index(0xAAAA),
            k.device(eth0).unwrap().mac,
            Ipv4Addr::new(10, 0, 1, 100),
            VIP,
            41000 + sport,
            5353,
            b"lc",
        );
        let out = k.receive(eth0, frame);
        seen.insert(tx_backend(&out).0);
    }
    assert_eq!(seen.len(), 2, "least-conn should spread new flows");
}

#[test]
fn without_ct_helper_no_fast_path_but_lb_still_works() {
    let (mut k, eth0, _) = lb_kernel();
    let cfg = ControllerConfig {
        hook: HookPoint::Xdp,
        capabilities: Capabilities::full().without(linuxfp::ebpf::HelperId::CtLookup),
        ..ControllerConfig::default()
    };
    let (ctrl, _) = Controller::attach(&mut k, cfg).unwrap();
    // No fast path deployed (a router-only one would bypass the LB).
    assert!(ctrl.deployer().active_interfaces().is_empty());
    // But the service still works through the slow path.
    let out = k.receive(eth0, vip_query(&k, eth0, 40000));
    let (backend, _) = tx_backend(&out);
    assert_eq!(backend.octets()[3], 10);
}
