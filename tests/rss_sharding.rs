//! The sharded-datapath invariants: RSS steering determinism, per-flow
//! ordering across ragged bursts, the per-shard conservation ledger, and
//! — most load-bearing — byte-identical output at every shard count.
//!
//! The refactor's contract is that `net.linuxfp.rss_shards` changes
//! *costs* (per-shard virtual time, coherence charges) and *cache
//! partitioning*, never verdicts or emitted bytes. These tests enforce
//! that contract end-to-end across the accelerated subsystems.

use linuxfp::netstack::stack::rss;
use linuxfp::packet::{builder, Batch, MacAddr};
use linuxfp::prelude::*;
use std::net::Ipv4Addr;

/// Runs `frames` through a fresh LinuxFP platform at the given shard
/// count (injected in ragged bursts of 7) and returns every emitted
/// frame as `(device, bytes)` in emission order.
fn sharded_outputs(scenario: Scenario, shards: i64, frames: &[Vec<u8>]) -> Vec<(u32, Vec<u8>)> {
    let mut p = LinuxFpPlatform::new(scenario);
    p.kernel_mut()
        .sysctl_set("net.linuxfp.rss_shards", shards)
        .expect("rss_shards sysctl exists");
    let mut out = Vec::new();
    for chunk in frames.chunks(7) {
        let mut batch = Batch::new();
        for f in chunk {
            batch.push(f.clone());
        }
        let res = p.process_batch(&mut batch);
        for rx in &res.outcomes {
            for (dev, bytes) in rx.transmissions() {
                out.push((dev.as_u32(), bytes.to_vec()));
            }
        }
    }
    out
}

#[test]
fn same_flow_and_its_reply_always_hash_to_one_shard() {
    // Pure-function invariant, across many flows and every shard count:
    // a 5-tuple and its reverse land on the same shard, regardless of
    // the L2 addressing (the difftest kernels have different MACs).
    let m1 = MacAddr::new([2, 0, 0, 0, 0, 0x11]);
    let m2 = MacAddr::new([2, 0, 0, 0, 0, 0x22]);
    for shards in [2u32, 4, 8, 16] {
        for i in 0..64u16 {
            let src = Ipv4Addr::new(10, 0, 1, (i % 23) as u8 + 1);
            let dst = Ipv4Addr::new(10, 10, (i % 50) as u8, 7);
            let fwd = builder::udp_packet(m1, m2, src, dst, 1024 + i, 4791, b"fwd");
            let rev = builder::udp_packet(m2, m1, dst, src, 4791, 1024 + i, b"rev");
            let s = rss::shard_for(&fwd, shards);
            assert!(s < shards);
            assert_eq!(
                s,
                rss::shard_for(&rev, shards),
                "flow {i} and its reply split across shards ({shards} shards)"
            );
        }
    }
}

#[test]
fn steering_is_deterministic_through_the_kernel() {
    // Integration-level steering: inject one flow (and its repeats)
    // through a sharded kernel with telemetry on — exactly one shard's
    // packet counter may advance.
    let s = Scenario::router();
    let registry = Registry::new();
    let mut p = LinuxFpPlatform::with_telemetry(s, HookPoint::Xdp, registry.clone());
    let mac = p.dut_mac();
    p.kernel_mut()
        .sysctl_set("net.linuxfp.rss_shards", 8)
        .unwrap();
    let mut batch = Batch::new();
    for _ in 0..12 {
        batch.push(s.frame(mac, 3, 60));
    }
    p.process_batch(&mut batch);
    let series = registry.counter_series("linuxfp_shard_packets_total");
    let active: Vec<_> = series.iter().filter(|(_, v)| *v > 0).collect();
    assert_eq!(
        active.len(),
        1,
        "one flow must live on one shard: {series:?}"
    );
    assert_eq!(active[0].1, 12);
}

#[test]
fn ragged_bursts_preserve_per_flow_order() {
    // Eight flows tagged with per-flow sequence numbers in the payload,
    // interleaved and injected in ragged bursts over 8 shards: each
    // flow's packets must come out in sequence.
    let s = Scenario::router();
    let mut p = LinuxFpPlatform::new(s);
    let mac = p.dut_mac();
    p.kernel_mut()
        .sysctl_set("net.linuxfp.rss_shards", 8)
        .unwrap();
    let mut frames = Vec::new();
    for seq in 0..6u8 {
        for flow in 0..8u8 {
            frames.push(builder::udp_packet(
                linuxfp::platforms::scenario::SOURCE_MAC,
                mac,
                Ipv4Addr::new(10, 0, 1, 100),
                Ipv4Addr::new(10, 10, flow, 7),
                1024 + u16::from(flow),
                4791,
                &[flow, seq],
            ));
        }
    }
    let mut emitted: Vec<Vec<u8>> = Vec::new();
    for chunk in frames.chunks(5) {
        let mut batch = Batch::new();
        for f in chunk {
            batch.push(f.clone());
        }
        let res = p.process_batch(&mut batch);
        for rx in &res.outcomes {
            for (_, bytes) in rx.transmissions() {
                emitted.push(bytes.to_vec());
            }
        }
    }
    assert_eq!(emitted.len(), 48, "every frame forwarded");
    let mut next_seq = [0u8; 8];
    for frame in &emitted {
        let payload = &frame[frame.len() - 2..];
        let (flow, seq) = (payload[0] as usize, payload[1]);
        assert_eq!(
            seq, next_seq[flow],
            "flow {flow} reordered (got seq {seq}, expected {})",
            next_seq[flow]
        );
        next_seq[flow] += 1;
    }
    assert!(next_seq.iter().all(|&n| n == 6));
}

#[test]
fn per_shard_ledgers_sum_to_the_global_conservation_law() {
    // Every packet is decided exactly once, and on exactly one shard:
    // sum over shards of (hits + fallbacks) == global hits + fallbacks
    // == packets injected.
    let s = Scenario::gateway();
    let registry = Registry::new();
    let mut p = LinuxFpPlatform::with_telemetry(s, HookPoint::Xdp, registry.clone());
    let mac = p.dut_mac();
    p.kernel_mut()
        .sysctl_set("net.linuxfp.rss_shards", 4)
        .unwrap();
    let mut injected = 0u64;
    for round in 0..6u64 {
        let mut batch = Batch::new();
        for i in 0..11u64 {
            // A mix of routed flows and blacklisted ones (fast-path
            // drops), revisiting flows so the verdict cache hits too.
            if i % 3 == 2 {
                batch.push(builder::udp_packet(
                    linuxfp::platforms::scenario::SOURCE_MAC,
                    mac,
                    Ipv4Addr::new(10, 0, 1, 100),
                    s.blocked_dst(i as u32),
                    1024 + i as u16,
                    4791,
                    b"x",
                ));
            } else {
                batch.push(s.frame(mac, (round * 11 + i) % 7, 60));
            }
            injected += 1;
        }
        p.process_batch(&mut batch);
    }
    let shard_hits = registry.counter_total("linuxfp_shard_fp_hits_total");
    let shard_falls = registry.counter_total("linuxfp_shard_fallbacks_total");
    let hits = registry.counter_total("linuxfp_fp_hits_total");
    let falls = registry.counter_total("linuxfp_slowpath_fallbacks_total");
    assert_eq!(shard_hits, hits, "per-shard hits must sum to global");
    assert_eq!(shard_falls, falls, "per-shard fallbacks must sum to global");
    assert_eq!(
        hits + falls,
        injected,
        "conservation: every packet decided exactly once"
    );
    assert_eq!(
        registry.counter_total("linuxfp_packets_injected_total"),
        injected
    );
    // More than one shard actually carried traffic.
    let active = registry
        .counter_series("linuxfp_shard_packets_total")
        .into_iter()
        .filter(|(_, v)| *v > 0)
        .count();
    assert!(active > 1, "workload never spread across shards");
}

#[test]
fn sharded_output_is_byte_identical_across_subsystems() {
    // The tentpole equivalence: for every scenario preset (router, FIB;
    // gateway, netfilter; ipset gateway; NAT44; L7 API gateway), the
    // frames emitted at rss_shards=4 and rss_shards=8 are byte-identical
    // to rss_shards=1 — steering and coherence touch costs, not bytes.
    let presets: [(&str, Scenario); 5] = [
        ("router", Scenario::router()),
        ("gateway", Scenario::gateway()),
        ("gateway_ipset", Scenario::gateway_ipset()),
        ("nat_gateway", Scenario::nat_gateway()),
        ("api_gateway", Scenario::api_gateway()),
    ];
    for (name, s) in presets {
        let mac = LinuxFpPlatform::new(s).dut_mac();
        let mut frames: Vec<Vec<u8>> = Vec::new();
        for i in 0..40u64 {
            frames.push(match name {
                "nat_gateway" => s.client_frame(mac, 2 + (i % 3) as u8, i % 5, 60),
                "api_gateway" => match i % 4 {
                    0 | 1 => s.http_frame(mac, i, &Scenario::http_request(i)),
                    2 => s.http_frame(mac, i, &s.blocked_http_request(i)),
                    _ => s.http_frame(mac, i, b""),
                },
                // Blend blocked destinations into the filtering presets.
                _ if i % 5 == 4 => builder::udp_packet(
                    linuxfp::platforms::scenario::SOURCE_MAC,
                    mac,
                    Ipv4Addr::new(10, 0, 1, 100),
                    s.blocked_dst(i as u32),
                    1024 + i as u16,
                    4791,
                    b"x",
                ),
                _ => s.frame(mac, i % 9, 60),
            });
        }
        let base = sharded_outputs(s, 1, &frames);
        for shards in [4, 8] {
            let got = sharded_outputs(s, shards, &frames);
            assert_eq!(
                base, got,
                "{name}: rss_shards={shards} output diverged from single-core"
            );
        }
        assert!(
            !base.is_empty(),
            "{name}: scenario emitted nothing — equivalence check is vacuous"
        );
    }
}

#[test]
fn sharded_difftest_seeds_stay_transparent() {
    // The fuzzer's randomized subsystem blends (bridge FDB, IPVS, NAT,
    // churn mid-stream) under a sharded datapath: linux-vs-linuxfp
    // transparency must hold with both kernels steering over 4 shards.
    for seed in 0..12u64 {
        let scenario = linuxfp_difftest::generate(seed);
        let out = linuxfp_difftest::run_with_shards(&scenario, 4);
        assert!(
            out.divergence.is_none(),
            "seed {seed} diverged under rss_shards=4: {:?}",
            out.divergence
        );
    }
}
