//! Slow-path ICMP error generation (paper Table I: ICMP and corner
//! cases stay in Linux): TTL expiry produces Time Exceeded, missing
//! routes produce Destination Unreachable — identically whether or not
//! fast paths are attached (which always punt those packets).

use linuxfp::packet::{builder, EthernetFrame, IcmpHeader, IcmpType, Ipv4Header};
use linuxfp::prelude::*;
use std::net::Ipv4Addr;

fn router(seed: u64) -> (Kernel, IfIndex, IfIndex) {
    let mut k = Kernel::new(seed);
    let eth0 = k.add_physical("eth0").unwrap();
    let eth1 = k.add_physical("eth1").unwrap();
    k.ip_addr_add(eth0, "10.0.1.1/24".parse::<IfAddr>().unwrap())
        .unwrap();
    k.ip_addr_add(eth1, "10.0.2.1/24".parse::<IfAddr>().unwrap())
        .unwrap();
    k.ip_link_set_up(eth0).unwrap();
    k.ip_link_set_up(eth1).unwrap();
    k.sysctl_set("net.ipv4.ip_forward", 1).unwrap();
    k.ip_route_add(
        "10.10.0.0/16".parse::<Prefix>().unwrap(),
        Some("10.0.2.2".parse().unwrap()),
        None,
    )
    .unwrap();
    let now = k.now();
    k.neigh.learn(
        "10.0.2.2".parse().unwrap(),
        MacAddr::from_index(0xBEEF),
        eth1,
        now,
    );
    // The traffic source is resolved so error packets route back warm.
    k.neigh.learn(
        "10.0.1.100".parse().unwrap(),
        MacAddr::from_index(0xAAAA),
        eth0,
        now,
    );
    (k, eth0, eth1)
}

fn frame_with_ttl(k: &Kernel, eth0: IfIndex, dst: Ipv4Addr, ttl: u8) -> Vec<u8> {
    let mut f = builder::udp_packet(
        MacAddr::from_index(0xAAAA),
        k.device(eth0).unwrap().mac,
        Ipv4Addr::new(10, 0, 1, 100),
        dst,
        33434,
        33434,
        b"probe",
    );
    let ip = Ipv4Header::parse(&f[14..]).unwrap();
    Ipv4Header::write(
        &mut f[14..],
        ip.src,
        ip.dst,
        ip.proto,
        ttl,
        ip.id,
        ip.total_len,
        false,
    );
    f
}

fn parse_icmp_error(frame: &[u8]) -> (IcmpType, Ipv4Addr, Ipv4Addr) {
    let eth = EthernetFrame::parse(frame).unwrap();
    let ip = Ipv4Header::parse(&frame[eth.payload_offset..]).unwrap();
    assert!(ip.verify_checksum(&frame[eth.payload_offset..]));
    let icmp = IcmpHeader::parse(&frame[eth.payload_offset + ip.header_len..]).unwrap();
    (icmp.icmp_type, ip.src, ip.dst)
}

#[test]
fn ttl_expiry_generates_time_exceeded() {
    let (mut k, eth0, _) = router(81);
    let out = k.receive(
        eth0,
        frame_with_ttl(&k, eth0, Ipv4Addr::new(10, 10, 3, 7), 1),
    );
    assert_eq!(out.drops(), vec!["ttl exceeded"]);
    let tx = out.transmissions();
    assert_eq!(tx.len(), 1, "ICMP error expected: {:?}", out.effects);
    assert_eq!(tx[0].0, eth0, "error goes back toward the source");
    let (kind, src, dst) = parse_icmp_error(tx[0].1);
    assert_eq!(kind, IcmpType::TimeExceeded);
    assert_eq!(src, Ipv4Addr::new(10, 0, 1, 1), "router's ingress address");
    assert_eq!(dst, Ipv4Addr::new(10, 0, 1, 100));
    // The quoted original: IP header + 8 bytes (RFC 792).
    let eth = EthernetFrame::parse(tx[0].1).unwrap();
    let ip = Ipv4Header::parse(&tx[0].1[eth.payload_offset..]).unwrap();
    let quoted = &tx[0].1[eth.payload_offset + ip.header_len + 8..];
    let quoted_ip = Ipv4Header::parse(quoted).unwrap();
    assert_eq!(quoted_ip.dst, Ipv4Addr::new(10, 10, 3, 7));
}

#[test]
fn missing_route_generates_unreachable() {
    let (mut k, eth0, _) = router(82);
    let out = k.receive(
        eth0,
        frame_with_ttl(&k, eth0, Ipv4Addr::new(172, 16, 9, 9), 64),
    );
    assert_eq!(out.drops(), vec!["no route"]);
    let tx = out.transmissions();
    assert_eq!(tx.len(), 1);
    let (kind, _, dst) = parse_icmp_error(tx[0].1);
    assert_eq!(kind, IcmpType::DestUnreachable(0));
    assert_eq!(dst, Ipv4Addr::new(10, 0, 1, 100));
}

#[test]
fn no_error_about_an_icmp_error() {
    let (mut k, eth0, _) = router(83);
    // A Time Exceeded message transiting this router with TTL 1: the
    // router must NOT generate an error about it.
    let inner = IcmpHeader::build(IcmpType::TimeExceeded, 0, 0, &[0u8; 28]);
    let total_len = (20 + inner.len()) as u16;
    let mut f = vec![0u8; 14 + 20 + inner.len()];
    EthernetFrame::write(
        &mut f,
        k.device(eth0).unwrap().mac,
        MacAddr::from_index(0xAAAA),
        linuxfp::packet::EtherType::Ipv4,
    );
    // dst/src swapped builder-style by hand:
    Ipv4Header::write(
        &mut f[14..],
        Ipv4Addr::new(10, 0, 1, 100),
        Ipv4Addr::new(10, 10, 3, 7),
        linuxfp::packet::IpProto::Icmp,
        1, // expires here
        0,
        total_len,
        false,
    );
    f[14 + 20..].copy_from_slice(&inner);
    // Fix the eth dst to the router.
    let router_mac = k.device(eth0).unwrap().mac;
    EthernetFrame::rewrite_macs(&mut f, router_mac, MacAddr::from_index(0xAAAA));
    let out = k.receive(eth0, f);
    assert_eq!(out.drops(), vec!["ttl exceeded"]);
    assert!(out.transmissions().is_empty(), "{:?}", out.effects);
}

#[test]
fn fast_path_punts_and_slow_path_answers_identically() {
    let (mut plain, p0, _) = router(84);
    let (mut fast, f0, _) = router(84);
    let (_ctrl, _) = Controller::attach(&mut fast, ControllerConfig::default()).unwrap();
    for ttl in [1u8, 64] {
        for dst in [Ipv4Addr::new(10, 10, 3, 7), Ipv4Addr::new(172, 16, 0, 1)] {
            let out_p = plain.receive(p0, frame_with_ttl(&plain, p0, dst, ttl));
            let out_f = fast.receive(f0, frame_with_ttl(&fast, f0, dst, ttl));
            assert_eq!(
                out_p.transmissions(),
                out_f.transmissions(),
                "ttl={ttl} dst={dst} diverged"
            );
        }
    }
}

#[test]
fn traceroute_hops_reveal_the_path() {
    // A traceroute-style TTL sweep against a 2-hop route: TTL 1 expires
    // at this router (time exceeded from 10.0.1.1); TTL >= 2 is
    // forwarded toward the next hop on the fast path.
    let (mut k, eth0, eth1) = router(85);
    let (_ctrl, _) = Controller::attach(&mut k, ControllerConfig::default()).unwrap();

    let out = k.receive(
        eth0,
        frame_with_ttl(&k, eth0, Ipv4Addr::new(10, 10, 3, 7), 1),
    );
    let tx = out.transmissions();
    assert_eq!(tx.len(), 1);
    assert_eq!(tx[0].0, eth0);
    let (kind, src, _) = parse_icmp_error(tx[0].1);
    assert_eq!(
        (kind, src),
        (IcmpType::TimeExceeded, Ipv4Addr::new(10, 0, 1, 1))
    );
    assert_eq!(
        out.cost.stage_count("skb_alloc"),
        1,
        "corner case on slow path"
    );

    let out = k.receive(
        eth0,
        frame_with_ttl(&k, eth0, Ipv4Addr::new(10, 10, 3, 7), 2),
    );
    let tx = out.transmissions();
    assert_eq!(tx.len(), 1);
    assert_eq!(tx[0].0, eth1, "ttl=2 forwarded to the next hop");
    assert_eq!(
        out.cost.stage_count("skb_alloc"),
        0,
        "common case on fast path"
    );
    let eth = EthernetFrame::parse(tx[0].1).unwrap();
    let ip = Ipv4Header::parse(&tx[0].1[eth.payload_offset..]).unwrap();
    assert_eq!(ip.ttl, 1);
}
