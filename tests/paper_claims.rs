//! The paper's headline claims, asserted end-to-end through the facade.
//!
//! - §I / §VIII: "LinuxFP is 77% faster for forwarding with 53% lower
//!   latency" than Linux.
//! - Footnote 2: "LinuxFP actually sees a throughput improvement of 19%
//!   over Polycube".
//! - §VI-A2: "a speedup over Linux of 20% and latency reduction of 18%
//!   for pod-to-pod communication with an unmodified network plugin".
//! - §IV-B2: identical verdicts on both paths under all circumstances
//!   (spot-checked here; the exhaustive property tests live in
//!   `crates/core/tests/equivalence.rs`).

use linuxfp::k8s::{pod_rr, Cluster};
use linuxfp::prelude::*;
use linuxfp::traffic::netperf::{run_rr, RrConfig};
use linuxfp::traffic::pktgen;

#[test]
fn headline_forwarding_speedup_77_percent() {
    let s = Scenario::router();
    let mut linux = LinuxPlatform::new(s);
    let mac = linux.dut_mac();
    let linux_pps = pktgen::throughput_pps(&mut linux, s, mac, 1, 64).pps;
    let mut lfp = LinuxFpPlatform::new(s);
    let mac = lfp.dut_mac();
    let lfp_pps = pktgen::throughput_pps(&mut lfp, s, mac, 1, 64).pps;
    let speedup = lfp_pps / linux_pps;
    assert!(
        (1.65..1.90).contains(&speedup),
        "forwarding speedup {speedup:.3}, paper claims 1.77"
    );
}

#[test]
fn headline_latency_reduction_53_percent() {
    let s = Scenario::router();
    let mut linux = LinuxPlatform::new(s);
    let mac = linux.dut_mac();
    let linux_service = linux.service_time_ns(&mut |i, buf| s.fill_frame(mac, i, 60, buf));
    let mut lfp = LinuxFpPlatform::new(s);
    let mac = lfp.dut_mac();
    let lfp_service = lfp.service_time_ns(&mut |i, buf| s.fill_frame(mac, i, 60, buf));
    let linux_rtt = run_rr(&RrConfig::paper_default(
        linux_service,
        linux.traits().scheduling,
    ))
    .rtt_us
    .mean();
    let lfp_rtt = run_rr(&RrConfig::paper_default(
        lfp_service,
        lfp.traits().scheduling,
    ))
    .rtt_us
    .mean();
    let reduction = 1.0 - lfp_rtt / linux_rtt;
    assert!(
        (0.42..0.62).contains(&reduction),
        "latency reduction {reduction:.3}, paper claims 0.53 \
         (linux {linux_rtt:.1}us, linuxfp {lfp_rtt:.1}us)"
    );
}

#[test]
fn nineteen_percent_over_polycube() {
    let s = Scenario::router();
    let mut pcn = PolycubePlatform::new(s);
    let mac = pcn.dut_mac();
    let pcn_pps = pktgen::throughput_pps(&mut pcn, s, mac, 1, 64).pps;
    let mut lfp = LinuxFpPlatform::new(s);
    let mac = lfp.dut_mac();
    let lfp_pps = pktgen::throughput_pps(&mut lfp, s, mac, 1, 64).pps;
    let improvement = lfp_pps / pcn_pps;
    assert!(
        (1.05..1.35).contains(&improvement),
        "over Polycube {improvement:.3}, paper footnote 2 claims 1.19"
    );
}

#[test]
fn kubernetes_20_percent_throughput_18_percent_latency() {
    let mut plain = Cluster::new(3, false);
    let (a, b) = (plain.add_pod(0), plain.add_pod(0));
    let plain_rr = pod_rr(&mut plain, a, b, 2000, 41);

    let mut fast = Cluster::new(3, true);
    let (a, b) = (fast.add_pod(0), fast.add_pod(0));
    let fast_rr = pod_rr(&mut fast, a, b, 2000, 41);

    let throughput_gain = fast_rr.transactions_per_sec / plain_rr.transactions_per_sec;
    assert!(
        (1.12..1.33).contains(&throughput_gain),
        "pod throughput gain {throughput_gain:.3}, paper claims ~1.20"
    );
    let latency_cut = 1.0 - fast_rr.rtt_ms.clone().mean() / plain_rr.rtt_ms.clone().mean();
    assert!(
        (0.12..0.25).contains(&latency_cut),
        "pod latency cut {latency_cut:.3}, paper claims ~0.18"
    );
}

#[test]
fn core_model_validates_against_measured_shard_sweep() {
    // Figures 5 and 7 rest on `CoreModel::throughput_pps`, an analytic
    // near-linear curve. The sharded datapath now *measures* scaling
    // (per-shard virtual time; wall clock = slowest shard), so the
    // analytic model must agree with the measurement: within 15% over
    // the validated 1..=8 core range. (16 shards drifts past the band —
    // replicated per-queue fixed costs shrink faster than the analytic
    // contention term predicts — which is why the model is documented as
    // validated only to 8 cores.)
    let s = Scenario::router();
    let points = pktgen::sweep_rss_shards(s, &[1, 2, 4, 8], 16);
    let model = linuxfp::sim::CoreModel::new(&CostModel::calibrated());
    let base_service = points[0].wall_ns_per_pkt;
    for p in &points {
        let analytic = model.throughput_pps(base_service, p.shards);
        let err = (analytic - p.pps).abs() / p.pps;
        assert!(
            err < 0.15,
            "{} shards: analytic {:.0} vs measured {:.0} pps ({:+.1}% off)",
            p.shards,
            analytic,
            p.pps,
            (analytic - p.pps) / p.pps * 100.0
        );
    }
}

#[test]
fn transparency_no_linuxfp_specific_configuration_anywhere() {
    // The LinuxFP platform is constructed from the *same* scenario
    // description as the Linux baseline; the controller then derives
    // everything by introspection. Verify the synthesized graph mentions
    // exactly the subsystems the standard configuration implies.
    let s = Scenario::gateway_ipset();
    let lfp = LinuxFpPlatform::new(s);
    let graph = lfp.controller().graph();
    let text = linuxfp::json::to_string(graph);
    assert!(text.contains("\"router\""));
    assert!(text.contains("\"filter\""));
    assert!(text.contains("\"ipset\":true"));
    assert!(
        !text.contains("\"bridge\""),
        "no bridge configured, none synthesized"
    );
}

#[test]
fn both_paths_identical_spot_check() {
    let s = Scenario::gateway();
    let mut linux = LinuxPlatform::new(s);
    let mut lfp = LinuxFpPlatform::new(s);
    let mac = lfp.dut_mac();
    for i in 0..64u64 {
        let out_l = linux.process(s.frame(mac, i, 60));
        let out_f = lfp.process(s.frame(mac, i, 60));
        assert_eq!(
            out_l.transmissions(),
            out_f.transmissions(),
            "packet {i} diverged"
        );
    }
}
