//! Kubernetes ClusterIP services via ipvs (kube-proxy IPVS mode): the
//! two §VIII extensions composed — an unmodified "kube-proxy" installs
//! virtual services through `ipvsadm` on every node, and LinuxFP
//! accelerates pinned service flows transparently.

use linuxfp::k8s::{Cluster, PodRef};
use std::collections::HashSet;
use std::net::Ipv4Addr;

const VIP: Ipv4Addr = Ipv4Addr::new(10, 96, 0, 53);

fn cluster_with_service(accelerated: bool) -> (Cluster, PodRef, Vec<PodRef>) {
    let mut c = Cluster::new(2, accelerated);
    let client = c.add_pod(0);
    // Two backends on node 0, one on node 1.
    let backends = vec![c.add_pod(0), c.add_pod(0), c.add_pod(1)];
    c.add_service(VIP, 53, &backends);
    (c, client, backends)
}

#[test]
fn service_round_robins_across_nodes() {
    let (mut c, client, backends) = cluster_with_service(false);
    let mut seen = HashSet::new();
    for sport in 0..6u16 {
        let receiver = c
            .pod_send_to_service(client, VIP, 53, 42000 + sport, b"dns-query")
            .expect("service delivered");
        assert!(backends.contains(&receiver), "landed on {receiver:?}");
        seen.insert((receiver.node, receiver.pod));
    }
    assert_eq!(seen.len(), 3, "all backends exercised: {seen:?}");
}

#[test]
fn service_flows_are_pinned() {
    let (mut c, client, _) = cluster_with_service(false);
    let first = c
        .pod_send_to_service(client, VIP, 53, 42000, b"q")
        .expect("delivered");
    for _ in 0..4 {
        let again = c
            .pod_send_to_service(client, VIP, 53, 42000, b"q")
            .expect("delivered");
        assert_eq!(again, first, "affinity broken");
    }
}

#[test]
fn accelerated_cluster_balances_identically() {
    let (mut plain, pc, _) = cluster_with_service(false);
    let (mut fast, fc, _) = cluster_with_service(true);
    for sport in 0..8u16 {
        let a = plain.pod_send_to_service(pc, VIP, 53, 43000 + sport, b"q");
        let b = fast.pod_send_to_service(fc, VIP, 53, 43000 + sport, b"q");
        let a = a.expect("plain delivered");
        let b = b.expect("fast delivered");
        assert_eq!(
            (a.node, a.pod),
            (b.node, b.pod),
            "sport {sport}: same deterministic scheduling on both clusters"
        );
    }
}

#[test]
fn service_with_unknown_vip_is_not_delivered() {
    let (mut c, client, _) = cluster_with_service(false);
    let receiver = c.pod_send_to_service(client, Ipv4Addr::new(10, 96, 0, 99), 53, 1, b"q");
    assert!(receiver.is_none(), "unconfigured VIP must not resolve");
}

#[test]
fn pinned_service_flows_ride_the_fast_path() {
    // After the first (slow-path scheduled) packet, pod-to-VIP traffic is
    // rewritten and forwarded by the TC fast path on the pod's veth.
    let (mut c, client, _) = cluster_with_service(true);
    c.pod_send_to_service(client, VIP, 53, 44000, b"warm")
        .expect("delivered");
    // Measure the steady-state path: the node kernel must use the
    // conntrack helper (fast path) rather than the ipvs scheduler.
    let src = c.pod(client);
    let gw_mac = c.nodes[client.node]
        .kernel
        .device(c.nodes[client.node].net.cni0)
        .expect("exists")
        .mac;
    let frame =
        linuxfp::packet::builder::udp_packet(src.mac, gw_mac, src.ip, VIP, 44000, 53, b"steady");
    let out = c.nodes[client.node]
        .kernel
        .transmit_frame(src.pod_if, frame);
    assert_eq!(
        out.cost.stage_count("ipvs_sched"),
        0,
        "pinned flow must not re-schedule: {:?}",
        out.effects
    );
    assert!(
        out.cost.stage_count("conntrack") >= 1,
        "fast path consults the conntrack helper"
    );
    assert!(
        out.cost.stage_count("helper_fib_lookup") >= 1,
        "VIP flow handled by the synthesized pipeline"
    );
}
