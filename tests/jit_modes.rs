//! The compiled eBPF engine must be invisible in everything except
//! cost: with `net.linuxfp.jit` on (the default) and off, every
//! accelerated subsystem produces byte-identical outputs, the
//! conservation ledger balances in both modes, and the telemetry
//! counters attribute each program run to the engine that served it.

use linuxfp::packet::builder;
use linuxfp::platforms::scenario::SOURCE_MAC;
use linuxfp::prelude::*;
use std::net::Ipv4Addr;

/// Flattened observable behavior of a sequence of outcomes.
#[derive(Debug, PartialEq)]
struct Observed {
    transmissions: Vec<(u32, Vec<u8>)>,
    deliveries: Vec<(u32, Vec<u8>)>,
    drops: Vec<String>,
}

fn observe<'a>(
    outcomes: impl Iterator<Item = &'a linuxfp::netstack::stack::RxOutcome>,
) -> Observed {
    let mut obs = Observed {
        transmissions: Vec::new(),
        deliveries: Vec::new(),
        drops: Vec::new(),
    };
    for out in outcomes {
        for (dev, frame) in out.transmissions() {
            obs.transmissions.push((dev.as_u32(), frame.to_vec()));
        }
        for (dev, frame) in out.deliveries() {
            obs.deliveries.push((dev.as_u32(), frame.to_vec()));
        }
        for reason in out.drops() {
            obs.drops.push(reason.to_string());
        }
    }
    obs
}

/// Drives the same workload through a jit-on and a jit-off platform
/// (both with telemetry) and requires byte-identical observable
/// behavior plus a balanced fast-path/slow-path ledger in both modes.
/// Returns `(compiled_runs, interpreted_runs)` for vacuity checks.
fn assert_jit_transparent(s: Scenario, frames: &[Vec<u8>], what: &str) -> (u64, u64) {
    let reg_on = Registry::new();
    let reg_off = Registry::new();
    let mut on = LinuxFpPlatform::with_telemetry(s, HookPoint::Xdp, reg_on.clone());
    let mut off = LinuxFpPlatform::with_telemetry(s, HookPoint::Xdp, reg_off.clone());
    assert!(on.kernel_mut().jit_enabled(), "jit defaults on");
    off.kernel_mut()
        .sysctl_set("net.linuxfp.jit", 0)
        .expect("jit sysctl exists");
    assert!(!off.kernel_mut().jit_enabled());

    let out_on: Vec<_> = frames.iter().map(|f| on.process(f.clone())).collect();
    let out_off: Vec<_> = frames.iter().map(|f| off.process(f.clone())).collect();
    assert_eq!(
        observe(out_on.iter()),
        observe(out_off.iter()),
        "{what}: jit on vs off"
    );

    // Engine stage attribution is exclusive per mode.
    for out in &out_on {
        assert_eq!(out.cost.stage_count("ebpf_insn"), 0, "{what}: jit-on run");
    }
    for out in &out_off {
        assert_eq!(out.cost.stage_count("jit_insn"), 0, "{what}: jit-off run");
    }

    // Conservation ledger in both modes: every injected frame was
    // decided exactly once, by the fast path or the slow path.
    for (mode, reg) in [("jit-on", &reg_on), ("jit-off", &reg_off)] {
        let hits = reg.counter_total("linuxfp_fp_hits_total");
        let fallbacks = reg.counter_total("linuxfp_slowpath_fallbacks_total");
        let injected = reg.counter_total("linuxfp_packets_injected_total");
        assert_eq!(injected, frames.len() as u64, "{what} {mode}: injected");
        assert_eq!(
            hits + fallbacks,
            injected,
            "{what} {mode}: fp_hits + slowpath_fallbacks == packets_injected"
        );
    }

    // Engine counters: the on side only runs compiled programs, the off
    // side only the interpreter.
    let compiled = reg_on.counter_total("linuxfp_jit_compiled_total");
    assert_eq!(
        reg_on.counter_total("linuxfp_jit_fallback_total"),
        0,
        "{what}"
    );
    let interpreted = reg_off.counter_total("linuxfp_jit_fallback_total");
    assert_eq!(
        reg_off.counter_total("linuxfp_jit_compiled_total"),
        0,
        "{what}"
    );
    (compiled, interpreted)
}

#[test]
fn router_forwarding_identical_jit_on_and_off() {
    let s = Scenario::router();
    let mac = LinuxFpPlatform::new(s).dut_mac();
    let mut frames = Vec::new();
    for round in 0..4usize {
        for i in 0..5u64 {
            frames.push(s.frame(mac, i, 60 + round));
        }
    }
    let (compiled, interpreted) = assert_jit_transparent(s, &frames, "router");
    assert!(compiled > 0, "jit-on side must run compiled programs");
    assert!(interpreted > 0, "jit-off side must run the interpreter");
}

#[test]
fn gateway_filtering_identical_jit_on_and_off() {
    let s = Scenario::gateway();
    let mac = LinuxFpPlatform::new(s).dut_mac();
    let mut frames: Vec<_> = (0..3u64).map(|i| s.frame(mac, i, 60)).collect();
    for r in 0..3u32 {
        frames.push(builder::udp_packet(
            SOURCE_MAC,
            mac,
            Ipv4Addr::new(10, 0, 1, 100),
            s.blocked_dst(r),
            3000 + r as u16,
            4791,
            b"blocked",
        ));
    }
    let (compiled, interpreted) = assert_jit_transparent(s, &frames, "gateway");
    assert!(compiled > 0 && interpreted > 0);
}

#[test]
fn l7_policy_verdicts_identical_jit_on_and_off() {
    let s = Scenario::api_gateway();
    let mac = LinuxFpPlatform::new(s).dut_mac();
    let mut frames: Vec<_> = (0..4u64)
        .map(|i| s.http_frame(mac, i, &Scenario::http_request(i)))
        .collect();
    for i in 4..6u64 {
        frames.push(s.http_frame(mac, i, &s.blocked_http_request(i)));
    }
    frames.push(s.http_frame(mac, 6, &[0x16, 0x03, 0x01, 0x00, 0x2a]));
    let (compiled, interpreted) = assert_jit_transparent(s, &frames, "l7");
    assert!(compiled > 0 && interpreted > 0);
}

#[test]
fn nat_masquerade_identical_jit_on_and_off() {
    let s = Scenario::nat_gateway();
    let mac = LinuxFpPlatform::new(s).dut_mac();
    let frames: Vec<_> = (0..8u64)
        .map(|i| s.client_frame(mac, 2 + (i % 2) as u8, i / 2, 60))
        .collect();
    let (compiled, interpreted) = assert_jit_transparent(s, &frames, "nat");
    assert!(compiled > 0 && interpreted > 0);
}

#[test]
fn ipset_gateway_identical_jit_on_and_off() {
    let s = Scenario::gateway_ipset();
    let mac = LinuxFpPlatform::new(s).dut_mac();
    let mut frames: Vec<_> = (0..4u64).map(|i| s.frame(mac, i, 60)).collect();
    for r in 0..2u32 {
        frames.push(builder::udp_packet(
            SOURCE_MAC,
            mac,
            Ipv4Addr::new(10, 0, 1, 100),
            s.blocked_dst(r),
            3100 + r as u16,
            4791,
            b"blocked",
        ));
    }
    let (compiled, interpreted) = assert_jit_transparent(s, &frames, "ipset");
    assert!(compiled > 0 && interpreted > 0);
}

/// Flipping the sysctl mid-stream switches engines without changing a
/// single output byte: the same platform serves the same flow
/// compiled, then interpreted, then compiled again.
#[test]
fn engine_switch_mid_stream_is_invisible() {
    let s = Scenario::router();
    let registry = Registry::new();
    let mut lfp = LinuxFpPlatform::with_telemetry(s, HookPoint::Xdp, registry.clone());
    let mut linux = LinuxPlatform::new(s);
    let mac = lfp.dut_mac();

    for round in 0..6u64 {
        match round {
            2 => {
                lfp.kernel_mut()
                    .sysctl_set("net.linuxfp.jit", 0)
                    .expect("jit sysctl");
            }
            4 => {
                lfp.kernel_mut()
                    .sysctl_set("net.linuxfp.jit", 1)
                    .expect("jit sysctl");
            }
            _ => {}
        }
        for i in 0..3u64 {
            let frame = s.frame(mac, i, 60);
            let out_f = lfp.process(frame.clone());
            let out_l = linux.process(frame);
            assert_eq!(
                observe(std::iter::once(&out_f)),
                observe(std::iter::once(&out_l)),
                "round {round} flow {i}"
            );
        }
    }
    assert!(registry.counter_total("linuxfp_jit_compiled_total") > 0);
    assert!(registry.counter_total("linuxfp_jit_fallback_total") > 0);
}
