//! Differential-transparency regression gate.
//!
//! Every fixture under `tests/difftest_corpus/` is a shrunk repro of a
//! divergence the fuzzer once found (each named after the bug it
//! demonstrates); replaying them pins the fixes. The smoke test then
//! runs a band of freshly generated seeds end to end.

use linuxfp_difftest::{generate, run, DiffScenario};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/difftest_corpus")
}

#[test]
fn every_corpus_fixture_replays_transparent() {
    let mut replayed = 0;
    let mut entries: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable fixture");
        let scenario =
            DiffScenario::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let outcome = run(&scenario);
        assert!(
            outcome.transparent(),
            "{} ({}) diverged: {:?}",
            path.display(),
            scenario.name,
            outcome.divergence
        );
        replayed += 1;
    }
    assert!(replayed >= 3, "corpus unexpectedly small: {replayed}");
}

#[test]
fn seeded_scenarios_stay_transparent() {
    // A smoke band; CI sweeps a much larger range via scripts/ci.sh.
    let mut packets = 0;
    for seed in 0..25 {
        let scenario = generate(seed);
        let outcome = run(&scenario);
        assert!(
            outcome.transparent(),
            "seed {seed} diverged: {:?}",
            outcome.divergence
        );
        packets += outcome.packets;
    }
    assert!(packets > 500, "smoke band suspiciously small: {packets}");
}
