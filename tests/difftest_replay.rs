//! Differential-transparency regression gate.
//!
//! Every fixture under `tests/difftest_corpus/` is a shrunk repro of a
//! divergence the fuzzer once found (each named after the bug it
//! demonstrates); replaying them pins the fixes. The smoke test then
//! runs a band of freshly generated seeds end to end.

use linuxfp_difftest::{
    divergence_trace, generate, run, run_with_options, DiffScenario, Divergence,
};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/difftest_corpus")
}

#[test]
fn every_corpus_fixture_replays_transparent() {
    let mut replayed = 0;
    let mut entries: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable fixture");
        let scenario =
            DiffScenario::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let outcome = run(&scenario);
        assert!(
            outcome.transparent(),
            "{} ({}) diverged: {:?}",
            path.display(),
            scenario.name,
            outcome.divergence
        );
        replayed += 1;
    }
    assert!(replayed >= 3, "corpus unexpectedly small: {replayed}");
}

/// The interpreter lane: every corpus fixture must also replay
/// transparently with `net.linuxfp.jit=0` on both kernels — the fixed
/// bugs stay fixed regardless of which engine serves the programs.
#[test]
fn every_corpus_fixture_replays_transparent_without_jit() {
    let mut replayed = 0;
    let mut entries: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable fixture");
        let scenario =
            DiffScenario::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let outcome = run_with_options(&scenario, 1, false, true);
        assert!(
            outcome.transparent(),
            "{} ({}) diverged with jit off: {:?}",
            path.display(),
            scenario.name,
            outcome.divergence
        );
        replayed += 1;
    }
    assert!(replayed >= 3, "corpus unexpectedly small: {replayed}");
}

/// The optimizer lane: every corpus fixture must also replay
/// transparently with `net.linuxfp.opt=0` on both kernels — the fixed
/// bugs stay fixed whether the programs load naive or shrunk.
#[test]
fn every_corpus_fixture_replays_transparent_without_opt() {
    let mut replayed = 0;
    let mut entries: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable fixture");
        let scenario =
            DiffScenario::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let outcome = run_with_options(&scenario, 1, true, false);
        assert!(
            outcome.transparent(),
            "{} ({}) diverged with opt off: {:?}",
            path.display(),
            scenario.name,
            outcome.divergence
        );
        replayed += 1;
    }
    assert!(replayed >= 3, "corpus unexpectedly small: {replayed}");
}

#[test]
fn divergence_trace_captures_both_kernels() {
    // The corpus fixtures no longer diverge (that's the point of the
    // regression gate), so exercise the capture machinery by pointing it
    // at a burst directly: replay with sampling forced to 1-in-1 must
    // yield a full span from *each* kernel, attributing every stage.
    let text = std::fs::read_to_string(corpus_dir().join("bad-ipv4-checksum.json"))
        .expect("readable fixture");
    let scenario = DiffScenario::from_json(&text).expect("parses");
    let burst_op = scenario
        .ops
        .iter()
        .position(|op| matches!(op, linuxfp_difftest::Op::Burst { .. }))
        .expect("fixture has a burst");
    let synthetic = Divergence {
        op: burst_op,
        kind: "output",
        steady: false,
        detail: String::new(),
    };
    let trace = divergence_trace(&scenario, &synthetic).expect("burst op yields a trace");
    for side in ["linux", "linuxfp"] {
        let span = trace
            .get(side)
            .unwrap_or_else(|| panic!("{side} span present"));
        assert!(
            span.get("total_ns").and_then(|v| v.as_f64()).unwrap_or(0.0) > 0.0,
            "{side} span has no cost: {span}"
        );
        let stages = span["stages"].as_array().expect("stages array");
        assert!(!stages.is_empty(), "{side} span has no stages");
    }
    // Non-output divergences have no per-packet trace to capture.
    let ledger = Divergence {
        op: scenario.ops.len(),
        kind: "ledger",
        steady: false,
        detail: String::new(),
    };
    assert!(divergence_trace(&scenario, &ledger).is_none());
}

#[test]
fn seeded_scenarios_stay_transparent() {
    // A smoke band; CI sweeps a much larger range via scripts/ci.sh.
    let mut packets = 0;
    for seed in 0..25 {
        let scenario = generate(seed);
        let outcome = run(&scenario);
        assert!(
            outcome.transparent(),
            "seed {seed} diverged: {:?}",
            outcome.divergence
        );
        packets += outcome.packets;
    }
    assert!(packets > 500, "smoke band suspiciously small: {packets}");
}

#[test]
fn seeded_scenarios_stay_transparent_without_jit() {
    // Same smoke band on the reference interpreter; CI sweeps 200 seeds
    // in each mode via scripts/ci.sh.
    for seed in 0..25 {
        let scenario = generate(seed);
        let outcome = run_with_options(&scenario, 1, false, true);
        assert!(
            outcome.transparent(),
            "seed {seed} diverged with jit off: {:?}",
            outcome.divergence
        );
    }
}

#[test]
fn seeded_scenarios_stay_transparent_without_opt() {
    // Same smoke band with the bytecode optimizer off — the naive
    // synthesized programs must stay byte-identical to the slow path
    // too; CI sweeps 200 seeds in this mode via scripts/ci.sh.
    for seed in 0..25 {
        let scenario = generate(seed);
        let outcome = run_with_options(&scenario, 1, true, false);
        assert!(
            outcome.transparent(),
            "seed {seed} diverged with opt off: {:?}",
            outcome.divergence
        );
    }
}
