//! Transparency with control-plane software (paper §I: "control plane
//! software, such as FRRouting (FRR), work[s] without modification"):
//! a miniature distance-vector routing daemon installs and withdraws
//! routes through the standard API only, and the LinuxFP controller keeps
//! the fast path in lockstep.
//!
//! ```text
//! cargo run --example routing_daemon
//! ```

use linuxfp::packet::builder;
use linuxfp::prelude::*;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A received route advertisement (as an FRR peer session would deliver).
struct Advertisement {
    prefix: Prefix,
    next_hop: Ipv4Addr,
    metric: u32,
    withdraw: bool,
}

/// The daemon's RIB: best metric per prefix, flushed into the kernel FIB
/// with plain `ip route` operations.
#[derive(Default)]
struct MiniDaemon {
    rib: HashMap<Prefix, (Ipv4Addr, u32)>,
}

impl MiniDaemon {
    fn process(&mut self, kernel: &mut Kernel, adv: Advertisement) {
        if adv.withdraw {
            if self.rib.remove(&adv.prefix).is_some() {
                let _ = kernel.ip_route_del(adv.prefix, None);
                println!("daemon: withdraw {}", adv.prefix);
            }
            return;
        }
        let better = self
            .rib
            .get(&adv.prefix)
            .map(|(_, m)| adv.metric < *m)
            .unwrap_or(true);
        if better {
            if self.rib.contains_key(&adv.prefix) {
                let _ = kernel.ip_route_del(adv.prefix, None);
            }
            self.rib.insert(adv.prefix, (adv.next_hop, adv.metric));
            kernel
                .ip_route_add(adv.prefix, Some(adv.next_hop), None)
                .expect("gateway reachable");
            println!(
                "daemon: install {} via {} metric {}",
                adv.prefix, adv.next_hop, adv.metric
            );
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut kernel = Kernel::new(3);
    let eth0 = kernel.add_physical("eth0")?;
    let eth1 = kernel.add_physical("eth1")?;
    let eth2 = kernel.add_physical("eth2")?;
    kernel.ip_addr_add(eth0, "10.0.1.1/24".parse::<IfAddr>()?)?;
    kernel.ip_addr_add(eth1, "10.0.2.1/24".parse::<IfAddr>()?)?;
    kernel.ip_addr_add(eth2, "10.0.3.1/24".parse::<IfAddr>()?)?;
    for d in [eth0, eth1, eth2] {
        kernel.ip_link_set_up(d)?;
    }
    kernel.sysctl_set("net.ipv4.ip_forward", 1)?;
    let now = kernel.now();
    let peer_b: Ipv4Addr = "10.0.2.2".parse()?;
    let peer_c: Ipv4Addr = "10.0.3.2".parse()?;
    kernel
        .neigh
        .learn(peer_b, MacAddr::from_index(0xB), eth1, now);
    kernel
        .neigh
        .learn(peer_c, MacAddr::from_index(0xC), eth2, now);
    // The probe source host, resolved so ICMP errors route back warm.
    kernel.neigh.learn(
        "10.0.1.100".parse()?,
        MacAddr::from_index(0xAAAA),
        eth0,
        now,
    );

    let (mut controller, _) = Controller::attach(&mut kernel, ControllerConfig::default())?;
    let mut daemon = MiniDaemon::default();

    let probe = |kernel: &mut Kernel| {
        let frame = builder::udp_packet(
            MacAddr::from_index(0xAAAA),
            kernel.device(eth0).unwrap().mac,
            "10.0.1.100".parse().unwrap(),
            "10.20.0.7".parse().unwrap(),
            1,
            2,
            b"probe",
        );
        let out = kernel.receive(eth0, frame);
        if !out.drops().is_empty() {
            // With no route the slow path answers with an ICMP
            // destination-unreachable toward the source.
            return format!(
                "dropped ({:?}), ICMP errors sent: {}",
                out.drops(),
                out.transmissions().len()
            );
        }
        match out.transmissions().first() {
            Some((dev, frame)) => {
                let eth = linuxfp::packet::EthernetFrame::parse(frame).unwrap();
                format!(
                    "forwarded out {dev} to {} (fast path: {})",
                    eth.dst,
                    out.cost.stage_count("skb_alloc") == 0
                )
            }
            None => "no output".to_string(),
        }
    };

    println!("-- before any advertisement --");
    println!("probe 10.20.0.7: {}\n", probe(&mut kernel));

    // Peer B advertises the prefix.
    daemon.process(
        &mut kernel,
        Advertisement {
            prefix: "10.20.0.0/16".parse()?,
            next_hop: peer_b,
            metric: 10,
            withdraw: false,
        },
    );
    let r = controller.poll(&mut kernel)?.unwrap();
    println!("controller reacted in {:.3}s", r.reaction.as_secs_f64());
    println!("probe 10.20.0.7: {}\n", probe(&mut kernel));

    // Peer C advertises a better path: the daemon replaces the route.
    daemon.process(
        &mut kernel,
        Advertisement {
            prefix: "10.20.0.0/16".parse()?,
            next_hop: peer_c,
            metric: 5,
            withdraw: false,
        },
    );
    controller.poll(&mut kernel)?;
    println!("probe 10.20.0.7: {}\n", probe(&mut kernel));

    // Peer C withdraws: traffic falls back to... nothing (dropped).
    daemon.process(
        &mut kernel,
        Advertisement {
            prefix: "10.20.0.0/16".parse()?,
            next_hop: peer_c,
            metric: 5,
            withdraw: true,
        },
    );
    controller.poll(&mut kernel)?;
    println!("probe 10.20.0.7: {}", probe(&mut kernel));
    println!("\nthe daemon never heard of LinuxFP; the fast path tracked every change.");
    Ok(())
}
