//! Custom monitoring modules (paper §VIII): hot-install a packet counter
//! and a tcpdump-style AF_XDP mirror into a running fast path — no
//! traffic interruption, verifier-gated, all state readable live from
//! user space.
//!
//! ```text
//! cargo run --example monitoring
//! ```

use linuxfp::core::fpm::CustomFpm;
use linuxfp::packet::builder;
use linuxfp::prelude::*;
use std::net::Ipv4Addr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A routed host with the controller attached.
    let mut kernel = Kernel::new(5);
    let eth0 = kernel.add_physical("eth0")?;
    let eth1 = kernel.add_physical("eth1")?;
    kernel.ip_addr_add(eth0, "10.0.1.1/24".parse::<IfAddr>()?)?;
    kernel.ip_addr_add(eth1, "10.0.2.1/24".parse::<IfAddr>()?)?;
    kernel.ip_link_set_up(eth0)?;
    kernel.ip_link_set_up(eth1)?;
    kernel.sysctl_set("net.ipv4.ip_forward", 1)?;
    kernel.ip_route_add(
        "10.10.0.0/16".parse::<Prefix>()?,
        Some("10.0.2.2".parse()?),
        None,
    )?;
    let now = kernel.now();
    kernel
        .neigh
        .learn("10.0.2.2".parse()?, MacAddr::from_index(0xBEEF), eth1, now);
    let (mut controller, _) = Controller::attach(&mut kernel, ControllerConfig::default())?;

    // Hot-install two monitoring modules into the live fast path.
    let counter = controller.deployer().maps().create_hash(4);
    let (xsk_map, capture) = controller.deployer().maps().create_xsk(1024);
    let r1 = controller.install_custom_module(
        &mut kernel,
        CustomFpm::packet_counter("pkt_count", counter.0),
    )?;
    let r2 = controller
        .install_custom_module(&mut kernel, CustomFpm::mirror_to_user("capture", xsk_map.0))?;
    println!(
        "installed pkt_count ({:.3}s) and capture ({:.3}s) into the running data path\n",
        r1.reaction.as_secs_f64(),
        r2.reaction.as_secs_f64()
    );

    // Forward some traffic.
    let dut_mac = kernel.device(eth0).expect("exists").mac;
    for i in 0..10u8 {
        let frame = builder::udp_packet(
            MacAddr::from_index(0xAAAA),
            dut_mac,
            Ipv4Addr::new(10, 0, 1, 100),
            Ipv4Addr::new(10, 10, 3, i),
            4000 + u16::from(i),
            53,
            b"payload",
        );
        let out = kernel.receive(eth0, frame);
        assert_eq!(out.transmissions().len(), 1, "still forwarding");
    }

    // Read the live telemetry from user space.
    let count = controller
        .deployer()
        .maps()
        .lookup(counter, &0u32.to_le_bytes())?
        .map(|v| u64::from_le_bytes(v.try_into().expect("8-byte counter")))
        .unwrap_or(0);
    println!("fast-path packet counter: {count}");
    println!(
        "captured frames on the AF_XDP socket: {}",
        capture.pending()
    );
    if let Some(first) = capture.recv() {
        let eth = linuxfp::packet::EthernetFrame::parse(&first)?;
        let ip = linuxfp::packet::Ipv4Header::parse(&first[eth.payload_offset..])?;
        println!(
            "first capture: {} -> {} ({} bytes, as seen at the XDP layer)",
            ip.src,
            ip.dst,
            first.len()
        );
    }
    println!("\nall of this was injected at runtime; forwarding never paused.");
    Ok(())
}
