//! `linuxfp_trace` — explain any packet in a difftest corpus fixture.
//!
//! Replays a fixture on the accelerated kernel with the flight recorder
//! sampling 1-in-N (default every packet) and prints each recorded span:
//! which regime decided the packet (flow-cache hit, fast path, punt,
//! slow path), the chronological typed events (VM runs, netfilter
//! chains, NAT rewrites, drops with taxonomy reasons), and the
//! per-stage virtual-time attribution whose sum equals the total
//! service time charged. A cost-breakdown table over all sampled spans
//! closes the report.
//!
//! ```text
//! linuxfp_trace [--json] [--every N] [--seq I] [--shards N] FIXTURE.json
//!   --json      machine-readable output (spans + breakdown)
//!   --every N   sample 1-in-N packets (default 1: trace everything)
//!   --seq I     print only the span with sequence number I
//!   --shards N  replay on an N-shard datapath (default 1); spans then
//!               carry the owning shard and a `coherence` stage showing
//!               cross-core penalties in the breakdown
//! ```
//!
//! Exit status is 2 on usage or parse errors, 1 if no packet was
//! sampled, 0 otherwise.

use linuxfp_difftest::{trace_scenario_with_shards, DiffScenario};
use linuxfp_json::{json, Value};
use linuxfp_telemetry::trace::CostBreakdown;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_mode = args.iter().any(|a| a == "--json");
    let every = flag_value(&args, "--every")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(1);
    let seq = flag_value(&args, "--seq").and_then(|v| v.parse::<u64>().ok());
    let shards = flag_value(&args, "--shards")
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(1);
    let Some(path) = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .find(|a| !is_flag_value(&args, a))
    else {
        eprintln!("usage: linuxfp_trace [--json] [--every N] [--seq I] [--shards N] FIXTURE.json");
        return ExitCode::from(2);
    };

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("linuxfp_trace: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let scenario = match DiffScenario::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("linuxfp_trace: cannot parse {path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut spans = trace_scenario_with_shards(&scenario, every, shards);
    if let Some(want) = seq {
        spans.retain(|s| s.seq == want);
    }
    if spans.is_empty() {
        eprintln!("linuxfp_trace: no packet sampled (fixture without bursts, or --seq miss)");
        return ExitCode::FAILURE;
    }
    let breakdown = CostBreakdown::from_spans(&spans);

    if json_mode {
        let span_values: Vec<Value> = spans.iter().map(|s| s.to_json()).collect();
        let mut doc = linuxfp_json::Map::new();
        doc.insert("fixture".to_string(), Value::from(scenario.name.as_str()));
        doc.insert("every".to_string(), Value::from(every));
        doc.insert("spans".to_string(), json!(span_values));
        doc.insert("breakdown".to_string(), breakdown.to_json());
        println!("{}", linuxfp_json::to_string_pretty(&Value::Object(doc)));
    } else {
        println!(
            "fixture {} — {} span(s) at 1-in-{every} sampling\n",
            scenario.name,
            spans.len()
        );
        for span in &spans {
            println!("{}", span.render_text());
        }
        println!("{}", breakdown.render_text());
    }
    ExitCode::SUCCESS
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    let pos = args.iter().position(|a| a == flag)?;
    args.get(pos + 1).map(String::as_str)
}

/// Whether `arg` is the value operand of `--every`, `--seq`, or
/// `--shards` (so the positional-fixture scan skips it).
fn is_flag_value(args: &[String], arg: &str) -> bool {
    args.iter()
        .position(|a| a == arg)
        .is_some_and(|i| i > 0 && matches!(args[i - 1].as_str(), "--every" | "--seq" | "--shards"))
}
