//! Watch the controller react to live configuration changes (paper
//! Table VI): each command triggers introspection → graph → synthesis →
//! verification → atomic swap, reported stage by stage.
//!
//! ```text
//! cargo run --example reaction_time
//! ```

use linuxfp::netstack::netfilter::{ChainHook, IptRule};
use linuxfp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut kernel = Kernel::new(9);
    let ens1f0 = kernel.add_physical("ens1f0np0")?;
    let ens1f1 = kernel.add_physical("ens1f1np0")?;
    let (veth11, veth12) = kernel.add_veth_pair("veth11", "veth12")?;
    for d in [ens1f0, ens1f1, veth11, veth12] {
        kernel.ip_link_set_up(d)?;
    }
    kernel.ip_addr_add(ens1f1, "10.10.2.1/24".parse::<IfAddr>()?)?;
    kernel.sysctl_set("net.ipv4.ip_forward", 1)?;
    kernel.ip_route_add(
        "10.20.0.0/16".parse::<Prefix>()?,
        Some("10.10.2.2".parse()?),
        None,
    )?;

    let (mut controller, initial) = Controller::attach(&mut kernel, ControllerConfig::default())?;
    println!(
        "controller attached: initial sync {:.3}s, {} program(s)\n",
        initial.reaction.as_secs_f64(),
        initial.installed.len()
    );

    let show = |cmd: &str, kernel: &mut Kernel, controller: &mut Controller| {
        let report = controller
            .poll(kernel)
            .expect("deploy succeeds")
            .expect("events pending");
        println!("$ {cmd}");
        println!(
            "  reaction {:.3}s  (graph changed: {}, programs: {:?})",
            report.reaction.as_secs_f64(),
            report.changed,
            report.installed
        );
        for (stage, t) in &report.stages {
            println!("    {:<22} {:.3}s", stage, t.as_secs_f64());
        }
        println!();
    };

    kernel.ip_addr_add(ens1f0, "10.10.1.1/24".parse::<IfAddr>()?)?;
    show(
        "ip addr add 10.10.1.1/24 dev ens1f0np0",
        &mut kernel,
        &mut controller,
    );

    let br0 = kernel.add_bridge("br0")?;
    kernel.ip_link_set_up(br0)?;
    show("brctl addbr br0", &mut kernel, &mut controller);

    kernel.brctl_addif(br0, veth11)?;
    show("brctl addif br0 veth11", &mut kernel, &mut controller);

    kernel.iptables_append(
        ChainHook::Forward,
        IptRule::drop_dst("10.10.3.0/24".parse::<Prefix>()?),
    );
    show(
        "iptables -d 10.10.3.0/24 -A FORWARD -j DROP",
        &mut kernel,
        &mut controller,
    );

    println!("paper Table VI: 0.602 / 0.539 / 0.493 / 1.028 seconds");
    Ok(())
}
