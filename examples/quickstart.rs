//! Quickstart: configure a router with ordinary commands, attach the
//! LinuxFP controller, and watch the same packet take the slow path and
//! then the synthesized fast path.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use linuxfp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A "machine" with two NICs.
    let mut kernel = Kernel::new(1);
    let eth0 = kernel.add_physical("eth0")?;
    let eth1 = kernel.add_physical("eth1")?;
    kernel.ip_link_set_up(eth0)?;
    kernel.ip_link_set_up(eth1)?;

    // 2. Configure it as a router exactly as an admin would with
    //    iproute2 + sysctl. Nothing here is LinuxFP-specific.
    kernel.ip_addr_add(eth0, "10.0.1.1/24".parse::<IfAddr>()?)?;
    kernel.ip_addr_add(eth1, "10.0.2.1/24".parse::<IfAddr>()?)?;
    kernel.sysctl_set("net.ipv4.ip_forward", 1)?;
    kernel.ip_route_add(
        "10.10.0.0/16".parse::<Prefix>()?,
        Some("10.0.2.2".parse()?),
        None,
    )?;
    let now = kernel.now();
    kernel
        .neigh
        .learn("10.0.2.2".parse()?, MacAddr::from_index(0xBEEF), eth1, now);

    // A test packet arriving on eth0 for a destination behind eth1.
    let make_frame = |k: &Kernel| {
        linuxfp::packet::builder::udp_packet(
            MacAddr::from_index(0xAAAA),
            k.device(eth0).expect("exists").mac,
            "10.0.1.100".parse().unwrap(),
            "10.10.3.7".parse().unwrap(),
            1000,
            2000,
            b"hello fast path",
        )
    };

    // 3. Before LinuxFP: the packet takes the full slow path.
    let out = kernel.receive(eth0, make_frame(&kernel));
    println!("--- plain Linux ---");
    println!(
        "forwarded: {} (sk_buff allocated: {})",
        out.transmissions().len() == 1,
        out.cost.stage_count("skb_alloc") == 1
    );
    println!(
        "slow path cost: {:.0} ns/packet\n{}",
        out.cost.total_ns(),
        out.cost
    );

    // 4. Attach the controller. It introspects the existing configuration
    //    over netlink and deploys a minimal forwarding fast path.
    let (controller, report) = Controller::attach(&mut kernel, ControllerConfig::default())?;
    println!("--- LinuxFP attached ---");
    println!(
        "reaction time {:.3}s, programs: {:?}",
        report.reaction.as_secs_f64(),
        report.installed
    );
    println!(
        "processing graph:\n{}\n",
        linuxfp::json::to_string_pretty(controller.graph())
    );

    // 5. The same packet now takes the XDP fast path: no sk_buff, the
    //    FIB consulted through bpf_fib_lookup, redirected in the driver.
    let out = kernel.receive(eth0, make_frame(&kernel));
    println!("--- accelerated ---");
    println!(
        "forwarded: {} (sk_buff allocated: {})",
        out.transmissions().len() == 1,
        out.cost.stage_count("skb_alloc") == 1
    );
    println!(
        "fast path cost: {:.0} ns/packet\n{}",
        out.cost.total_ns(),
        out.cost
    );
    Ok(())
}
