//! `linuxfp_opt_dump` — show what the synthesis-time bytecode optimizer
//! does to every synthesized fast path.
//!
//! Synthesizes the standard FPM pipelines, runs each program through
//! [`linuxfp_ebpf::opt::optimize`], and prints one summary line per
//! pipeline (before/after instruction counts and the shrink percentage).
//! With `--disasm`, the naive and optimized disassemblies are printed
//! side by side for the selected pipelines, so a reviewer can see each
//! rewrite — constant folding, redundant-load elimination, the widened
//! checksum loop, the collapsed TTL update — in the actual emitted code.
//!
//! ```text
//! linuxfp_opt_dump [--disasm] [PIPELINE...]
//!   --disasm    also print before/after disassembly per pipeline
//!   PIPELINE    subset to dump (default: all); one of
//!               router bridge filter_router ipvs_router nat_router
//!               l7_router full_forward
//! ```
//!
//! The summary lines are stable and machine-parsable (CI gates on the
//! router shrink):
//!
//! ```text
//! opt_dump: router 104 -> 72 insns (-32, 30.8%)
//! ```

use linuxfp_core::fpm::{BridgeConf, FilterConf, FpmInstance, IpvsConf, L7Conf, NatConf};
use linuxfp_core::synth::synthesize_pipeline;
use linuxfp_ebpf::opt;
use linuxfp_netstack::device::IfIndex;
use std::process::ExitCode;

/// The standard pipeline shapes, mirroring the optimizer's size
/// regression gates (`crates/core/tests/opt_shrink.rs`).
fn pipelines() -> Vec<(&'static str, Vec<FpmInstance>)> {
    let bridge = FpmInstance::Bridge(BridgeConf {
        stp_enabled: false,
        vlan_enabled: false,
        pvid: 1,
        bridge_mac: [2, 0, 0, 0, 0, 1],
        has_l3: false,
        br_nf: false,
    });
    let filter = FpmInstance::Filter(FilterConf {
        rules: 4,
        ipset: false,
        match_ports: true,
    });
    let ipvs = FpmInstance::Ipvs(IpvsConf {
        vip: [10, 0, 0, 1],
        port: 80,
    });
    let nat = FpmInstance::Nat(NatConf {
        dnat_rules: 1,
        snat_rules: 1,
    });
    let l7 = FpmInstance::L7(L7Conf { rules: 2 });
    vec![
        ("router", vec![FpmInstance::Router]),
        ("bridge", vec![bridge]),
        ("filter_router", vec![filter.clone(), FpmInstance::Router]),
        ("ipvs_router", vec![ipvs, FpmInstance::Router]),
        ("nat_router", vec![nat.clone(), FpmInstance::Router]),
        ("l7_router", vec![l7, FpmInstance::Router]),
        ("full_forward", vec![filter, nat, FpmInstance::Router]),
    ]
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let disasm = args.iter().any(|a| a == "--disasm");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    let all = pipelines();
    let known: Vec<&str> = all.iter().map(|(n, _)| *n).collect();
    for name in &selected {
        if !known.contains(name) {
            eprintln!("linuxfp_opt_dump: unknown pipeline {name} (known: {known:?})");
            return ExitCode::from(2);
        }
    }

    for (name, fpms) in &all {
        if !selected.is_empty() && !selected.contains(name) {
            continue;
        }
        let fp = match synthesize_pipeline(IfIndex(1), "eth0", fpms) {
            Ok(fp) => fp,
            Err(e) => {
                eprintln!("linuxfp_opt_dump: {name}: synthesis failed: {e:?}");
                return ExitCode::FAILURE;
            }
        };
        let naive = fp.program.insns;
        let (optimized, stats) = opt::optimize(&naive);
        let pct = if stats.before > 0 {
            100.0 * stats.removed() as f64 / stats.before as f64
        } else {
            0.0
        };
        println!(
            "opt_dump: {name} {} -> {} insns (-{}, {pct:.1}%)",
            stats.before,
            stats.after,
            stats.removed()
        );
        if disasm {
            println!("--- {name}: naive ({} insns)", naive.len());
            println!("{}", opt::disasm_program(&naive));
            println!("--- {name}: optimized ({} insns)", optimized.len());
            println!("{}", opt::disasm_program(&optimized));
        }
    }
    ExitCode::SUCCESS
}
