//! The paper's virtual-gateway evaluation (§VI-A1): forwarding plus an
//! iptables blacklist, and the effect of aggregating it into an ipset.
//!
//! ```text
//! cargo run --example virtual_gateway --release
//! ```

use linuxfp::prelude::*;
use linuxfp::traffic::pktgen;

fn main() {
    println!("virtual gateway: 50 prefixes + blacklist on FORWARD, single core\n");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10}",
        "platform", "1 rule", "100 rules", "500 rules", "1000 rules"
    );

    let sweep = |rules: u32, use_ipset: bool| Scenario {
        filter_rules: rules,
        use_ipset,
        ..Scenario::router()
    };
    let rule_counts = [1u32, 100, 500, 1000];

    let print_row = |name: &str, use_ipset: bool, kind: &str| {
        let mut cells = format!("{name:<18}");
        for &rules in &rule_counts {
            let s = sweep(rules, use_ipset);
            let mpps = match kind {
                "linux" => {
                    let mut p = LinuxPlatform::new(s);
                    let mac = p.dut_mac();
                    pktgen::throughput_pps(&mut p, s, mac, 1, 64).pps / 1e6
                }
                "polycube" => {
                    let mut p = PolycubePlatform::new(s);
                    let mac = p.dut_mac();
                    pktgen::throughput_pps(&mut p, s, mac, 1, 64).pps / 1e6
                }
                _ => {
                    let mut p = LinuxFpPlatform::new(s);
                    let mac = p.dut_mac();
                    pktgen::throughput_pps(&mut p, s, mac, 1, 64).pps / 1e6
                }
            };
            cells += &format!(" {mpps:>9.3}");
        }
        println!("{cells}  [Mpps]");
    };

    print_row("Linux", false, "linux");
    print_row("Polycube", false, "polycube");
    print_row("LinuxFP", false, "linuxfp");
    print_row("LinuxFP (ipset)", true, "linuxfp");

    // Demonstrate that filtering is actually enforced on the fast path.
    let s = sweep(100, true);
    let mut lfp = LinuxFpPlatform::new(s);
    let mac = lfp.dut_mac();
    let blocked = linuxfp::packet::builder::udp_packet(
        linuxfp::platforms::scenario::SOURCE_MAC,
        mac,
        "10.0.1.100".parse().unwrap(),
        s.blocked_dst(0),
        1,
        2,
        b"blocked",
    );
    let out = lfp.process(blocked);
    println!(
        "\nblacklisted destination {} -> {:?} (dropped on the XDP fast path, \
         sk_buff never allocated: {})",
        s.blocked_dst(0),
        out.drops(),
        out.cost.stage_count("skb_alloc") == 0
    );
    println!("\npaper: the linear scan hurts Linux and LinuxFP as rules grow; ipset");
    println!("aggregation keeps LinuxFP flat and ahead of Polycube's classifier.");
}
