//! The paper's virtual-router evaluation (§VI-A1) in miniature: all four
//! platforms configured with 50 prefixes, throughput and latency compared.
//!
//! ```text
//! cargo run --example virtual_router --release
//! ```

use linuxfp::prelude::*;
use linuxfp::traffic::netperf::{run_rr, RrConfig};
use linuxfp::traffic::pktgen;

fn main() {
    let scenario = Scenario::router();
    println!("virtual router: 50 prefixes, 64B packets, XDP driver mode\n");
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>12}",
        "platform", "1-core [Mpps]", "4-core [Mpps]", "RTT avg[us]", "RTT p99[us]"
    );

    let run = |name: &str, platform: &mut dyn Platform, mac: MacAddr| {
        let one = pktgen::throughput_pps(platform, scenario, mac, 1, 64);
        let four = pktgen::throughput_pps(platform, scenario, mac, 4, 64);
        let rr = run_rr(&RrConfig::paper_default(
            one.service_ns,
            platform.traits().scheduling,
        ));
        println!(
            "{:<10} {:>14.3} {:>14.3} {:>12.1} {:>12.1}",
            name,
            one.pps / 1e6,
            four.pps / 1e6,
            rr.rtt_us.mean(),
            rr.rtt_us.p99()
        );
    };

    let mut linux = LinuxPlatform::new(scenario);
    let mac = linux.dut_mac();
    run("Linux", &mut linux, mac);
    let mut pcn = PolycubePlatform::new(scenario);
    let mac = pcn.dut_mac();
    run("Polycube", &mut pcn, mac);
    let mut vpp = VppPlatform::new(scenario);
    let mac = vpp.dut_mac();
    run("VPP", &mut vpp, mac);
    let mut lfp = LinuxFpPlatform::new(scenario);
    let mac = lfp.dut_mac();
    run("LinuxFP", &mut lfp, mac);

    println!("\npaper: LinuxFP ~77% faster than Linux with ~53% lower latency,");
    println!("matching Polycube without giving up the Linux networking API.");
}
