//! `top` for fast paths: drive mixed traffic through a LinuxFP host and
//! print a live per-FPM hit-ratio table from the telemetry registry —
//! fast-path hits vs slow-path fallbacks, per-subsystem slow-path
//! counters, reconcile latency quantiles and the trace-event ring.
//!
//! ```text
//! cargo run --example linuxfp_top
//! ```

use linuxfp::packet::builder;
use linuxfp::prelude::*;
use linuxfp::telemetry::trace::{CostBreakdown, TraceRing};
use linuxfp::telemetry::Scale;

/// One refresh of the dashboard: the per-FPM table plus the slow-path,
/// drop-reason, flight-recorder and controller gauges underneath. Every
/// section is omitted (with a stub line where that would be confusing)
/// rather than rendered blank when its counter family has no series yet.
fn draw(round: usize, reg: &Registry, ring: &TraceRing) {
    println!("── round {round} ──────────────────────────────────────────");
    let hits_series = reg.counter_series("linuxfp_fp_hits_total");
    if hits_series.is_empty() {
        println!("(no fast-path telemetry yet — dispatcher not installed)");
    } else {
        println!(
            "{:<16} {:>8} {:>10} {:>9} {:>7} {:>6}",
            "FPM", "hits", "fallbacks", "hit%", "insns", "-opt"
        );
        let fallbacks = reg.counter_series("linuxfp_slowpath_fallbacks_total");
        for (labels, hits) in hits_series {
            let fpm = labels
                .iter()
                .find(|(k, _)| k == "fpm")
                .map(|(_, v)| v.as_str())
                .unwrap_or("?");
            let fb = fallbacks
                .iter()
                .find(|(ls, _)| ls == &labels)
                .map(|&(_, v)| v)
                .unwrap_or(0);
            let total = hits + fb;
            let ratio = if total == 0 {
                0.0
            } else {
                100.0 * hits as f64 / total as f64
            };
            // The deployed program's size and what the bytecode
            // optimizer shaved off it, from the per-FPM deploy gauges.
            let l = [("fpm", fpm)];
            let size = reg
                .gauge_value("linuxfp_fp_program_insns", &l)
                .map_or("-".to_string(), |v| v.to_string());
            let shaved = reg
                .gauge_value("linuxfp_opt_insns_removed", &l)
                .map_or("-".to_string(), |v| format!("-{v}"));
            println!("{fpm:<16} {hits:>8} {fb:>10} {ratio:>8.1}% {size:>7} {shaved:>6}");
        }
        let before = reg.counter_total("linuxfp_opt_insns_before_total");
        let after = reg.counter_total("linuxfp_opt_insns_after_total");
        if before > 0 {
            println!(
                "optimizer: {before} insns in -> {after} out across deploys ({:.1}% removed)",
                100.0 * (before - after) as f64 / before as f64
            );
        }
    }
    let slow: Vec<String> = reg
        .counter_series("linuxfp_slowpath_packets_total")
        .into_iter()
        .filter(|&(_, v)| v > 0)
        .map(|(ls, v)| {
            let s = ls
                .iter()
                .find(|(k, _)| k == "subsystem")
                .map(|(_, v)| v.as_str())
                .unwrap_or("?")
                .to_string();
            format!("{s}={v}")
        })
        .collect();
    let slow_detail = if slow.is_empty() {
        String::new()
    } else {
        format!(" [{}]", slow.join(" "))
    };
    println!(
        "slow path: injected={}{slow_detail}  drops={}",
        reg.counter_total("linuxfp_packets_injected_total"),
        reg.counter_total("linuxfp_drops_total"),
    );

    // Top-k drop reasons, straight from the taxonomy labels on
    // linuxfp_drops_total. Silent when nothing has been dropped.
    let mut drops: Vec<(String, u64)> = reg
        .counter_series("linuxfp_drops_total")
        .into_iter()
        .filter(|&(_, v)| v > 0)
        .map(|(ls, v)| {
            let reason = ls
                .iter()
                .find(|(k, _)| k == "reason")
                .map(|(_, v)| v.as_str())
                .unwrap_or("?")
                .to_string();
            (reason, v)
        })
        .collect();
    if !drops.is_empty() {
        drops.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let top: Vec<String> = drops
            .iter()
            .take(5)
            .map(|(r, v)| format!("{r}={v}"))
            .collect();
        println!("drop reasons: {}", top.join(" "));
    }

    let fc_hits = reg.counter_total("linuxfp_flowcache_hits_total");
    let fc_misses = reg.counter_total("linuxfp_flowcache_misses_total");
    let fc_total = fc_hits + fc_misses;
    if fc_total > 0 {
        println!(
            "flow cache: hits={fc_hits} misses={fc_misses} hit%={:.1} invalidations={} evictions={}",
            100.0 * fc_hits as f64 / fc_total as f64,
            reg.counter_total("linuxfp_flowcache_invalidations_total"),
            reg.counter_total("linuxfp_flowcache_evictions_total"),
        );
    }

    draw_shards(reg);

    // Per-stage cost attribution from the flight recorder's sampled
    // spans: one compact row per regime/disposition, costliest stage
    // first.
    let breakdown = CostBreakdown::from_spans(&ring.recent());
    for (regime, disposition, pkts, ns_per_pkt, _p50, _p99) in breakdown.rows() {
        let group = format!("{}/{disposition}", regime.as_str());
        let stages: Vec<String> = breakdown
            .top_stages(regime, disposition, 3)
            .into_iter()
            .map(|(stage, ns)| format!("{stage} {ns:.0}"))
            .collect();
        println!(
            "trace: {group:<22} {pkts:>5} pkts {ns_per_pkt:>8.1} ns/pkt  top: {}",
            stages.join(", ")
        );
    }

    let reconcile = reg.histogram("linuxfp_reconcile_seconds", &[], Scale::NanosToSeconds);
    if reconcile.count() > 0 {
        println!(
            "controller: {} reconciles, p50 {:.2}ms, p99 {:.2}ms, rebuilds={}",
            reconcile.count(),
            reconcile.quantile(50.0) / 1e6,
            reconcile.quantile(99.0) / 1e6,
            reg.counter_total("linuxfp_graph_rebuilds_total"),
        );
    }
    println!();
}

/// The per-shard panel: packets steered, fast-path and flow-cache hit
/// ratios, pool occupancy and drops per RSS shard. Silent until the
/// datapath is sharded (`net.linuxfp.rss_shards > 1` — the shard series
/// only exist then).
fn draw_shards(reg: &Registry) {
    let mut shards: Vec<(String, u64)> = reg
        .counter_series("linuxfp_shard_packets_total")
        .into_iter()
        .map(|(ls, v)| {
            let shard = ls
                .iter()
                .find(|(k, _)| k == "shard")
                .map(|(_, v)| v.clone())
                .unwrap_or_default();
            (shard, v)
        })
        .collect();
    if shards.is_empty() {
        return;
    }
    shards.sort_by_key(|(s, _)| s.parse::<u32>().unwrap_or(u32::MAX));
    println!(
        "{:<6} {:>8} {:>7} {:>7} {:>12} {:>7}",
        "shard", "pkts", "fp%", "fc%", "pool", "drops"
    );
    for (shard, pkts) in shards {
        let l = [("shard", shard.as_str())];
        let ratio = |hit_name: &str, miss_name: &str| -> String {
            let h = reg.counter_value(hit_name, &l).unwrap_or(0);
            let m = reg.counter_value(miss_name, &l).unwrap_or(0);
            if h + m == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", 100.0 * h as f64 / (h + m) as f64)
            }
        };
        let fp = ratio(
            "linuxfp_shard_fp_hits_total",
            "linuxfp_shard_fallbacks_total",
        );
        let fc = ratio(
            "linuxfp_shard_flowcache_hits_total",
            "linuxfp_shard_flowcache_misses_total",
        );
        let pool = {
            let free = reg.gauge_value("linuxfp_pool_buffers", &[("state", "free"), l[0]]);
            let out = reg.gauge_value("linuxfp_pool_buffers", &[("state", "outstanding"), l[0]]);
            match (free, out) {
                (Some(f), Some(o)) => format!("{o} out/{} alloc", f + o),
                _ => "-".to_string(),
            }
        };
        let drops: u64 = reg
            .counter_series("linuxfp_shard_drops_total")
            .into_iter()
            .filter(|(ls, _)| ls.iter().any(|(k, v)| k == "shard" && *v == shard))
            .map(|(_, v)| v)
            .sum();
        println!("{shard:<6} {pkts:>8} {fp:>7} {fc:>7} {pool:>12} {drops:>7}");
    }
    let coherence = reg.counter_total("linuxfp_coherence_events_total");
    if coherence > 0 {
        let census: Vec<String> = reg
            .counter_series("linuxfp_coherence_events_total")
            .into_iter()
            .filter(|&(_, v)| v > 0)
            .map(|(ls, v)| {
                let s = ls
                    .iter()
                    .find(|(k, _)| k == "structure")
                    .map(|(_, v)| v.as_str())
                    .unwrap_or("?")
                    .to_string();
                format!("{s}={v}")
            })
            .collect();
        println!("coherence misses: {}", census.join(" "));
    }
}

fn main() {
    let registry = Registry::new();
    let scenario = Scenario::router();
    let mut host = LinuxFpPlatform::with_telemetry(scenario, HookPoint::Xdp, registry.clone());
    let mac = host.dut_mac();
    // Flight recorder on every packet: the demo is tiny, so trade the
    // sampling budget for a complete per-stage breakdown panel.
    let ring = host.kernel_mut().enable_flight_recorder(4096, 1);

    // Rounds 1-2: pure forwarding — everything should hit the fast path.
    for round in 1..=2 {
        for i in 0..50u64 {
            host.process(scenario.frame(mac, i, 60));
        }
        draw(round, &registry, &ring);
    }

    // Reconfigure at runtime: add an iptables blacklist. The controller
    // reacts by swapping in a router+filter fast path (watch the FPM
    // label change and the swap land in the event ring).
    host.kernel_mut().iptables_append(
        linuxfp::netstack::netfilter::ChainHook::Forward,
        linuxfp::netstack::netfilter::IptRule::drop_dst(Scenario::blacklist_prefix(0)),
    );
    let report = host.poll_controller().expect("netfilter change triggers");
    println!(
        "*** controller reacted in {:.2}ms: {} FPM instances installed ***\n",
        report.reaction.as_secs_f64() * 1e3,
        report.fpm_count
    );

    // Rounds 3-5: mixed traffic — forwarded and blacklisted flows. Drops
    // on the fast path count as hits (the fast path made the decision).
    for round in 3..=5 {
        for i in 0..30u64 {
            host.process(scenario.frame(mac, i, 60));
        }
        for i in 0..10u32 {
            let blocked = builder::udp_packet(
                linuxfp::platforms::scenario::SOURCE_MAC,
                mac,
                std::net::Ipv4Addr::new(10, 0, 1, 100),
                Scenario::blacklist_prefix(0).nth_host(i + 1),
                4000 + i as u16,
                53,
                b"",
            );
            host.process(blocked);
        }
        draw(round, &registry, &ring);
    }

    // Reconfigure again: L7 request policies. The fast path grows a
    // payload-parsing stage (`router+l7+filter` in the FPM column) that
    // denies `/blocked/*` requests in the hook and punts anything its
    // bounded parser cannot judge.
    host.kernel_mut()
        .l7_policy_append(linuxfp::netstack::l7::L7Policy::prefix(
            b"/blocked/",
            linuxfp::netstack::l7::L7Action::Deny,
        ));
    let report = host.poll_controller().expect("l7 change triggers");
    println!(
        "*** controller reacted in {:.2}ms: {} FPM instances installed ***\n",
        report.reaction.as_secs_f64() * 1e3,
        report.fpm_count
    );

    // Rounds 6-7: HTTP request traffic — allowed requests, denied
    // requests, and TLS-looking garbage the parser punts on.
    for round in 6..=7 {
        for i in 0..20u64 {
            let payload: Vec<u8> = match i % 4 {
                0 | 1 => Scenario::http_request(i),
                2 => scenario.blocked_http_request(i),
                _ => vec![0x16, 0x03, 0x01, 0x00, 0x2a],
            };
            host.process(scenario.http_frame(mac, i, &payload));
        }
        draw(round, &registry, &ring);
    }

    // Shard the datapath: 4 RSS queues, each with its own buffer pool,
    // flow cache and ledger. The panel grows a per-shard section; the
    // output bytes stay identical to the single-core rounds above.
    host.kernel_mut()
        .sysctl_set("net.linuxfp.rss_shards", 4)
        .expect("rss_shards sysctl exists");
    let pool = linuxfp::packet::ShardedPool::new(4);
    linuxfp::netstack::stack::wire_sharded_pool_telemetry(&pool, &registry);
    println!("*** net.linuxfp.rss_shards=4: datapath sharded across 4 queues ***\n");
    for round in 8..=9 {
        let mut batch = linuxfp::packet::Batch::new();
        for i in 0..40u64 {
            let frame = scenario.frame(mac, i, 60);
            // The NIC-side steering decision also picks which per-queue
            // pool backs the buffer, like per-queue RX rings do.
            let shard = linuxfp::netstack::stack::rss::shard_for(&frame, 4) as usize;
            batch.push(pool.acquire_from(shard, &frame));
        }
        host.process_batch(&mut batch);
        draw(round, &registry, &ring);
    }

    // The transparency ledger: every injected packet was decided exactly
    // once — by the fast path (hit) or the stock stack (fallback).
    let hits = registry.counter_total("linuxfp_fp_hits_total");
    let fallbacks = registry.counter_total("linuxfp_slowpath_fallbacks_total");
    let injected = registry.counter_total("linuxfp_packets_injected_total");
    println!("conservation: {hits} hits + {fallbacks} fallbacks = {injected} injected");
    assert_eq!(
        hits + fallbacks,
        injected,
        "no packet lost or double-counted"
    );
    // One level down, the microflow verdict cache keeps the same ledger:
    // every hook-entered packet either hit the cache or counted a miss.
    let fc_hits = registry.counter_total("linuxfp_flowcache_hits_total");
    let fc_misses = registry.counter_total("linuxfp_flowcache_misses_total");
    println!("flow cache:   {fc_hits} hits + {fc_misses} misses = {injected} injected");
    assert_eq!(
        fc_hits + fc_misses,
        injected,
        "flow-cache ledger must balance"
    );

    println!("\nrecent control-plane events:");
    for e in registry.events().recent() {
        println!("  [{:>6}] {:<16} {}", e.seq, e.kind, e.detail);
    }

    println!("\nscrape endpoint preview (render_prometheus):");
    for line in linuxfp::telemetry::render_prometheus(&registry)
        .lines()
        .filter(|l| l.contains("fp_hits") || l.contains("reconcile_seconds_count"))
    {
        println!("  {line}");
    }
}
