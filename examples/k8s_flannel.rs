//! The paper's Kubernetes experiment (§VI-A2): a 3-node cluster with an
//! unmodified Flannel-style CNI, accelerated transparently by attaching
//! the LinuxFP controller (TC hook) to every node.
//!
//! ```text
//! cargo run --example k8s_flannel --release
//! ```

use linuxfp::k8s::{pod_rr, Cluster};

fn main() {
    println!("3-node cluster, Flannel CNI, unmodified — Linux vs LinuxFP\n");
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>14}",
        "configuration", "avg [ms]", "p99 [ms]", "stddev", "txn/s (pair)"
    );

    for (label, accelerated, inter) in [
        ("Linux (intra)", false, false),
        ("LinuxFP (intra)", true, false),
        ("Linux (inter)", false, true),
        ("LinuxFP (inter)", true, true),
    ] {
        let mut cluster = Cluster::new(3, accelerated);
        let a = cluster.add_pod(0);
        let b = cluster.add_pod(if inter { 1 } else { 0 });
        let r = pod_rr(&mut cluster, a, b, 4000, 23);
        println!(
            "{:<18} {:>12.3} {:>12.1} {:>12.3} {:>14.1}",
            label,
            r.rtt_ms.mean(),
            r.rtt_ms.p99(),
            r.rtt_ms.stddev(),
            r.transactions_per_sec
        );
    }

    // Show what the controller actually installed on a node.
    let mut cluster = Cluster::new(2, true);
    let _ = cluster.add_pod(0);
    let node = &cluster.nodes[0];
    println!("\nnode1 installed fast paths (TC hook):");
    if let Some(graph) = node_graph(node) {
        println!("{graph}");
    }
    println!("\npaper: +20% intra / +16% inter pod-to-pod throughput, -18%/-14%");
    println!("latency — with zero changes to Flannel, kubelet, or the pods.");
}

fn node_graph(node: &linuxfp::k8s::cluster::Node) -> Option<String> {
    // The node's controller is private; report via the cluster debug
    // surface instead.
    Some(format!(
        "  {} pods, accelerated: {}",
        node.pods.len(),
        node.is_accelerated()
    ))
}
