#!/usr/bin/env bash
# The full local gate, in the order fastest-failure-first. Offline-safe:
# no network access, no tool installation — everything here ships with a
# stock Rust toolchain.
#
#   scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo build --release --examples --benches"
cargo build --workspace --release --examples --benches

echo "==> cargo test"
cargo test --workspace -q

echo "==> bench smoke: batching must not regress (burst 32 <= burst 1)"
cargo run -q -p linuxfp-bench --bin repro --release -- batch_sweep \
  | awk '
    / LinuxFP / && NF >= 5 {
      b1 = $2; b32 = $4
      if (b32 + 0 > b1 + 0) {
        printf "FAIL: LinuxFP burst-32 %s ns/pkt > burst-1 %s ns/pkt\n", b32, b1
        exit 1
      }
      printf "ok: LinuxFP %s ns/pkt at burst 1 -> %s at burst 32\n", b1, b32
      found = 1
    }
    END { if (!found) { print "FAIL: LinuxFP row not found in batch_sweep"; exit 1 } }
  '

echo "==> bench smoke: flow cache (steady >=20% under 487 ns/pkt; churn-heavy never slower)"
cargo run -q -p linuxfp-bench --bin repro --release -- flow_cache \
  | awk '
    /steady single flow/ { on = $(NF-1) }
    /churn-heavy/        { coff = $(NF-2); con = $(NF-1) }
    END {
      if (on == "" || coff == "") { print "FAIL: flow_cache rows not found"; exit 1 }
      if (on + 0 > 487 * 0.8) {
        printf "FAIL: steady cache-on %s ns/pkt is not 20%% under the 487 ns/pkt baseline\n", on
        exit 1
      }
      if (con + 0 > coff + 0) {
        printf "FAIL: churn-heavy cache-on %s ns/pkt > cache-off %s ns/pkt\n", con, coff
        exit 1
      }
      printf "ok: steady %s ns/pkt with the cache on; churn-heavy %s vs %s off\n", on, con, coff
    }
  '

echo "==> bench smoke: l7 gateway (offloaded allows beat the stock stack; punts cost more, never break)"
cargo run -q -p linuxfp-bench --bin repro --release -- l7_gateway \
  | awk '
    /allow \(offloaded\)/        { off = $NF }
    /allow \(linux slow path\)/  { lin = $NF }
    /unparseable \(punted\)/     { punt = $NF }
    END {
      if (off == "" || lin == "" || punt == "") { print "FAIL: l7_gateway rows not found"; exit 1 }
      if (off + 0 >= lin + 0) {
        printf "FAIL: offloaded allow %s ns/request is not faster than the stock stack %s\n", off, lin
        exit 1
      }
      if (punt + 0 < lin + 0) {
        printf "FAIL: punted %s ns/request beats the stock stack %s — punt accounting broke\n", punt, lin
        exit 1
      }
      printf "ok: allow %s ns/request offloaded vs %s stock; punt tax %s\n", off, lin, punt
    }
  '

echo "==> bench smoke: core scaling (8-shard aggregate pps >= 5x 1-shard on the steady-flow router)"
cargo run -q -p linuxfp-bench --bin repro --release -- core_scaling \
  | awk '
    $1 == "1" && NF >= 5 { base = $2 }
    $1 == "8" && NF >= 5 { eight = $2 }
    END {
      if (base == "" || eight == "") { print "FAIL: core_scaling rows not found"; exit 1 }
      if (eight + 0 < 5 * (base + 0)) {
        printf "FAIL: 8-shard %s pps is under 5x the 1-shard %s pps\n", eight, base
        exit 1
      }
      printf "ok: %s pps at 8 shards vs %s at 1 (%.2fx)\n", eight, base, (eight + 0) / (base + 0)
    }
  '

echo "==> bench smoke: sampled tracing at 1-in-64 stays inside the 5% telemetry budget"
cargo bench -q -p linuxfp-bench --bench micro \
  | awk '
    /telemetry overhead \(trace 1-in-64\):/ {
      found = 1
      if (index($0, "within the 5% budget") == 0) {
        printf "FAIL: %s\n", $0
        exit 1
      }
      printf "ok: %s\n", $0
    }
    END { if (!found) { print "FAIL: trace 1-in-64 budget line not found"; exit 1 } }
  '

echo "==> linuxfp_trace --json parses and records spans on a corpus fixture"
cargo run -q --release --example linuxfp_trace -- --json \
  tests/difftest_corpus/bad-ipv4-checksum.json \
  | python3 -c '
import json, sys
doc = json.load(sys.stdin)
spans = doc["spans"]
assert spans, "no spans recorded"
for s in spans:
    assert s["total_ns"] > 0 and s["stages"], f"empty span: {s}"
pkts = doc["breakdown"]["packets"]
assert pkts > 0, "empty breakdown"
print(f"ok: {len(spans)} span(s), breakdown over {pkts} packet(s)")
'

echo "==> difftest: corpus replay + 200-seed differential sweep"
cargo run -q -p linuxfp-difftest --bin difftest --release -- \
  replay tests/difftest_corpus/*.json
cargo run -q -p linuxfp-difftest --bin difftest --release -- \
  run --seeds 200

echo "==> difftest: corpus replay stays transparent on a 4-shard datapath"
cargo run -q -p linuxfp-difftest --bin difftest --release -- \
  replay --shards 4 tests/difftest_corpus/*.json

echo "==> difftest: interpreter lane (jit=0) — corpus replay + 200-seed sweep"
cargo run -q -p linuxfp-difftest --bin difftest --release -- \
  replay --jit 0 tests/difftest_corpus/*.json
cargo run -q -p linuxfp-difftest --bin difftest --release -- \
  run --seeds 200 --jit 0

echo "==> difftest: optimizer lane (opt=0) — corpus replay + 200-seed sweep"
cargo run -q -p linuxfp-difftest --bin difftest --release -- \
  replay --opt 0 tests/difftest_corpus/*.json
cargo run -q -p linuxfp-difftest --bin difftest --release -- \
  run --seeds 200 --opt 0

echo "==> parity fuzz smoke: interpreter vs compiled engine"
cargo test -q -p linuxfp-ebpf --release --test alu_parity --test jit_parity \
  | tail -n 2

echo "==> parity fuzz smoke: naive vs optimized bytecode"
cargo test -q -p linuxfp-ebpf --release --test opt_parity \
  | tail -n 2

echo "==> optimizer shrink: plain router loses >=25% of its instructions"
cargo run -q --release --example linuxfp_opt_dump \
  | awk '
    $2 == "router" {
      before = $3; after = $5
      if (after + 0 > 0.75 * (before + 0)) {
        printf "FAIL: router only shrank %s -> %s insns (needs >=25%%)\n", before, after
        exit 1
      }
      printf "ok: router %s -> %s insns\n", before, after
      found = 1
    }
    $2 != "router" && $1 == "opt_dump:" {
      if ($5 + 0 > $3 + 0) {
        printf "FAIL: %s grew %s -> %s insns\n", $2, $3, $5
        exit 1
      }
    }
    END { if (!found) { print "FAIL: router row not found in opt_dump"; exit 1 } }
  '

echo "==> bench smoke: jit dispatch (compiled churn-heavy >=20% under interpreted)"
cargo run -q -p linuxfp-bench --bin repro --release -- jit_dispatch \
  | awk '
    /churn-heavy/ { interp = $(NF-2); compiled = $(NF-1) }
    END {
      if (interp == "" || compiled == "") { print "FAIL: jit_dispatch churn-heavy row not found"; exit 1 }
      if (compiled + 0 > 0.8 * (interp + 0)) {
        printf "FAIL: compiled churn-heavy %s ns/pkt is not 20%% under interpreted %s\n", compiled, interp
        exit 1
      }
      printf "ok: churn-heavy %s ns/pkt compiled vs %s interpreted\n", compiled, interp
    }
  '

echo "==> bench smoke: optimizer dispatch (optimized churn-heavy >=5% under naive, beats 517 ns/pkt baseline)"
cargo run -q -p linuxfp-bench --bin repro --release -- opt_dispatch \
  | awk '
    /churn-heavy/ { naive = $(NF-2); optimized = $(NF-1) }
    END {
      if (naive == "" || optimized == "") { print "FAIL: opt_dispatch churn-heavy row not found"; exit 1 }
      if (optimized + 0 > 0.95 * (naive + 0)) {
        printf "FAIL: optimized churn-heavy %s ns/pkt is not 5%% under naive %s\n", optimized, naive
        exit 1
      }
      if (optimized + 0 > 0.95 * 517) {
        printf "FAIL: optimized churn-heavy %s ns/pkt does not beat the 517 ns/pkt pre-optimizer baseline by 5%%\n", optimized
        exit 1
      }
      printf "ok: churn-heavy %s ns/pkt optimized vs %s naive\n", optimized, naive
    }
  '

echo "ci: all green"
