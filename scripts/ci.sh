#!/usr/bin/env bash
# The full local gate, in the order fastest-failure-first. Offline-safe:
# no network access, no tool installation — everything here ships with a
# stock Rust toolchain.
#
#   scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo build --release --examples --benches"
cargo build --workspace --release --examples --benches

echo "==> cargo test"
cargo test --workspace -q

echo "ci: all green"
